#pragma once
// User operational profiles (the paper's Figure 2): a session graph with
// Start and Exit nodes and one node per user-visible function, annotated
// with transition probabilities p_ij. Provides the DTMC analyses the
// user level needs: expected visits, session length, and (in scenario.hpp)
// exact visited-set probabilities.

#include <cstddef>
#include <string>
#include <vector>

#include "upa/linalg/matrix.hpp"
#include "upa/markov/dtmc.hpp"

namespace upa::profile {

/// Special node indices within an OperationalProfile's state space:
/// state 0 = Start, states 1..n = functions, state n+1 = Exit.
struct NodeIndex {
  static constexpr std::size_t kStart = 0;
  [[nodiscard]] static constexpr std::size_t function(std::size_t i) {
    return i + 1;
  }
};

/// Immutable validated operational profile.
class OperationalProfile {
 public:
  /// `function_names` names functions 1..n; `transition` is a
  /// (n+2)x(n+2) row-stochastic matrix over [Start, f1..fn, Exit] whose
  /// Exit row is absorbing and whose Start column is all zero (sessions
  /// never return to Start).
  OperationalProfile(std::vector<std::string> function_names,
                     linalg::Matrix transition);

  [[nodiscard]] std::size_t function_count() const noexcept {
    return names_.size();
  }
  [[nodiscard]] std::size_t state_count() const noexcept {
    return names_.size() + 2;
  }
  [[nodiscard]] std::size_t exit_state() const noexcept {
    return names_.size() + 1;
  }
  [[nodiscard]] const std::string& function_name(std::size_t i) const;
  [[nodiscard]] std::size_t function_index(const std::string& name) const;

  [[nodiscard]] const linalg::Matrix& transition_matrix() const noexcept {
    return p_;
  }
  [[nodiscard]] const markov::Dtmc& dtmc() const noexcept { return dtmc_; }

  /// Expected number of invocations of function i per session.
  [[nodiscard]] double expected_visits(std::size_t function) const;

  /// Expected number of function invocations per session (all functions).
  [[nodiscard]] double mean_session_length() const;

  /// Probability that function i is invoked at least once in a session.
  [[nodiscard]] double invocation_probability(std::size_t function) const;

  /// Graphviz dot rendering (documentation/debugging aid).
  [[nodiscard]] std::string to_dot() const;

 private:
  std::vector<std::string> names_;
  linalg::Matrix p_;
  markov::Dtmc dtmc_;
};

}  // namespace upa::profile
