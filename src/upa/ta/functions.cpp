#include "upa/ta/functions.hpp"

#include "upa/common/error.hpp"

namespace upa::ta {

std::string function_name(TaFunction f) {
  switch (f) {
    case TaFunction::kHome:
      return "Home";
    case TaFunction::kBrowse:
      return "Browse";
    case TaFunction::kSearch:
      return "Search";
    case TaFunction::kBook:
      return "Book";
    case TaFunction::kPay:
      return "Pay";
  }
  UPA_ASSERT(false);
  return {};
}

double function_availability(TaFunction f, const ServiceAvailabilities& s,
                             const TaParameters& p) {
  const double front = s.net * s.lan * s.web;
  switch (f) {
    case TaFunction::kHome:
      return front;
    case TaFunction::kBrowse:
      return front * (p.q23 + s.application * (p.q24 * p.q45 +
                                               p.q24 * p.q47 * s.database));
    case TaFunction::kSearch:
    case TaFunction::kBook:
      // Book succeeds whenever Search does (it uses a subset of the
      // resources and is only reachable after a successful Search).
      return front * s.application * s.database * s.flight * s.hotel * s.car;
    case TaFunction::kPay:
      return front * s.application * s.database * s.payment;
  }
  UPA_ASSERT(false);
  return 0.0;
}

core::Expr function_expr(TaFunction f, const TaParameters& p) {
  using core::Expr;
  const Expr front = Expr::param("Anet") * Expr::param("ALAN") *
                     Expr::param("AWS");
  const Expr as = Expr::param("AAS");
  const Expr ds = Expr::param("ADS");
  switch (f) {
    case TaFunction::kHome:
      return front;
    case TaFunction::kBrowse:
      return front *
             (Expr::constant(p.q23) +
              as * (Expr::constant(p.q24 * p.q45) +
                    Expr::constant(p.q24 * p.q47) * ds));
    case TaFunction::kSearch:
    case TaFunction::kBook:
      return front * as * ds * Expr::param("AFlight") *
             Expr::param("AHotel") * Expr::param("ACar");
    case TaFunction::kPay:
      return front * as * ds * Expr::param("APS");
  }
  UPA_ASSERT(false);
  return Expr::constant(0.0);
}

core::Params service_params(const ServiceAvailabilities& s) {
  return {
      {"Anet", s.net},     {"ALAN", s.lan},       {"AWS", s.web},
      {"AAS", s.application}, {"ADS", s.database},
      {"AFlight", s.flight},  {"AHotel", s.hotel}, {"ACar", s.car},
      {"APS", s.payment},
  };
}

}  // namespace upa::ta
