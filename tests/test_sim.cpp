// Tests for the simulation substrate: RNG determinism, distribution
// moments, the event calendar, and the statistics toolkit.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/sim/distributions.hpp"
#include "upa/sim/engine.hpp"
#include "upa/sim/rng.hpp"
#include "upa/sim/stats.hpp"

namespace usim = upa::sim;
using upa::common::ModelError;

TEST(Rng, DeterministicForSameSeed) {
  usim::Xoshiro256 a(123);
  usim::Xoshiro256 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  usim::Xoshiro256 a(1);
  usim::Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, Uniform01InRange) {
  usim::Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.uniform01_open_left();
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  usim::Xoshiro256 rng(99);
  usim::RunningStats stats;
  for (int i = 0; i < 200000; ++i) stats.add(rng.uniform01());
  EXPECT_NEAR(stats.mean(), 0.5, 0.003);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.002);
}

TEST(Rng, SplitProducesIndependentStream) {
  usim::Xoshiro256 a(5);
  usim::Xoshiro256 b = a.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Distributions, MomentsMatchSamples) {
  usim::Xoshiro256 rng(11);
  const std::vector<usim::Distribution> dists{
      usim::Exponential{2.0},
      usim::UniformReal{1.0, 3.0},
      usim::Erlang{3, 1.5},
      usim::HyperExponential{0.3, 5.0, 0.5},
      usim::LogNormal{0.0, 0.5},
  };
  for (const auto& d : dists) {
    usim::RunningStats stats;
    for (int i = 0; i < 300000; ++i) stats.add(usim::sample(d, rng));
    const double m = usim::mean(d);
    const double v = usim::variance(d);
    EXPECT_NEAR(stats.mean(), m, 0.02 * std::max(1.0, m));
    EXPECT_NEAR(stats.variance(), v, 0.06 * std::max(1.0, v));
  }
}

TEST(Distributions, DeterministicIsExact) {
  usim::Xoshiro256 rng(1);
  const usim::Distribution d = usim::Deterministic{4.2};
  EXPECT_DOUBLE_EQ(usim::sample(d, rng), 4.2);
  EXPECT_DOUBLE_EQ(usim::mean(d), 4.2);
  EXPECT_DOUBLE_EQ(usim::variance(d), 0.0);
}

TEST(Distributions, ValidationRejectsBadParameters) {
  usim::Xoshiro256 rng(1);
  EXPECT_THROW((void)usim::sample(usim::Exponential{-1.0}, rng), ModelError);
  EXPECT_THROW((void)usim::sample(usim::UniformReal{3.0, 1.0}, rng),
               ModelError);
  EXPECT_THROW((void)usim::sample(usim::Erlang{0, 1.0}, rng), ModelError);
  EXPECT_THROW((void)usim::sample(usim::HyperExponential{1.5, 1.0, 1.0}, rng),
               ModelError);
}

TEST(Engine, ProcessesEventsInTimeOrder) {
  usim::Engine engine;
  std::vector<int> order;
  engine.schedule_at(2.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(3.0, [&] { order.push_back(3); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.processed_count(), 3u);
}

TEST(Engine, FifoTieBreakAtSameTime) {
  usim::Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, CancelPreventsExecution) {
  usim::Engine engine;
  bool fired = false;
  const auto id = engine.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // already cancelled
  engine.run_all();
  EXPECT_FALSE(fired);
}

TEST(Engine, RunUntilRespectsHorizon) {
  usim::Engine engine;
  int count = 0;
  engine.schedule_at(1.0, [&] { ++count; });
  engine.schedule_at(5.0, [&] { ++count; });
  engine.run_until(2.0);
  EXPECT_EQ(count, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 2.0);
  EXPECT_EQ(engine.pending_count(), 1u);
}

TEST(Engine, MaxCalendarDepthTracksHighWaterIncludingTombstones) {
  usim::Engine engine;
  EXPECT_EQ(engine.max_calendar_depth(), 0u);
  const auto a = engine.schedule_at(1.0, [] {});
  engine.schedule_at(2.0, [] {});
  const auto c = engine.schedule_at(3.0, [] {});
  EXPECT_EQ(engine.max_calendar_depth(), 3u);
  // Cancellation leaves tombstones in the calendar, so the high-water
  // mark (calendar memory) does not shrink.
  engine.cancel(a);
  engine.cancel(c);
  EXPECT_EQ(engine.max_calendar_depth(), 3u);
  engine.run_all();
  EXPECT_EQ(engine.max_calendar_depth(), 3u);
  EXPECT_EQ(engine.processed_count(), 1u);
  // Refilling above the old peak raises it again.
  for (int i = 0; i < 5; ++i) engine.schedule_in(1.0, [] {});
  EXPECT_EQ(engine.max_calendar_depth(), 5u);
}

TEST(Engine, RunUntilClampsClockAndKeepsQueuedEventsPending) {
  usim::Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  engine.schedule_at(7.0, [&] { ++fired; });
  engine.schedule_at(9.0, [&] { ++fired; });
  engine.run_until(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);  // clamped to the horizon...
  EXPECT_EQ(engine.pending_count(), 2u);  // ...with future events intact
  // An empty batch still clamps the clock forward.
  engine.run_until(6.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(engine.now(), 6.0);
  EXPECT_EQ(engine.pending_count(), 2u);
  // Scheduling between the clamped clock and the queued events works.
  engine.schedule_at(6.5, [&] { ++fired; });
  engine.run_until(8.0);
  EXPECT_EQ(fired, 3);
  EXPECT_DOUBLE_EQ(engine.now(), 8.0);
  EXPECT_EQ(engine.pending_count(), 1u);
  engine.run_all();
  EXPECT_EQ(fired, 4);
  EXPECT_DOUBLE_EQ(engine.now(), 9.0);  // run_all leaves the clock at the
  EXPECT_EQ(engine.pending_count(), 0u);  // last processed event
}

TEST(Engine, HandlersCanScheduleMoreEvents) {
  usim::Engine engine;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 5) engine.schedule_in(1.0, step);
  };
  engine.schedule_in(1.0, step);
  engine.run_all();
  EXPECT_EQ(chain, 5);
  EXPECT_DOUBLE_EQ(engine.now(), 5.0);
}

TEST(Engine, RejectsPastScheduling) {
  usim::Engine engine;
  engine.schedule_at(1.0, [] {});
  engine.run_until(2.0);
  EXPECT_THROW((void)engine.schedule_at(1.0, [] {}), ModelError);
  EXPECT_THROW((void)engine.schedule_in(-1.0, [] {}), ModelError);
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  usim::Engine engine;
  const auto id = engine.schedule_at(1.0, [] {});
  engine.run_all();
  EXPECT_FALSE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id + 1000));  // unknown id
}

TEST(Engine, CancelledTombstonesDontCountAsProcessed) {
  usim::Engine engine;
  int fired = 0;
  engine.schedule_at(1.0, [&] { ++fired; });
  const auto a = engine.schedule_at(2.0, [&] { ++fired; });
  const auto b = engine.schedule_at(3.0, [&] { ++fired; });
  EXPECT_TRUE(engine.cancel(a));
  EXPECT_TRUE(engine.cancel(b));
  EXPECT_EQ(engine.pending_count(), 1u);  // tombstones are not pending
  engine.run_all();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.processed_count(), 1u);
  // The clock stops at the last PROCESSED event, not at a tombstone.
  EXPECT_DOUBLE_EQ(engine.now(), 1.0);
}

TEST(Engine, InterleavedScheduleCancelKeepsFifoStable) {
  usim::Engine engine;
  std::vector<int> order;
  engine.schedule_at(1.0, [&] { order.push_back(1); });
  const auto doomed = engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(3); });
  EXPECT_TRUE(engine.cancel(doomed));
  // New same-time events keep arriving after the cancellation; FIFO order
  // among survivors must follow scheduling order.
  engine.schedule_at(1.0, [&] { order.push_back(4); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4}));
  EXPECT_EQ(engine.processed_count(), 3u);
}

TEST(Engine, CancelInsideHandlerPreventsSameTimeSuccessor) {
  usim::Engine engine;
  std::vector<int> order;
  usim::EventId second = 0;
  engine.schedule_at(1.0, [&] {
    order.push_back(1);
    EXPECT_TRUE(engine.cancel(second));
  });
  second = engine.schedule_at(1.0, [&] { order.push_back(2); });
  engine.schedule_at(1.0, [&] { order.push_back(3); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  EXPECT_EQ(engine.processed_count(), 2u);
}

TEST(Stats, RunningStatsMatchesClosedForm) {
  usim::RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_EQ(stats.count(), 8u);
}

TEST(Stats, TimeWeightedAverage) {
  usim::TimeWeightedStats tw(0.0, 1.0);
  tw.update(4.0, 0.0);  // up for 4
  tw.update(6.0, 1.0);  // down for 2
  EXPECT_NEAR(tw.time_average(10.0), (4.0 + 4.0) / 10.0, 1e-12);
}

TEST(Stats, TimeWeightedRejectsBackwardsTime) {
  usim::TimeWeightedStats tw(0.0, 0.0);
  tw.update(2.0, 1.0);
  EXPECT_THROW(tw.update(1.0, 0.0), ModelError);
}

TEST(Stats, StudentTCriticalValues) {
  EXPECT_NEAR(usim::student_t_critical(1, 0.95), 12.706, 1e-3);
  EXPECT_NEAR(usim::student_t_critical(10, 0.95), 2.228, 1e-3);
  EXPECT_NEAR(usim::student_t_critical(10, 0.99), 3.169, 1e-3);
  EXPECT_NEAR(usim::student_t_critical(1000, 0.95), 1.96, 2e-2);
  // Interpolated between table rows.
  const double t17 = usim::student_t_critical(17, 0.95);
  EXPECT_GT(t17, usim::student_t_critical(20, 0.95));
  EXPECT_LT(t17, usim::student_t_critical(15, 0.95));
}

TEST(Stats, ConfidenceIntervalCoversMean) {
  const std::vector<double> reps{9.8, 10.1, 10.0, 9.9, 10.2};
  const auto ci = usim::confidence_interval(reps, 0.95);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_NEAR(ci.mean, 10.0, 1e-12);
  EXPECT_GT(ci.half_width, 0.0);
  EXPECT_LT(ci.half_width, 0.5);
}

TEST(Stats, ConfidenceIntervalNeedsTwoReps) {
  EXPECT_THROW((void)usim::confidence_interval({1.0}), ModelError);
}
