// Dashboard-scale cache tier: per-segment on-disk indexes (staleness
// detection, full-scan fallback and rebuild), segment compaction / GC
// (first-wins dedupe, CRC-drop exactness, atomic swap, online
// maintenance), and the digest/delta anti-entropy exchange replicas use
// to converge on a shared warm set.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "upa/cache/compact.hpp"
#include "upa/cache/eval_cache.hpp"
#include "upa/cache/index.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cache/segment.hpp"
#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"

namespace {

namespace cache = upa::cache;
namespace fs = std::filesystem;
using upa::common::ModelError;

struct TempDir {
  TempDir() {
    std::string path = (fs::temp_directory_path() / "upa_compact_XXXXXX");
    if (mkdtemp(path.data()) == nullptr) {
      throw ModelError("mkdtemp failed for " + path);
    }
    dir = path;
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(dir, ec);
  }
  std::string dir;
};

cache::CacheKey key_of(double value) {
  cache::KeyBuilder kb("test.solver", 1);
  kb.add(value);
  return std::move(kb).finish();
}

std::string double_value_bytes(double value) {
  cache::ByteWriter w;
  w.put_double(value);
  return std::move(w).take();
}

cache::SegmentRecord double_record(double key_param, double value) {
  return {"f64", key_of(key_param).bytes, double_value_bytes(value)};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return std::move(buffer).str();
}

/// A sealed segment holding double records key k -> value 10k for each
/// k in `keys`, with optional extra raw bytes appended.
void write_segment(const std::string& path, const std::vector<double>& keys,
                   const std::string& extra = {}) {
  std::string bytes = cache::segment_header();
  for (const double k : keys) {
    bytes += cache::encode_record(double_record(k, 10.0 * k));
  }
  bytes += extra;
  write_file(path, bytes);
}

std::size_t count_files_with_extension(const std::string& dir,
                                       std::string_view extension) {
  std::size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == extension) ++n;
  }
  return n;
}

TEST(CompactIndex, RebuildsOnFirstAttachThenLoads) {
  TempDir tmp;
  const std::string seg = tmp.dir + "/segment-a.upaseg";
  write_segment(seg, {1.0, 2.0, 3.0});

  const cache::MappedFile file(seg);
  ASSERT_TRUE(file.ok());
  const auto first = cache::load_or_build_index(seg, file);
  EXPECT_TRUE(first.segment_ok);
  EXPECT_TRUE(first.rebuilt);
  EXPECT_TRUE(first.written);
  EXPECT_FALSE(first.loaded);
  EXPECT_EQ(first.index.entries.size(), 3u);
  EXPECT_TRUE(fs::exists(cache::index_path_for(seg)));

  const auto second = cache::load_or_build_index(seg, file);
  EXPECT_TRUE(second.loaded);
  EXPECT_FALSE(second.rebuilt);
  ASSERT_EQ(second.index.entries.size(), 3u);

  // Every indexed offset resolves to its record, and lookups through
  // the table find exactly the right key.
  for (const double k : {1.0, 2.0, 3.0}) {
    const auto offsets = cache::offsets_for_digest(second.index.entries,
                                                   key_of(k).digest);
    ASSERT_EQ(offsets.size(), 1u) << k;
    cache::SegmentRecord record;
    ASSERT_TRUE(cache::read_record_at(file, offsets[0], &record));
    EXPECT_EQ(record.key_bytes, key_of(k).bytes);
    EXPECT_EQ(record.value_bytes, double_value_bytes(10.0 * k));
  }
  EXPECT_TRUE(
      cache::offsets_for_digest(second.index.entries, key_of(9.0).digest)
          .empty());
}

TEST(CompactIndex, StaleIndexFallsBackToFullScanAndRebuilds) {
  TempDir tmp;
  const std::string seg = tmp.dir + "/segment-a.upaseg";
  write_segment(seg, {1.0});
  {
    const cache::MappedFile file(seg);
    ASSERT_TRUE(cache::load_or_build_index(seg, file).written);
  }
  // The segment grows after the index was written (another record
  // lands): size + CRC chain both change, the index is stale.
  write_segment(seg, {1.0, 2.0});
  const cache::MappedFile file(seg);
  const auto result = cache::load_or_build_index(seg, file);
  EXPECT_TRUE(result.rebuilt);
  EXPECT_FALSE(result.loaded);
  EXPECT_EQ(result.index.entries.size(), 2u);
}

TEST(CompactIndex, TruncatedOrCorruptIndexRebuilds) {
  TempDir tmp;
  const std::string seg = tmp.dir + "/segment-a.upaseg";
  write_segment(seg, {1.0, 2.0});
  const std::string idx = cache::index_path_for(seg);
  const cache::MappedFile file(seg);
  ASSERT_TRUE(cache::load_or_build_index(seg, file).written);

  // Truncated sidecar: strict decode fails, full scan rebuilds.
  {
    const std::string bytes = read_file(idx);
    write_file(idx, bytes.substr(0, bytes.size() / 2));
    const auto result = cache::load_or_build_index(seg, file);
    EXPECT_TRUE(result.rebuilt);
    EXPECT_EQ(result.index.entries.size(), 2u);
  }
  // Corrupt sidecar (flipped byte): the trailing CRC catches it.
  {
    std::string bytes = read_file(idx);
    bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
    write_file(idx, bytes);
    const auto result = cache::load_or_build_index(seg, file);
    EXPECT_TRUE(result.rebuilt);
    EXPECT_EQ(result.index.entries.size(), 2u);
  }
}

TEST(CompactIndex, LazyTierServesThroughARebuiltIndex) {
  TempDir tmp;
  write_segment(tmp.dir + "/segment-a.upaseg", {1.0, 2.0});
  // Plant a stale index, then attach: the tier must rebuild and still
  // serve both records byte-identically.
  {
    const std::string seg = tmp.dir + "/segment-a.upaseg";
    const cache::MappedFile file(seg);
    ASSERT_TRUE(cache::load_or_build_index(seg, file).written);
  }
  write_segment(tmp.dir + "/segment-a.upaseg", {1.0, 2.0, 3.0});

  cache::EvalCache ec;
  cache::PersistentCache tier(ec, tmp.dir);
  EXPECT_EQ(tier.stats().indexes_rebuilt, 1u);
  EXPECT_EQ(tier.stats().records_indexed, 3u);
  for (const double k : {1.0, 2.0, 3.0}) {
    const auto value = ec.get_or_compute<double>(
        key_of(k), []() -> double {
          throw ModelError("index rebuild lost a record");
        });
    EXPECT_EQ(*value, 10.0 * k);
  }
}

TEST(Compact, DropsDuplicatesAndCrcSkippedRecordsExactly) {
  TempDir tmp;
  // Segment A: keys 1, 2, and a CRC-corrupted copy of key 3.
  std::string corrupt = cache::encode_record(double_record(3.0, 30.0));
  corrupt[corrupt.size() - 1] =
      static_cast<char>(corrupt[corrupt.size() - 1] ^ 0x01);
  write_segment(tmp.dir + "/segment-a.upaseg", {1.0, 2.0}, corrupt);
  // Segment B: key 1 AGAIN (with a different value -- first-wins must
  // keep A's) and key 4.
  {
    std::string bytes = cache::segment_header();
    bytes += cache::encode_record(double_record(1.0, 999.0));
    bytes += cache::encode_record(double_record(4.0, 40.0));
    write_file(tmp.dir + "/segment-b.upaseg", bytes);
  }

  const cache::CompactionStats stats = cache::compact_directory(tmp.dir);
  EXPECT_TRUE(stats.performed);
  EXPECT_EQ(stats.segments_in, 2u);
  EXPECT_EQ(stats.records_in, 5u);
  EXPECT_EQ(stats.records_kept, 3u);
  EXPECT_EQ(stats.records_dropped_crc, 1u);        // exactly the bad copy
  EXPECT_EQ(stats.records_dropped_duplicate, 1u);  // B's key 1
  EXPECT_EQ(stats.records_dropped(), 2u);
  EXPECT_EQ(stats.segments_removed, 2u);
  EXPECT_EQ(fs::path(stats.output_path).filename(), "compact-000001.upaseg");
  EXPECT_EQ(count_files_with_extension(tmp.dir, ".upaseg"), 1u);

  // Replay through a fresh tier: survivors byte-identical, first-wins
  // value for the duplicate, and ONLY the CRC-bad record recomputes.
  cache::EvalCache ec;
  cache::PersistentCache tier(ec, tmp.dir);
  EXPECT_EQ(tier.stats().records_indexed, 3u);
  for (const double k : {1.0, 2.0, 4.0}) {
    const auto value = ec.get_or_compute<double>(
        key_of(k),
        []() -> double { throw ModelError("compaction lost a record"); });
    EXPECT_EQ(*value, 10.0 * k);
  }
  int computes = 0;
  (void)ec.get_or_compute<double>(key_of(3.0), [&] {
    ++computes;
    return 30.0;
  });
  EXPECT_EQ(computes, 1);
}

TEST(Compact, GcDropsUnknownTagsAndForeignGenerationSegments) {
  TempDir tmp;
  {
    std::string bytes = cache::segment_header();
    bytes += cache::encode_record(double_record(1.0, 10.0));
    bytes += cache::encode_record(
        {"from_the_future", key_of(2.0).bytes, double_value_bytes(2.0)});
    write_file(tmp.dir + "/segment-a.upaseg", bytes);
  }
  // A whole segment from a different solver generation.
  write_file(tmp.dir + "/segment-b.upaseg",
             cache::segment_header(cache::kSegmentFormatVersion,
                                   "upa-solvers-v0") +
                 cache::encode_record(double_record(9.0, 90.0)));

  // Plain compaction spares the foreign segment...
  const cache::CompactionStats plain =
      cache::compact_directory(tmp.dir, cache::CompactionOptions{});
  EXPECT_EQ(plain.segments_rejected, 1u);
  EXPECT_TRUE(fs::exists(tmp.dir + "/segment-b.upaseg"));
  EXPECT_EQ(plain.records_kept, 2u);  // unknown tag copied as-is

  // ...GC deletes it and drops the unknown-tag record.
  const cache::CompactionStats gc = cache::compact_directory(
      tmp.dir, cache::CompactionOptions{.gc = true});
  EXPECT_EQ(gc.segments_rejected, 1u);
  EXPECT_EQ(gc.records_dropped_unknown_tag, 1u);
  EXPECT_EQ(gc.records_kept, 1u);
  EXPECT_FALSE(fs::exists(tmp.dir + "/segment-b.upaseg"));
  EXPECT_EQ(count_files_with_extension(tmp.dir, ".upaseg"), 1u);
}

TEST(Compact, OnlineCompactionSwapsUnderALiveTier) {
  TempDir tmp;
  write_segment(tmp.dir + "/segment-a.upaseg", {1.0, 2.0});
  write_segment(tmp.dir + "/segment-b.upaseg", {2.0, 3.0});  // 2 duplicated
  write_segment(tmp.dir + "/segment-c.upaseg", {4.0});

  cache::EvalCache ec;
  cache::PersistentCache tier(ec, tmp.dir);
  EXPECT_EQ(tier.stats().records_indexed, 5u);
  // Touch one key first so its value is pinned in memory across the swap.
  (void)ec.get_or_compute<double>(key_of(1.0), []() -> double {
    throw ModelError("attach lost a record");
  });

  const cache::CompactionStats stats = tier.compact_now(2);
  EXPECT_TRUE(stats.performed);
  EXPECT_EQ(stats.records_dropped_duplicate, 1u);
  EXPECT_EQ(count_files_with_extension(tmp.dir, ".upaseg"), 1u);
  EXPECT_EQ(tier.stats().compactions, 1u);
  EXPECT_EQ(tier.stats().records_indexed, 4u);  // post-swap gauge

  // Every key still serves from the swapped-in compacted segment.
  for (const double k : {1.0, 2.0, 3.0, 4.0}) {
    const auto value = ec.get_or_compute<double>(
        key_of(k),
        []() -> double { throw ModelError("compaction swap lost a record"); });
    EXPECT_EQ(*value, 10.0 * k);
  }
  // Below the threshold nothing happens.
  EXPECT_FALSE(tier.compact_now(2).performed);
}

TEST(Compact, MaintenanceThreadCompactsInTheBackground) {
  TempDir tmp;
  write_segment(tmp.dir + "/segment-a.upaseg", {1.0});
  write_segment(tmp.dir + "/segment-b.upaseg", {1.0, 2.0});

  cache::EvalCache ec;
  cache::PersistConfig config;
  config.compact_min_segments = 2;
  cache::PersistentCache tier(ec, tmp.dir, config);
  tier.start_maintenance(std::chrono::milliseconds(5));
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (tier.stats().compactions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  tier.stop_maintenance();
  EXPECT_GE(tier.stats().compactions, 1u);
  EXPECT_EQ(tier.stats().compact_records_dropped, 1u);  // the duplicate
  for (const double k : {1.0, 2.0}) {
    const auto value = ec.get_or_compute<double>(
        key_of(k),
        []() -> double { throw ModelError("maintenance lost a record"); });
    EXPECT_EQ(*value, 10.0 * k);
  }
}

TEST(AntiEntropy, DigestsRoundTripAndDeltaShipsOnlyMissingRecords) {
  cache::EvalCache a;
  cache::EvalCache b;
  for (const double k : {1.0, 2.0}) {
    (void)a.get_or_compute<double>(key_of(k), [k] { return 10.0 * k; });
  }
  for (const double k : {2.0, 3.0, 4.0}) {
    (void)b.get_or_compute<double>(key_of(k), [k] { return 10.0 * k; });
  }

  const std::vector<std::uint64_t> have_a = cache::digest_summary(a);
  EXPECT_EQ(have_a.size(), 2u);
  EXPECT_EQ(cache::decode_digests(cache::encode_digests(have_a)), have_a);
  EXPECT_THROW((void)cache::decode_digests("short"), ModelError);

  // B answers A's pull with only what A is missing: keys 3 and 4.
  cache::ExportStats exported;
  const std::string delta = cache::export_delta_blob(b, have_a, &exported);
  EXPECT_EQ(exported.records, 2u);
  const cache::ImportStats imported = cache::import_segment_blob(a, delta);
  EXPECT_EQ(imported.records_seeded, 2u);
  EXPECT_EQ(imported.records_duplicate, 0u);
  EXPECT_EQ(a.size(), 4u);
  for (const double k : {1.0, 2.0, 3.0, 4.0}) {
    const auto value = a.get_or_compute<double>(
        key_of(k),
        []() -> double { throw ModelError("anti-entropy lost a record"); });
    EXPECT_EQ(*value, 10.0 * k);
  }
}

TEST(AntiEntropy, ConvergesUnderConcurrentInserts) {
  // Two replicas keep computing disjoint fresh keys while an
  // anti-entropy thread exchanges deltas in both directions. After the
  // writers stop, one final round in each direction must make the
  // replicas identical -- and the exchange must be TSan-clean against
  // the live insert path.
  cache::EvalCache a(cache::EvalCache::Config{16, 4096});
  cache::EvalCache b(cache::EvalCache::Config{16, 4096});
  constexpr int kKeysPerSide = 300;
  std::atomic<bool> writers_done{false};

  const auto pull = [](cache::EvalCache& into, cache::EvalCache& from) {
    const std::string delta =
        cache::export_delta_blob(from, cache::digest_summary(into));
    (void)cache::import_segment_blob(into, delta);
  };

  std::thread writer_a([&] {
    for (int k = 0; k < kKeysPerSide; ++k) {
      (void)a.get_or_compute<double>(key_of(double(k)),
                                     [k] { return double(k); });
    }
  });
  std::thread writer_b([&] {
    for (int k = 0; k < kKeysPerSide; ++k) {
      (void)b.get_or_compute<double>(key_of(1000.0 + k),
                                     [k] { return 1000.0 + k; });
    }
  });
  std::thread exchanger([&] {
    while (!writers_done.load()) {
      pull(a, b);
      pull(b, a);
    }
  });
  writer_a.join();
  writer_b.join();
  writers_done = true;
  exchanger.join();
  pull(a, b);
  pull(b, a);

  EXPECT_EQ(a.size(), std::size_t(2 * kKeysPerSide));
  EXPECT_EQ(b.size(), std::size_t(2 * kKeysPerSide));
  EXPECT_EQ(cache::digest_summary(a), cache::digest_summary(b));
}

}  // namespace
