// Regenerates the paper's service- and function-level availabilities:
// Table 3 (external services), Table 4 (application/database), Table 5 /
// Table 7 anchor (web service, incl. A(WS) = 0.999995587), and Table 6
// (function availabilities), for both architectures.

#include "bench_util.hpp"
#include "upa/common/table.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/ta/functions.hpp"
#include "upa/ta/services.hpp"

namespace {

namespace ut = upa::ta;
namespace uc = upa::common;

void print_external_services() {
  uc::Table t({"N (flight=hotel=car)", "A(Flight)=A(Hotel)=A(Car)",
               "A(Payment)"});
  t.set_title("Table 3 -- external service availability (a = 0.9 each)");
  for (std::size_t n : {1u, 2u, 3u, 4u, 5u, 10u}) {
    const auto p = upa::bench::paper_params(n);
    t.add_row({std::to_string(n), uc::fmt(ut::flight_availability(p), 9),
               uc::fmt(p.a_payment, 9)});
  }
  std::cout << t << "\n";
}

void print_internal_services() {
  uc::Table t({"service", "basic architecture", "redundant architecture"});
  t.set_title(
      "Table 4 -- application/database service availability\n"
      "(redundant pair formula 1-(1-A)^2; the paper's printed '1-2(1-A)' "
      "is a typo, see DESIGN.md)");
  auto basic = upa::bench::paper_params(1);
  basic.architecture = ut::Architecture::kBasic;
  const auto redundant = upa::bench::paper_params(1);
  t.set_align(0, uc::Align::kLeft);
  t.add_row({"A(AS)",
             uc::fmt(ut::application_service_availability(basic), 9),
             uc::fmt(ut::application_service_availability(redundant), 9)});
  t.add_row({"A(DS)",
             uc::fmt(ut::database_service_availability(basic), 9),
             uc::fmt(ut::database_service_availability(redundant), 9)});
  std::cout << t << "\n";
}

void print_web_service() {
  uc::Table t({"configuration", "A(Web service)", "paper", "abs diff"});
  t.set_align(0, uc::Align::kLeft);
  t.set_title(
      "Table 5 / Table 7 anchor -- web service availability\n"
      "(N_W=4, c=0.98, lambda=1e-4/h, mu=1/h, beta=12/h, alpha=nu=100/s, "
      "K=10)");
  const auto p = upa::bench::paper_params(1);
  const double anchor = ut::web_service_availability(p);
  t.add_row({"redundant, imperfect coverage (paper)", uc::fmt(anchor, 10),
             "0.999995587", uc::fmt_sci(std::abs(anchor - 0.999995587), 2)});
  auto perfect = p;
  perfect.coverage_model = ut::CoverageModel::kPerfect;
  t.add_row({"redundant, perfect coverage",
             uc::fmt(ut::web_service_availability(perfect), 10), "-", "-"});
  auto basic = p;
  basic.architecture = ut::Architecture::kBasic;
  t.add_row({"basic (single server, eq. 2)",
             uc::fmt(ut::web_service_availability(basic), 10), "-", "-"});
  std::cout << t << "\n";
}

void print_functions() {
  uc::Table t({"function", "basic architecture", "redundant architecture"});
  t.set_align(0, uc::Align::kLeft);
  t.set_title("Table 6 -- function availabilities (N_F=N_H=N_C=1)");
  auto basic = upa::bench::paper_params(1);
  basic.architecture = ut::Architecture::kBasic;
  const auto redundant = upa::bench::paper_params(1);
  const auto sb = ut::compute_services(basic);
  const auto sr = ut::compute_services(redundant);
  for (const auto f : ut::kAllFunctions) {
    t.add_row({ut::function_name(f),
               uc::fmt(ut::function_availability(f, sb, basic), 9),
               uc::fmt(ut::function_availability(f, sr, redundant), 9)});
  }
  std::cout << t << "\n";
}

void print_all() {
  upa::bench::print_header(
      "Tables 3-6 + the A(WS) anchor",
      "Service- and function-level availabilities of the travel agency.");
  print_external_services();
  print_internal_services();
  print_web_service();
  print_functions();
}

void bm_web_service_closed_form(benchmark::State& state) {
  const auto p = upa::bench::paper_params(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ut::web_service_availability(p));
  }
}
BENCHMARK(bm_web_service_closed_form);

void bm_web_service_composite_ctmc(benchmark::State& state) {
  const auto p = upa::bench::paper_params(1);
  const auto farm = ut::web_farm_params(p);
  const auto queue = ut::web_queue_params(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        upa::core::composite_imperfect(farm, queue).availability());
  }
}
BENCHMARK(bm_web_service_composite_ctmc);

void bm_compute_all_services(benchmark::State& state) {
  const auto p = upa::bench::paper_params(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ut::compute_services(p));
  }
}
BENCHMARK(bm_compute_all_services);

}  // namespace

UPA_BENCH_MAIN(print_all)
