#include "upa/control/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/serve/loadgen.hpp"
#include "upa/serve/server.hpp"

namespace upa::control {

namespace {

/// Raw phase table before the FaultPlan overlay and request sizing.
std::vector<ControlPhase> base_phases(const ControlScenarioConfig& c) {
  UPA_REQUIRE(c.scenario == "full" || c.scenario == "flash",
              "scenario must be 'full' or 'flash'");
  UPA_REQUIRE(std::isfinite(c.nu) && c.nu > 0.0,
              "service rate must be positive");
  UPA_REQUIRE(c.duration_scale > 0.0, "duration scale must be positive");
  const double s = c.duration_scale;
  std::vector<ControlPhase> phases;
  if (c.scenario == "full") {
    phases.push_back({"night", 6.0, c.nu, 6.0 * s, 0, false});
    phases.push_back({"morning", 12.0, c.nu, 6.0 * s, 0, false});
    phases.push_back({"flash", 36.0, c.nu, 10.0 * s, 0, false});
    phases.push_back({"outage", 12.0, c.nu, 10.0 * s, 0, false});
    phases.push_back({"recovery", 8.0, c.nu, 6.0 * s, 0, false});
  } else {
    phases.push_back({"morning", 12.0, c.nu, 4.0 * s, 0, false});
    phases.push_back({"flash", 36.0, c.nu, 8.0 * s, 0, false});
  }
  return phases;
}

}  // namespace

inject::FaultPlan control_fault_plan(const ControlScenarioConfig& config) {
  inject::FaultPlan plan;
  double t = 0.0;
  for (const ControlPhase& phase : base_phases(config)) {
    if (phase.name == "outage") {
      // Plan hours map 1:3600 onto experiment seconds, like the farm
      // experiment's kill schedule.
      plan.add(inject::FaultTarget::kWebFarm, t / 3600.0,
               phase.duration_seconds / 3600.0);
    }
    t += phase.duration_seconds;
  }
  if (!plan.empty()) plan.validate(t / 3600.0);
  return plan;
}

std::vector<ControlPhase> control_phases(
    const ControlScenarioConfig& config) {
  std::vector<ControlPhase> phases = base_phases(config);
  const inject::FaultPlan plan = control_fault_plan(config);
  double t = 0.0;
  for (ControlPhase& phase : phases) {
    const double midpoint_hours =
        (t + phase.duration_seconds / 2.0) / 3600.0;
    if (plan.forced_down(inject::FaultTarget::kWebFarm, midpoint_hours)) {
      // Brown-out, not a kill: the backend slows to a third of its
      // healthy rate, so the same lambda now overloads the old plan.
      phase.nu = config.nu / 3.0;
      phase.faulted = true;
    }
    phase.requests = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::llround(phase.lambda * phase.duration_seconds)));
    t += phase.duration_seconds;
  }
  return phases;
}

namespace {

ControlRunSummary run_pass(const ControlScenarioConfig& config,
                           const std::vector<ControlPhase>& phases,
                           bool controlled,
                           ControllerStats* controller_stats) {
  serve::ServerConfig sc;
  sc.port = 0;
  sc.workers = config.initial_workers;
  sc.capacity = config.initial_capacity;
  serve::Server server(std::move(sc));
  server.start();

  std::optional<Controller> controller;
  if (controlled) {
    ControllerOptions co;
    co.host = "127.0.0.1";
    co.port = server.port();
    co.tick_interval_seconds = config.tick_interval_seconds;
    co.policy.target_loss = config.target_loss;
    co.policy.max_workers = config.max_workers;
    co.policy.max_capacity = config.max_capacity;
    co.obs = config.obs;
    controller.emplace(std::move(co));
    controller->start();
  }

  ControlRunSummary summary;
  std::size_t index = 0;
  for (const ControlPhase& phase : phases) {
    serve::LossConfig lc;
    lc.port = server.port();
    lc.lambda = phase.lambda;
    lc.nu = phase.nu;
    lc.requests = phase.requests;
    // Distinct substreams per (pass, phase) so the two passes replay
    // the same arrival processes while phases stay independent.
    lc.seed = config.seed * 1000 + index * 2 + (controlled ? 1 : 0);
    const serve::LossResult r = serve::run_loss_workload(lc);

    ControlPhaseOutcome out;
    out.name = phase.name;
    out.lambda = phase.lambda;
    out.nu = phase.nu;
    out.faulted = phase.faulted;
    out.requests = r.sent;
    out.rejected = r.rejected;
    out.transport_errors = r.transport_errors;
    out.measured_loss = r.measured_loss;
    out.gate = config.target_loss +
               4.0 * std::sqrt(config.target_loss *
                               (1.0 - config.target_loss) /
                               static_cast<double>(std::max<std::size_t>(
                                   r.sent, 1))) +
               0.02;
    out.within_gate = r.measured_loss <= out.gate;
    const serve::ServerStats stats = server.stats();
    out.workers_after = stats.workers;
    out.capacity_after = stats.capacity;

    summary.transport_errors += r.transport_errors;
    summary.all_within = summary.all_within && out.within_gate;
    summary.any_violation = summary.any_violation || !out.within_gate;
    summary.phases.push_back(std::move(out));
    ++index;
  }

  if (controller) {
    if (controller_stats != nullptr) *controller_stats = controller->stats();
    controller->stop();
  }
  server.stop();
  return summary;
}

}  // namespace

ControlExperimentResult run_control_experiment(
    const ControlScenarioConfig& config) {
  UPA_REQUIRE(config.target_loss > 0.0 && config.target_loss < 1.0,
              "target loss must be in (0, 1)");
  UPA_REQUIRE(config.initial_workers >= 1 &&
                  config.initial_capacity >= config.initial_workers,
              "initial config must satisfy K >= i >= 1");
  const std::vector<ControlPhase> phases = control_phases(config);

  ControlExperimentResult result;
  result.target_loss = config.target_loss;
  result.controlled =
      run_pass(config, phases, /*controlled=*/true, &result.controller);
  result.baseline =
      run_pass(config, phases, /*controlled=*/false, nullptr);

  result.control_ok = result.controlled.all_within &&
                      result.controlled.transport_errors == 0 &&
                      result.controller.applies >= 1;
  result.baseline_violates = result.baseline.any_violation;
  return result;
}

}  // namespace upa::control
