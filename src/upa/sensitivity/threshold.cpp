#include "upa/sensitivity/threshold.hpp"

#include <vector>

#include "upa/common/error.hpp"

namespace upa::sensitivity {

std::optional<std::size_t> min_satisfying(
    std::size_t lo, std::size_t hi,
    const std::function<bool(std::size_t)>& predicate) {
  UPA_REQUIRE(predicate != nullptr, "predicate must be provided");
  UPA_REQUIRE(lo <= hi, "empty search range");
  for (std::size_t n = lo; n <= hi; ++n) {
    if (predicate(n)) return n;
  }
  return std::nullopt;
}

std::vector<std::size_t> satisfying_set(
    std::size_t lo, std::size_t hi,
    const std::function<bool(std::size_t)>& predicate) {
  UPA_REQUIRE(predicate != nullptr, "predicate must be provided");
  UPA_REQUIRE(lo <= hi, "empty search range");
  std::vector<std::size_t> result;
  for (std::size_t n = lo; n <= hi; ++n) {
    if (predicate(n)) result.push_back(n);
  }
  return result;
}

double availability_for_downtime_minutes_per_year(double minutes) {
  UPA_REQUIRE(minutes >= 0.0, "downtime must be non-negative");
  return 1.0 - minutes / (8760.0 * 60.0);
}

}  // namespace upa::sensitivity
