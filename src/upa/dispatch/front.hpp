#pragma once
// The dispatch front end: a multi-threaded TCP server speaking the same
// newline-delimited JSON wire protocol as `upa_served`, forwarding each
// request line to one of N upstream replicas. Forwarding is verbatim in
// both directions -- the raw request line goes out, the upstream's raw
// response line comes back -- so with fault injection disabled a
// dispatcher-fronted response is byte-identical to a direct one (pinned
// in tests/test_dispatch.cpp).
//
// Retry layer: 503 (admission rejected), 504 (deadline), connection
// refusal, and mid-response transport errors are retried against the
// balancer's next-preferred replica with exponential backoff + jitter,
// up to a per-request attempt budget. Deterministic error envelopes
// (400/404/500) are the upstream's answer and are returned immediately
// -- retrying them would just recompute the same error. A spent budget
// yields a single coherent envelope: code 503, message
// "retries_exhausted", and an `attempts` list naming every upstream
// tried and how it failed; clients classify it as a rejection, so
// exhausted retries surface as farm-level loss.
//
// One locally-served method, `dispatch_stats`, reports front counters
// and per-upstream state over RPC; every other method (including the
// upstreams' own `stats`) is forwarded untouched.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "upa/dispatch/balancer.hpp"
#include "upa/dispatch/health.hpp"
#include "upa/dispatch/upstream.hpp"
#include "upa/obs/metrics.hpp"
#include "upa/obs/observer.hpp"
#include "upa/serve/protocol.hpp"
#include "upa/serve/telemetry.hpp"
#include "upa/sim/rng.hpp"

namespace upa::dispatch {

/// Retry/backoff policy. `max_attempts` is the total per-request budget
/// (first try included); backoff before retry r (1-based) is
/// min(initial * 2^(r-1), max) scaled down by up to `jitter`.
struct RetryConfig {
  std::size_t max_attempts = 3;
  double backoff_initial_seconds = 0.005;
  double backoff_max_seconds = 0.05;
  double jitter = 0.5;          ///< fraction of the delay randomized away
  std::uint64_t jitter_seed = 1;
};

struct FrontConfig {
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  std::vector<UpstreamAddress> upstreams;
  BalancePolicy policy = BalancePolicy::kLeastOutstanding;
  /// Front worker threads; each forwards one client connection at a
  /// time, so this bounds concurrent forwarded calls.
  std::size_t workers = 16;
  /// Admitted client connections (queued + in service); on overflow the
  /// acceptor answers 503 without reading. Sized so the front itself
  /// never rejects under bench load -- farm-level loss should come from
  /// the upstreams' M/M/i/K admission, not from the dispatcher.
  std::size_t max_clients = 256;
  /// Client-side socket idle timeout (both directions).
  double read_timeout_seconds = 10.0;
  /// Per-attempt upstream connect timeout. Small: a dead replica must
  /// fail fast so the retry layer can move on.
  double upstream_connect_timeout_seconds = 1.0;
  /// Per-attempt upstream receive timeout (waiting for the response
  /// line). Bounded so a replica killed mid-response is a fast retry,
  /// not a 30 s stall.
  double upstream_call_timeout_seconds = 10.0;
  HealthConfig health;
  RetryConfig retry;
  /// Optional observability sink (non-owning, mutex-guarded inside).
  obs::Observer* obs = nullptr;
  /// Distributed tracing mode (needs `obs`). Per sampled request the
  /// front records one dispatch_request root span plus one
  /// dispatch_attempt child per forwarding attempt (attrs: ref,
  /// upstream, outcome), and rewrites each attempt's request line with
  /// a trace context -- adopting an incoming one or originating a fresh
  /// trace_id -- so upstream serve_request spans parent on the attempt.
  /// Off by default: forwarding stays verbatim, byte for byte.
  bool trace = false;
  /// Label stamped on telemetry lines; empty = "upa_dispatch:<port>".
  std::string telemetry_process;
};

/// Point-in-time counter snapshot (all values since start()). The
/// forwarded_* counters classify each *request* by its final outcome --
/// a retried-then-succeeded request counts exactly once, as ok.
struct FrontStats {
  std::uint64_t accepted = 0;        ///< client connections admitted
  std::uint64_t rejected = 0;        ///< client connections 503'd (full)
  std::uint64_t completed = 0;       ///< client connections fully handled
  std::uint64_t requests = 0;        ///< request lines answered
  std::uint64_t forwarded_ok = 0;
  std::uint64_t forwarded_rejected = 0;   ///< final 503 (incl. exhausted)
  std::uint64_t forwarded_deadline = 0;   ///< final 504
  std::uint64_t forwarded_error = 0;      ///< final 400/404/500
  std::uint64_t forwarded_transport = 0;  ///< final attempt died on the wire
  std::uint64_t retries = 0;         ///< attempts beyond each first try
  std::uint64_t failovers = 0;       ///< retries that switched replica
  std::uint64_t retries_exhausted = 0;    ///< budgets fully spent
  std::uint64_t stats_served = 0;    ///< dispatch_stats answered locally
  std::size_t in_system = 0;
  std::size_t max_in_system = 0;
};

/// One forwarded attempt, for the exhausted envelope and tests.
struct ForwardAttempt {
  std::size_t upstream_index = 0;
  AttemptOutcome outcome = AttemptOutcome::kTransport;
};

/// Outcome of forwarding one request line through the retry layer.
struct ForwardResult {
  std::string response_line;  ///< verbatim upstream bytes, or the
                              ///< retries_exhausted envelope
  AttemptOutcome final_outcome = AttemptOutcome::kTransport;
  std::vector<ForwardAttempt> attempts;
  bool exhausted = false;
};

class Front {
 public:
  /// Validates the config; throws ModelError on empty upstreams,
  /// non-positive timeouts, or a zero attempt budget.
  explicit Front(FrontConfig config);
  ~Front();

  Front(const Front&) = delete;
  Front& operator=(const Front&) = delete;

  /// Binds, listens, runs one initial health sweep, and spawns the
  /// acceptor, workers, and the health checker.
  void start();

  /// Graceful drain, mirroring serve::Server::stop(). Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] const FrontConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] FrontStats stats() const;
  [[nodiscard]] std::vector<UpstreamSnapshot> upstreams() const;

  /// The retry layer, exposed for tests: forwards one raw request line
  /// and returns the response plus the attempt trail. Thread-safe.
  [[nodiscard]] ForwardResult forward_line(const std::string& request_line);

  /// Snapshots counters into `metrics` as dispatch.* gauges, per-upstream
  /// dispatch.upstream.<host:port>.* gauges, and merges the per-outcome
  /// attempt-latency histograms. Intended for a fresh registry per
  /// snapshot.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    int fd = -1;
  };

  /// One forwarding attempt with its trace bookkeeping: the per-process
  /// span reference stamped into the attempt's trace context (the value
  /// the upstream's serve_request span carries as parent_span) and the
  /// attempt's wall-clock window.
  struct TracedAttempt {
    std::size_t upstream_index = 0;
    AttemptOutcome outcome = AttemptOutcome::kTransport;
    std::uint64_t ref = 0;
    Clock::time_point begin;
    Clock::time_point end;
  };

  void acceptor_loop();
  void worker_loop();
  void handle_connection(const Job& job);
  /// Subscribe interception, mirroring serve::Server: 0 = not a
  /// subscribe, 1 = fd handed to the telemetry streamer, 2 = error
  /// envelope already sent.
  [[nodiscard]] int maybe_subscribe(int fd, const std::string& line);
  [[nodiscard]] bool park_for_next_request(int fd);
  void unpark(int fd);
  /// One request line -> one response line: serves dispatch_stats
  /// locally, forwards everything else, and bumps the final-outcome
  /// counters (exactly once per request).
  [[nodiscard]] std::string respond_line(const std::string& line,
                                         std::uint64_t conn,
                                         std::uint64_t seq);
  [[nodiscard]] std::string dispatch_stats_line(const std::string& line);
  [[nodiscard]] ForwardResult forward_line_traced(
      const std::string& request_line, std::uint64_t conn,
      std::uint64_t seq);
  /// One attempt against one upstream; records pool counters and the
  /// per-outcome and per-upstream latency histograms.
  [[nodiscard]] ForwardAttempt attempt_once(std::size_t index,
                                            const std::string& line,
                                            std::string& response_out);
  void backoff_sleep(std::size_t retry_number);
  [[nodiscard]] std::string exhausted_envelope(
      const std::string& request_line,
      const std::vector<ForwardAttempt>& attempts) const;
  /// Records the dispatch_request root + per-attempt child spans as one
  /// complete batch under latency_mutex_ (see serve::Server for why).
  void record_request_trace(const std::string& method,
                            const serve::TraceContext& context,
                            const ForwardResult& result,
                            const std::vector<TracedAttempt>& attempts,
                            Clock::time_point request_begin,
                            std::uint64_t conn, std::uint64_t seq);

  FrontConfig config_;
  UpstreamPool pool_;
  Balancer balancer_;
  std::unique_ptr<HealthChecker> health_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> accept_stop_{false};
  std::mutex stop_mutex_;  // serializes start/stop callers
  bool started_ = false;   // guarded by stop_mutex_

  std::thread acceptor_;
  std::vector<std::thread> workers_;

  // mutex_ guards queue_, in_system_, stopping_, parked_fds_.
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<Job> queue_;
  std::size_t in_system_ = 0;
  bool stopping_ = false;
  std::vector<int> parked_fds_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> forwarded_ok_{0};
  std::atomic<std::uint64_t> forwarded_rejected_{0};
  std::atomic<std::uint64_t> forwarded_deadline_{0};
  std::atomic<std::uint64_t> forwarded_error_{0};
  std::atomic<std::uint64_t> forwarded_transport_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> failovers_{0};
  std::atomic<std::uint64_t> retries_exhausted_{0};
  std::atomic<std::uint64_t> stats_served_{0};
  std::atomic<std::size_t> max_in_system_{0};

  std::mutex rng_mutex_;  // guards jitter_rng_
  sim::Xoshiro256 jitter_rng_;

  // Tracing state: a per-process attempt-span reference counter (the
  // value propagated as trace.span_id and echoed back by upstream spans
  // as parent_span), a client-connection serial, and the base mixed
  // into originated trace ids so two fronts never collide.
  std::atomic<std::uint64_t> span_ref_{1};
  std::atomic<std::uint64_t> conn_serial_{0};
  std::atomic<std::uint64_t> origin_serial_{0};
  std::uint64_t trace_origin_base_ = 0;

  // latency_mutex_ guards latency_by_outcome_, latency_by_upstream_,
  // and obs; traced span batches land under one hold (see server.hpp).
  mutable std::mutex latency_mutex_;
  std::vector<obs::Histogram> latency_by_outcome_;  // indexed by outcome
  std::vector<obs::Histogram> latency_by_upstream_; // indexed by upstream
  std::unique_ptr<serve::TelemetryStreamer> telemetry_;
};

}  // namespace upa::dispatch
