#include "upa/common/error.hpp"

#include <cstdio>
#include <cstdlib>

namespace upa::common {

void throw_model_error(const std::string& message, std::source_location loc) {
  throw ModelError(std::string(loc.function_name()) + ": " + message);
}

namespace detail {

void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "upa internal invariant violated: %s (%s:%d)\n", expr,
               file, line);
  std::abort();
}

}  // namespace detail
}  // namespace upa::common
