#pragma once
// Push-based telemetry streaming: a `subscribe` RPC turns an accepted
// connection into a one-way JSONL channel. The streamer owns the
// subscriber sockets and runs one sender thread per subscriber; every
// tick it emits one metrics snapshot line
//
//   {"telemetry":"metrics","process":"upa_served:7077","seq":3,
//    "dropped_spans":0,"counters":{...},"gauges":{...},
//    "histograms":{"serve.request_latency_seconds":
//                  {"count":12,"sum":0.9,"bounds":[...],"counts":[...]}}}
//
// followed by one line per span completed since the previous tick:
//
//   {"telemetry":"span","process":"upa_served:7077","id":5,"parent":4,
//    "name":"handler","level":"serve_phase","domain":"wall_seconds",
//    "start":1.25,"end":1.31,"attrs":{...}}
//
// Span streaming is cursor-based over the owner's append-only span
// table; the owner guarantees (via its copy_spans callback) that spans
// are only visible once complete, so a subscriber never sees a
// half-open span. A slow or dead subscriber is detached on the first
// failed send -- it cannot block the serving path, which never touches
// the streamer after the subscribe handoff.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <condition_variable>

#include "upa/obs/metrics.hpp"
#include "upa/obs/trace.hpp"
#include "upa/serve/json.hpp"

namespace upa::serve {

/// {"count":N,"sum":S,"bounds":[...],"counts":[...]} for one
/// le-bucket histogram (counts has the trailing overflow bucket).
/// Shared by the telemetry stream, `stats`, and `dispatch_stats`.
[[nodiscard]] Json histogram_json(const obs::Histogram& histogram);

struct TelemetryStreamerOptions {
  /// Label stamped on every emitted line (e.g. "upa_served:7077").
  std::string process;
  std::size_t max_subscribers = 64;
  /// Send timeout per tick; a subscriber that cannot drain one tick in
  /// this long is dropped.
  double io_timeout_seconds = 10.0;
  /// Fills a fresh registry with the owner's current metric snapshot.
  std::function<void(obs::MetricsRegistry&)> fill_metrics;
  /// Copies completed spans at table positions >= cursor and advances
  /// the cursor past them. Must be internally synchronized.
  std::function<std::vector<obs::Span>(std::size_t& cursor)> copy_spans;
  /// Current dropped-span count of the owner's tracer.
  std::function<std::uint64_t()> dropped_spans;
};

class TelemetryStreamer {
 public:
  explicit TelemetryStreamer(TelemetryStreamerOptions options);
  ~TelemetryStreamer();

  TelemetryStreamer(const TelemetryStreamer&) = delete;
  TelemetryStreamer& operator=(const TelemetryStreamer&) = delete;

  /// Takes ownership of `fd` and starts streaming to it: first the ack
  /// line (the subscribe RPC response), then one tick immediately, then
  /// one tick per interval. Returns false (without touching `fd`) when
  /// the subscriber limit is reached or the streamer is stopping.
  bool add_subscriber(int fd, double interval_seconds,
                      const std::string& ack_line);

  /// Stops every subscriber thread and closes every owned fd. Idempotent.
  void stop();

  [[nodiscard]] std::size_t active_subscribers();

 private:
  struct Subscriber {
    int fd = -1;
    double interval_seconds = 0.5;
    bool done = false;  // guarded by mutex_
    std::thread thread;
  };

  void run_subscriber(Subscriber* subscriber, std::string ack_line);
  [[nodiscard]] std::string build_tick(std::uint64_t seq,
                                       std::size_t& span_cursor) const;
  void reap_finished_locked();

  TelemetryStreamerOptions options_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::vector<std::unique_ptr<Subscriber>> subscribers_;
};

}  // namespace upa::serve
