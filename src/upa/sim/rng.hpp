#pragma once
// Deterministic, seedable pseudo-random number generation built from
// scratch: SplitMix64 for seeding and xoshiro256** as the workhorse.
// Simulations must be reproducible across runs and platforms, so we do
// not rely on implementation-defined std:: distributions.

#include <array>
#include <cstdint>

namespace upa::sim {

/// SplitMix64: used to expand a single seed into xoshiro state and to
/// derive independent streams.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna). Satisfies
/// std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  result_type operator()() noexcept;

  /// Uniform double in [0, 1) with 53 random bits.
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in (0, 1] — safe as an argument to log().
  [[nodiscard]] double uniform01_open_left() noexcept;

  /// Derives an independent generator (seeded from this stream).
  [[nodiscard]] Xoshiro256 split() noexcept;

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace upa::sim
