#pragma once
// Fault-injection campaigns: replay a batch of fault plans against the
// end-to-end travel-agency simulator at a common seed and report, per
// plan, the perceived availability with its confidence interval and the
// delta against the no-fault baseline. The baseline run IS the plain
// simulator (empty plan), so campaign results at the same seed reproduce
// `ta::simulate_end_to_end` bit for bit.

#include <string>
#include <vector>

#include "upa/inject/fault_plan.hpp"
#include "upa/ta/end_to_end_sim.hpp"

namespace upa::obs {
struct Observer;
}  // namespace upa::obs

namespace upa::inject {

/// One named what-if scenario of a campaign.
struct CampaignPlan {
  std::string name;
  FaultPlan plan;
};

/// Controls for run_campaign beyond the per-run simulator options.
struct CampaignOptions {
  /// Simulator options shared by the baseline and every plan (its `faults`
  /// member is ignored -- each campaign plan replaces it).
  ta::EndToEndOptions end_to_end;
  /// Optional observability sink (non-owning). Each measurement emits one
  /// `campaign_plan` wall-time span (with availability / delta / retry
  /// attributes) plus campaign counters, and is itself instrumented via
  /// `end_to_end.obs`. When only one of the two observer fields is set it
  /// is used for both purposes.
  obs::Observer* obs = nullptr;
  /// Worker threads for plan-level fan-out: 0 = one per hardware thread,
  /// 1 = the legacy serial loop. The baseline and all plans are measured
  /// concurrently, each recording into a private observer shard, and
  /// entries plus shards are re-assembled in input order after the join
  /// -- so campaign results are bit-for-bit identical at every setting.
  /// When the fan-out actually runs parallel (> 1 worker), each inner
  /// simulate_end_to_end is forced to its serial path so the two
  /// parallelism levels do not multiply; set threads = 1 here to keep
  /// replication-level parallelism inside each run instead.
  std::size_t threads = 0;
};

/// Measurement of one plan (the baseline entry has an empty plan and a
/// zero delta by construction).
struct CampaignEntry {
  std::string name;
  sim::ConfidenceInterval perceived_availability;
  double delta_vs_baseline = 0.0;
  double observed_web_service_availability = 0.0;
  double mean_retries_per_session = 0.0;
  double abandonment_fraction = 0.0;
};

struct CampaignResult {
  /// Baseline first, then one entry per plan in input order.
  std::vector<CampaignEntry> entries;

  [[nodiscard]] const CampaignEntry& baseline() const { return entries.at(0); }

  /// RFC-4180-ish CSV (header + one row per entry) for post-processing.
  [[nodiscard]] std::string csv() const;

  /// Writes csv() to a file; throws ModelError on I/O failure.
  void write_csv(const std::string& path) const;
};

/// Runs the baseline plus every plan through `ta::simulate_end_to_end`
/// with identical options and seed. Any fault plan already present in
/// the options is ignored (each campaign plan replaces it); the retry
/// policy applies to every run.
///
/// When the evaluation cache is enabled (cache::set_enabled), each
/// measurement is keyed on (user class, parameters, result-affecting
/// options, retry policy, sorted plan windows) -- repeated campaigns over
/// the same scenarios replay the exact first-run entries (plan names are
/// cosmetic and reapplied; deltas are always re-derived against the
/// campaign's own baseline).
[[nodiscard]] CampaignResult run_campaign(
    ta::UserClass uclass, const ta::TaParameters& params,
    const CampaignOptions& options, const std::vector<CampaignPlan>& plans);

/// Convenience overload taking bare simulator options (no observer).
[[nodiscard]] CampaignResult run_campaign(
    ta::UserClass uclass, const ta::TaParameters& params,
    const ta::EndToEndOptions& base_options,
    const std::vector<CampaignPlan>& plans);

}  // namespace upa::inject
