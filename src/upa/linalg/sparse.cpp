#include "upa/linalg/sparse.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "upa/common/error.hpp"

namespace upa::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  UPA_REQUIRE(rows > 0 && cols > 0, "sparse dimensions must be positive");
  for (const Triplet& t : triplets) {
    UPA_REQUIRE(t.row < rows && t.col < cols,
                "sparse triplet index out of range");
  }
  // Sort by (row, col) with the value's bit pattern as the tiebreak.
  // std::sort is not stable, so without the tiebreak duplicate triplets
  // would be summed in an unspecified order and the assembled value could
  // differ between runs by the non-associativity of double addition. The
  // bit-pattern key gives duplicates one canonical summation order that
  // depends only on the multiset of triplets -- never on input order --
  // which is what lets parallel producers emit triplets in any order and
  // still assemble the identical matrix.
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              if (a.row != b.row) return a.row < b.row;
              if (a.col != b.col) return a.col < b.col;
              return std::bit_cast<std::uint64_t>(a.value) <
                     std::bit_cast<std::uint64_t>(b.value);
            });

  row_start_.assign(rows_ + 1, 0);
  col_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      UPA_ASSERT(j == i ||
                 std::bit_cast<std::uint64_t>(triplets[j - 1].value) <=
                     std::bit_cast<std::uint64_t>(triplets[j].value));
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      col_.push_back(triplets[i].col);
      values_.push_back(sum);
      ++row_start_[triplets[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    row_start_[r + 1] += row_start_[r];
  }
}

// CSR iteration order (relied on by the multiply kernels and by the
// deterministic-merge story): rows ascending, and within each row the
// stored columns strictly ascending -- assembly sorts and dedupes, so
// values_[row_start_[r] .. row_start_[r+1]) walk row r left to right.
// Each kernel's inner loop runs over the contiguous slice of col_/values_
// through raw pointers so the compiler sees the unit-stride access
// without aliasing the bookkeeping vectors.

Vector SparseMatrix::multiply(const Vector& x) const {
  UPA_REQUIRE(x.size() == cols_, "shape mismatch in sparse multiply");
  Vector y(rows_, 0.0);
  const std::size_t* const cols = col_.data();
  const double* const values = values_.data();
  const double* const xs = x.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    const std::size_t end = row_start_[r + 1];
    for (std::size_t k = row_start_[r]; k < end; ++k) {
      s += values[k] * xs[cols[k]];
    }
    y[r] = s;
  }
  return y;
}

Vector SparseMatrix::left_multiply(const Vector& x) const {
  UPA_REQUIRE(x.size() == rows_, "shape mismatch in sparse left_multiply");
  Vector y(cols_, 0.0);
  const std::size_t* const cols = col_.data();
  const double* const values = values_.data();
  double* const ys = y.data();
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const std::size_t end = row_start_[r + 1];
    for (std::size_t k = row_start_[r]; k < end; ++k) {
      ys[cols[k]] += xr * values[k];
    }
  }
  return y;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  UPA_REQUIRE(r < rows_ && c < cols_, "sparse index out of range");
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_start_[r]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_start_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_.begin())];
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      m(r, col_[k]) = values_[k];
    }
  }
  return m;
}

std::span<const std::size_t> SparseMatrix::row_cols(std::size_t r) const {
  UPA_REQUIRE(r < rows_, "row index out of range");
  return {col_.data() + row_start_[r], row_start_[r + 1] - row_start_[r]};
}

std::span<const double> SparseMatrix::row_values(std::size_t r) const {
  UPA_REQUIRE(r < rows_, "row index out of range");
  return {values_.data() + row_start_[r], row_start_[r + 1] - row_start_[r]};
}

}  // namespace upa::linalg
