// Randomized property tests (seeded, fully deterministic): generate
// random model structures and check that independent engines agree on
// them. This catches errors that hand-picked examples miss.

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "upa/faulttree/bdd.hpp"
#include "upa/faulttree/cutsets.hpp"
#include "upa/linalg/lu.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/profile/visit_distribution.hpp"
#include "upa/queueing/birth_death_queue.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/rbd/block.hpp"
#include "upa/rbd/paths.hpp"
#include "upa/sim/rng.hpp"

namespace ur = upa::rbd;
namespace uf = upa::faulttree;
namespace um = upa::markov;
namespace up = upa::profile;

namespace {

/// Random series/parallel/k-of-n block over a small component pool
/// (components repeat across branches, stressing the factoring path).
ur::Block random_block(upa::sim::Xoshiro256& rng, int depth) {
  const std::size_t pool = 6;
  if (depth <= 0 || rng.uniform01() < 0.35) {
    return ur::Block::component(
        "c" + std::to_string(static_cast<std::size_t>(rng() % pool)));
  }
  const std::size_t arity = 2 + rng() % 3;
  std::vector<ur::Block> children;
  for (std::size_t i = 0; i < arity; ++i) {
    children.push_back(random_block(rng, depth - 1));
  }
  const double pick = rng.uniform01();
  if (pick < 0.4) return ur::Block::series(std::move(children));
  if (pick < 0.8) return ur::Block::parallel(std::move(children));
  const std::size_t k = 1 + rng() % children.size();
  return ur::Block::k_of_n(k, std::move(children));
}

ur::ParamMap random_params(upa::sim::Xoshiro256& rng) {
  ur::ParamMap params;
  for (std::size_t i = 0; i < 6; ++i) {
    params["c" + std::to_string(i)] = 0.5 + 0.5 * rng.uniform01();
  }
  return params;
}

/// Brute-force availability: enumerate all component states.
double brute_force_availability(const ur::Block& block,
                                const ur::ParamMap& params) {
  const auto names = block.component_names();
  const std::size_t n = names.size();
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << n); ++mask) {
    std::map<std::string, bool> states;
    double weight = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
      const bool uprob = mask & (std::size_t{1} << i);
      states[names[i]] = uprob;
      const double a = params.at(names[i]);
      weight *= uprob ? a : 1.0 - a;
    }
    if (block.evaluate_states(states)) total += weight;
  }
  return total;
}

}  // namespace

class RandomSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSeed, RbdFactoringMatchesBruteForce) {
  upa::sim::Xoshiro256 rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const ur::Block block = random_block(rng, 3);
    const ur::ParamMap params = random_params(rng);
    EXPECT_NEAR(ur::availability(block, params),
                brute_force_availability(block, params), 1e-10)
        << block.to_string();
  }
}

TEST_P(RandomSeed, RbdPathSetInclusionExclusionMatches) {
  upa::sim::Xoshiro256 rng(GetParam() ^ 0xabcdef);
  for (int trial = 0; trial < 6; ++trial) {
    const ur::Block block = random_block(rng, 2);
    const ur::ParamMap params = random_params(rng);
    const auto paths = ur::minimal_path_sets(block);
    if (paths.size() > 20) continue;  // inclusion-exclusion bound
    EXPECT_NEAR(ur::availability_from_path_sets(paths, params),
                ur::availability(block, params), 1e-9)
        << block.to_string();
  }
}

TEST_P(RandomSeed, FaultTreeBddMatchesEnumeration) {
  upa::sim::Xoshiro256 rng(GetParam() ^ 0x1234);
  for (int trial = 0; trial < 8; ++trial) {
    uf::FaultTree tree;
    const std::size_t n_events = 3 + rng() % 4;
    std::vector<uf::NodeId> nodes;
    for (std::size_t i = 0; i < n_events; ++i) {
      nodes.push_back(tree.add_basic_event("e" + std::to_string(i),
                                           0.05 + 0.4 * rng.uniform01()));
    }
    // Random gates over random (possibly shared) children.
    for (int g = 0; g < 4; ++g) {
      const std::size_t arity = 2 + rng() % 3;
      std::vector<uf::NodeId> children;
      for (std::size_t i = 0; i < arity; ++i) {
        children.push_back(nodes[rng() % nodes.size()]);
      }
      std::set<uf::NodeId> unique(children.begin(), children.end());
      children.assign(unique.begin(), unique.end());
      const double pick = rng.uniform01();
      if (children.size() == 1) {
        nodes.push_back(tree.add_or(children));
      } else if (pick < 0.45) {
        nodes.push_back(tree.add_and(children));
      } else if (pick < 0.9) {
        nodes.push_back(tree.add_or(children));
      } else {
        nodes.push_back(
            tree.add_k_of_n(1 + rng() % children.size(), children));
      }
    }
    tree.set_top(nodes.back());

    // Enumerate all event-state combinations.
    double expected = 0.0;
    for (std::size_t mask = 0; mask < (std::size_t{1} << n_events);
         ++mask) {
      std::vector<bool> failed(n_events);
      double weight = 1.0;
      for (std::size_t i = 0; i < n_events; ++i) {
        failed[i] = mask & (std::size_t{1} << i);
        const double p = tree.event_probability(tree.basic_events()[i]);
        weight *= failed[i] ? p : 1.0 - p;
      }
      if (tree.evaluate_top(failed)) expected += weight;
    }
    EXPECT_NEAR(uf::top_event_probability(tree), expected, 1e-10);
  }
}

TEST_P(RandomSeed, CtmcDirectAndIterativeSolversAgree) {
  upa::sim::Xoshiro256 rng(GetParam() ^ 0x777);
  const std::size_t n = 5 + rng() % 10;
  um::Ctmc chain(n);
  // Ring backbone guarantees irreducibility; add random extra edges.
  for (std::size_t i = 0; i < n; ++i) {
    chain.add_rate(i, (i + 1) % n, 0.1 + rng.uniform01());
  }
  for (std::size_t e = 0; e < n; ++e) {
    const std::size_t from = rng() % n;
    const std::size_t to = rng() % n;
    if (from != to) chain.add_rate(from, to, 0.01 + rng.uniform01());
  }
  const auto direct = chain.steady_state();
  const auto iterative = chain.steady_state_iterative(1e-13);
  for (std::size_t s = 0; s < n; ++s) {
    EXPECT_NEAR(direct[s], iterative[s], 1e-8);
  }
}

TEST_P(RandomSeed, MmckAgreesWithGenericBirthDeath) {
  upa::sim::Xoshiro256 rng(GetParam() ^ 0xbeef);
  for (int trial = 0; trial < 10; ++trial) {
    const double alpha = 10.0 + 200.0 * rng.uniform01();
    const double nu = 20.0 + 150.0 * rng.uniform01();
    const std::size_t servers = 1 + rng() % 6;
    const std::size_t capacity = servers + rng() % 10;
    const double closed = upa::queueing::mmck_loss_probability(
        alpha, nu, servers, capacity);
    const auto generic = upa::queueing::solve_birth_death_queue(
        capacity, [&](std::size_t) { return alpha; },
        [&](std::size_t j) {
          return nu * static_cast<double>(std::min(j, servers));
        });
    EXPECT_NEAR(closed, generic.blocking, 1e-11);
  }
}

TEST_P(RandomSeed, RandomProfileInvariants) {
  upa::sim::Xoshiro256 rng(GetParam() ^ 0xf00d);
  // Random profile over 3 functions with guaranteed exit mass.
  const std::size_t n = 3;
  upa::linalg::Matrix p(n + 2, n + 2);
  auto random_row = [&](std::size_t row) {
    std::vector<double> weights(n + 1);  // functions + Exit
    double sum = 0.0;
    for (double& w : weights) {
      w = 0.05 + rng.uniform01();
      sum += w;
    }
    for (std::size_t c = 0; c < n; ++c) {
      p(row, c + 1) = weights[c] / sum;
    }
    p(row, n + 1) = weights[n] / sum;
  };
  // Start row: no direct exit (visits at least one function).
  {
    std::vector<double> weights(n);
    double sum = 0.0;
    for (double& w : weights) {
      w = 0.05 + rng.uniform01();
      sum += w;
    }
    for (std::size_t c = 0; c < n; ++c) p(0, c + 1) = weights[c] / sum;
  }
  for (std::size_t f = 0; f < n; ++f) random_row(f + 1);
  p(n + 1, n + 1) = 1.0;
  const up::OperationalProfile profile({"F0", "F1", "F2"}, p);

  // 1. Scenario-class probabilities sum to 1.
  const auto classes = up::scenario_classes(profile, 0.0);
  double total = 0.0;
  for (const auto& c : classes) total += c.probability;
  EXPECT_NEAR(total, 1.0, 1e-9);

  // 2. Invocation probability == sum of classes containing the function.
  for (std::size_t f = 0; f < n; ++f) {
    double by_classes = 0.0;
    for (const auto& c : classes) {
      if (c.functions.contains(f)) by_classes += c.probability;
    }
    EXPECT_NEAR(by_classes, profile.invocation_probability(f), 1e-9);
  }

  // 3. Visit law reproduces expected visits.
  for (std::size_t f = 0; f < n; ++f) {
    EXPECT_NEAR(up::visit_law(profile, f).expected_visits(),
                profile.expected_visits(f), 1e-9);
  }

  // 4. Session length = sum of per-function expected visits.
  double visits = 0.0;
  for (std::size_t f = 0; f < n; ++f) visits += profile.expected_visits(f);
  EXPECT_NEAR(visits, profile.mean_session_length(), 1e-9);
}

TEST_P(RandomSeed, LuSolveResidualSmall) {
  upa::sim::Xoshiro256 rng(GetParam() ^ 0x5151);
  const std::size_t n = 4 + rng() % 20;
  upa::linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.uniform01() - 0.5;
    }
    a(i, i) += static_cast<double>(n);  // diagonally dominant
  }
  upa::linalg::Vector b(n);
  for (double& x : b) x = rng.uniform01();
  const auto x = upa::linalg::solve(a, b);
  const auto ax = a * x;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(ax[i], b[i], 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSeed,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));
