#include "upa/dispatch/front.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstring>
#include <optional>
#include <random>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/protocol.hpp"

namespace upa::dispatch {

namespace {

constexpr std::size_t kMaxLineBytes = 1 << 20;
constexpr int kAcceptPollMillis = 100;
constexpr std::size_t kOutcomeCount = 5;  // AttemptOutcome cardinality

void set_io_timeouts(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                                       tv.tv_sec)) *
                                        1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t newline = buffer.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer, 0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return true;
    }
    if (buffer.size() > kMaxLineBytes) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

AttemptOutcome from_call_outcome(serve::CallOutcome outcome) {
  switch (outcome) {
    case serve::CallOutcome::kOk: return AttemptOutcome::kOk;
    case serve::CallOutcome::kRejected: return AttemptOutcome::kRejected;
    case serve::CallOutcome::kDeadline: return AttemptOutcome::kDeadline;
    case serve::CallOutcome::kError: return AttemptOutcome::kError;
    case serve::CallOutcome::kTransportError:
      return AttemptOutcome::kTransport;
  }
  return AttemptOutcome::kTransport;
}

double seconds_between(std::chrono::steady_clock::time_point from,
                       std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

Front::Front(FrontConfig config)
    : config_(std::move(config)),
      pool_(config_.upstreams),
      balancer_(pool_, config_.policy),
      jitter_rng_(config_.retry.jitter_seed) {
  UPA_REQUIRE(config_.workers >= 1, "FrontConfig.workers must be >= 1");
  UPA_REQUIRE(config_.max_clients >= config_.workers,
              "FrontConfig.max_clients must be >= workers");
  UPA_REQUIRE(config_.read_timeout_seconds > 0.0,
              "FrontConfig.read_timeout_seconds must be > 0");
  UPA_REQUIRE(config_.upstream_connect_timeout_seconds > 0.0,
              "FrontConfig.upstream_connect_timeout_seconds must be > 0");
  UPA_REQUIRE(config_.upstream_call_timeout_seconds > 0.0,
              "FrontConfig.upstream_call_timeout_seconds must be > 0");
  UPA_REQUIRE(config_.retry.max_attempts >= 1,
              "RetryConfig.max_attempts must be >= 1");
  UPA_REQUIRE(config_.retry.backoff_initial_seconds >= 0.0 &&
                  config_.retry.backoff_max_seconds >=
                      config_.retry.backoff_initial_seconds,
              "RetryConfig backoff bounds must satisfy 0 <= initial <= max");
  UPA_REQUIRE(config_.retry.jitter >= 0.0 && config_.retry.jitter <= 1.0,
              "RetryConfig.jitter must be in [0, 1]");
  check_health_config(config_.health);
  health_ = std::make_unique<HealthChecker>(pool_, config_.health);
  latency_by_outcome_.reserve(kOutcomeCount);
  for (std::size_t i = 0; i < kOutcomeCount; ++i) {
    latency_by_outcome_.emplace_back(obs::geometric_buckets(1e-4, 2.0, 18));
  }
  latency_by_upstream_.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    latency_by_upstream_.emplace_back(
        obs::geometric_buckets(1e-4, 2.0, 18));
  }
  // Entropy, not determinism: originated trace ids must differ between
  // front processes even when everything else (ports, seeds) matches.
  trace_origin_base_ = (static_cast<std::uint64_t>(std::random_device{}())
                        << 32) ^
                       std::random_device{}();
}

Front::~Front() { stop(); }

void Front::start() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  UPA_REQUIRE(!started_, "Front::start called twice");

  // SOCK_CLOEXEC: replica restarts fork from this process mid-run; a
  // child inheriting live sockets would suppress EOF for every peer.
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  UPA_REQUIRE(listen_fd_ >= 0,
              std::string("socket() failed: ") + std::strerror(errno));

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("FrontConfig.bind_address is not an IPv4 "
                             "address: " +
                             config_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
      0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("bind(" + config_.bind_address + ":" +
                             std::to_string(config_.port) +
                             ") failed: " + reason);
  }
  if (::listen(listen_fd_, 256) != 0) {
    const std::string reason = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw common::ModelError("listen() failed: " + reason);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len);
  port_ = ntohs(bound.sin_port);

  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
    queue_.clear();
    in_system_ = 0;
  }
  accept_stop_.store(false);

  serve::TelemetryStreamerOptions telemetry;
  telemetry.process = config_.telemetry_process.empty()
                          ? "upa_dispatch:" + std::to_string(port_)
                          : config_.telemetry_process;
  telemetry.io_timeout_seconds = config_.read_timeout_seconds;
  telemetry.fill_metrics = [this](obs::MetricsRegistry& metrics) {
    publish_metrics(metrics);
  };
  telemetry.copy_spans = [this](std::size_t& cursor) {
    std::vector<obs::Span> out;
    std::lock_guard<std::mutex> lock(latency_mutex_);
    if (config_.obs == nullptr) return out;
    const std::vector<obs::Span>& spans = config_.obs->tracer.spans();
    for (; cursor < spans.size(); ++cursor) out.push_back(spans[cursor]);
    return out;
  };
  telemetry.dropped_spans = [this]() -> std::uint64_t {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    return config_.obs == nullptr ? 0 : config_.obs->tracer.dropped();
  };
  telemetry_ = std::make_unique<serve::TelemetryStreamer>(
      std::move(telemetry));

  started_ = true;
  running_.store(true);

  health_->start();  // initial sweep runs before any traffic is forwarded
  acceptor_ = std::thread([this] { acceptor_loop(); });
  workers_.reserve(config_.workers);
  for (std::size_t w = 0; w < config_.workers; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void Front::stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!started_) return;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    for (const int fd : parked_fds_) ::shutdown(fd, SHUT_RD);
  }
  accept_stop_.store(true);
  work_ready_.notify_all();
  if (acceptor_.joinable()) acceptor_.join();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  health_->stop();
  if (telemetry_ != nullptr) telemetry_->stop();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  started_ = false;
  running_.store(false);
}

FrontStats Front::stats() const {
  FrontStats s;
  s.accepted = accepted_.load();
  s.rejected = rejected_.load();
  s.completed = completed_.load();
  s.requests = requests_.load();
  s.forwarded_ok = forwarded_ok_.load();
  s.forwarded_rejected = forwarded_rejected_.load();
  s.forwarded_deadline = forwarded_deadline_.load();
  s.forwarded_error = forwarded_error_.load();
  s.forwarded_transport = forwarded_transport_.load();
  s.retries = retries_.load();
  s.failovers = failovers_.load();
  s.retries_exhausted = retries_exhausted_.load();
  s.stats_served = stats_served_.load();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.in_system = in_system_;
  }
  s.max_in_system = max_in_system_.load();
  return s;
}

std::vector<UpstreamSnapshot> Front::upstreams() const {
  return pool_.snapshot();
}

void Front::publish_metrics(obs::MetricsRegistry& metrics) const {
  const FrontStats s = stats();
  metrics.gauge("dispatch.accepted").set(static_cast<double>(s.accepted));
  metrics.gauge("dispatch.rejected").set(static_cast<double>(s.rejected));
  metrics.gauge("dispatch.requests").set(static_cast<double>(s.requests));
  metrics.gauge("dispatch.forwarded_ok")
      .set(static_cast<double>(s.forwarded_ok));
  metrics.gauge("dispatch.forwarded_rejected")
      .set(static_cast<double>(s.forwarded_rejected));
  metrics.gauge("dispatch.forwarded_deadline")
      .set(static_cast<double>(s.forwarded_deadline));
  metrics.gauge("dispatch.forwarded_error")
      .set(static_cast<double>(s.forwarded_error));
  metrics.gauge("dispatch.forwarded_transport")
      .set(static_cast<double>(s.forwarded_transport));
  metrics.gauge("dispatch.retries").set(static_cast<double>(s.retries));
  metrics.gauge("dispatch.failovers").set(static_cast<double>(s.failovers));
  metrics.gauge("dispatch.retries_exhausted")
      .set(static_cast<double>(s.retries_exhausted));
  for (const UpstreamSnapshot& u : pool_.snapshot()) {
    const std::string prefix = "dispatch.upstream." + u.address.label();
    metrics.gauge(prefix + ".healthy").set(u.healthy ? 1.0 : 0.0);
    metrics.gauge(prefix + ".attempts")
        .set(static_cast<double>(u.attempts));
    metrics.gauge(prefix + ".ok").set(static_cast<double>(u.ok));
    metrics.gauge(prefix + ".rejected")
        .set(static_cast<double>(u.rejected));
    metrics.gauge(prefix + ".transport")
        .set(static_cast<double>(u.transport));
    metrics.gauge(prefix + ".ejections")
        .set(static_cast<double>(u.ejections));
    metrics.gauge(prefix + ".readmissions")
        .set(static_cast<double>(u.readmissions));
  }
  std::lock_guard<std::mutex> lock(latency_mutex_);
  for (std::size_t i = 0; i < latency_by_outcome_.size(); ++i) {
    const std::string name =
        "dispatch.attempt_latency_seconds." +
        attempt_outcome_name(static_cast<AttemptOutcome>(i));
    metrics.histogram(name, latency_by_outcome_[i].upper_bounds())
        .merge_from(latency_by_outcome_[i]);
  }
  for (std::size_t i = 0; i < latency_by_upstream_.size(); ++i) {
    if (latency_by_upstream_[i].count() == 0) continue;
    const std::string name = "dispatch.upstream." +
                             pool_.address(i).label() + ".latency_seconds";
    metrics.histogram(name, latency_by_upstream_[i].upper_bounds())
        .merge_from(latency_by_upstream_[i]);
  }
}

ForwardAttempt Front::attempt_once(std::size_t index,
                                   const std::string& line,
                                   std::string& response_out) {
  const UpstreamAddress& address = pool_.address(index);
  pool_.begin_call(index);
  const Clock::time_point begin = Clock::now();
  ForwardAttempt attempt;
  attempt.upstream_index = index;
  try {
    serve::Client client;
    client.connect(address.host, address.port,
                   config_.upstream_connect_timeout_seconds,
                   config_.upstream_call_timeout_seconds);
    response_out = client.call_line(line);
    attempt.outcome =
        from_call_outcome(serve::classify_response(response_out).outcome);
  } catch (const std::exception&) {
    attempt.outcome = AttemptOutcome::kTransport;
    response_out.clear();
  }
  const double latency = seconds_between(begin, Clock::now());
  pool_.end_call(index, attempt.outcome, latency);
  {
    std::lock_guard<std::mutex> lock(latency_mutex_);
    latency_by_outcome_[static_cast<std::size_t>(attempt.outcome)].record(
        latency);
    latency_by_upstream_[index].record(latency);
    if (config_.obs != nullptr) {
      config_.obs->metrics.counter("dispatch.attempts").add(1);
      config_.obs->metrics
          .counter("dispatch.attempt." +
                   attempt_outcome_name(attempt.outcome))
          .add(1);
    }
  }
  return attempt;
}

void Front::backoff_sleep(std::size_t retry_number) {
  double delay = config_.retry.backoff_initial_seconds *
                 std::pow(2.0, static_cast<double>(retry_number - 1));
  delay = std::min(delay, config_.retry.backoff_max_seconds);
  if (delay <= 0.0) return;
  double u = 0.0;
  {
    std::lock_guard<std::mutex> lock(rng_mutex_);
    u = jitter_rng_.uniform01();
  }
  delay *= 1.0 - config_.retry.jitter * u;
  std::this_thread::sleep_for(std::chrono::duration<double>(delay));
}

std::string Front::exhausted_envelope(
    const std::string& request_line,
    const std::vector<ForwardAttempt>& attempts) const {
  serve::Json id;
  try {
    const serve::Json request = serve::parse_json(request_line);
    if (const serve::Json* i = request.find("id"); i != nullptr) id = *i;
  } catch (const std::exception&) {
    // id stays null, like the upstreams' own unparseable-line envelopes
  }
  serve::Json trail = serve::Json::array();
  for (const ForwardAttempt& a : attempts) {
    serve::Json entry = serve::Json::object();
    entry.set("upstream", serve::Json(pool_.address(a.upstream_index).label()));
    entry.set("outcome", serve::Json(attempt_outcome_name(a.outcome)));
    trail.push_back(std::move(entry));
  }
  // Same member order as make_error_response, plus the attempt trail.
  serve::Json error = serve::Json::object();
  error.set("code", serve::Json(serve::ErrorCode::kQueueFull));
  error.set("message", serve::Json("retries_exhausted"));
  error.set("attempts", std::move(trail));
  serve::Json envelope = serve::Json::object();
  envelope.set("id", id);
  envelope.set("ok", serve::Json(false));
  envelope.set("error", std::move(error));
  return envelope.dump();
}

ForwardResult Front::forward_line(const std::string& request_line) {
  return forward_line_traced(request_line, 0, 0);
}

ForwardResult Front::forward_line_traced(const std::string& request_line,
                                         std::uint64_t conn,
                                         std::uint64_t seq) {
  const Clock::time_point request_begin = Clock::now();

  // Trace setup. Balancer affinity and the exhausted envelope always use
  // the ORIGINAL client line; only the per-attempt upstream line is
  // rewritten with a trace context. A malformed incoming `trace` member
  // is forwarded verbatim and recorded as nothing -- the upstream's
  // dispatcher produces the canonical 400 envelope for it.
  bool record = false;
  std::string method = "?";
  serve::TraceContext context;
  serve::Json parsed;
  if (config_.trace && config_.obs != nullptr) {
    bool have_parsed = false;
    try {
      parsed = serve::parse_json(request_line);
      have_parsed = parsed.is_object();
    } catch (const std::exception&) {
      have_parsed = false;
    }
    if (have_parsed) {
      if (const serve::Json* m = parsed.find("method");
          m != nullptr && m->is_string()) {
        method = m->as_string();
      }
      try {
        if (const std::optional<serve::TraceContext> incoming =
                serve::parse_trace_context(parsed)) {
          context = *incoming;  // forward the client's trace decision
          record = context.sampled;
        } else {
          context.trace_id = serve::make_trace_id(
              trace_origin_base_ + origin_serial_.fetch_add(1) + 1);
          context.span_id = 0;
          context.sampled = true;
          record = true;
        }
      } catch (const common::ModelError&) {
        record = false;
      }
    }
  }

  ForwardResult out;
  std::vector<TracedAttempt> traced;
  const std::vector<std::size_t> order =
      balancer_.pick(affinity_key(request_line));
  const std::size_t budget = config_.retry.max_attempts;

  bool answered = false;
  for (std::size_t attempt_no = 0; attempt_no < budget && !answered;
       ++attempt_no) {
    // Walk the balancer's preference order: healthy replicas first, so
    // for budget <= N every retry lands on a different, untried
    // replica; past N the walk wraps (better a repeat than a give-up).
    const std::size_t index = order[attempt_no % order.size()];
    if (attempt_no > 0) {
      retries_.fetch_add(1);
      if (index != out.attempts.back().upstream_index) {
        failovers_.fetch_add(1);
      }
      backoff_sleep(attempt_no);
    }
    TracedAttempt span;
    span.upstream_index = index;
    std::string attempt_line = request_line;
    if (record) {
      // Each attempt gets a fresh span reference: the upstream's
      // serve_request span parents on exactly this attempt, so a retry
      // that lands on another replica stays distinguishable.
      span.ref = span_ref_.fetch_add(1);
      attempt_line = serve::with_trace_context(
          parsed,
          serve::TraceContext{context.trace_id, span.ref, true});
    }
    std::string response;
    span.begin = Clock::now();
    const ForwardAttempt attempt = attempt_once(index, attempt_line,
                                                response);
    span.end = Clock::now();
    span.outcome = attempt.outcome;
    out.attempts.push_back(attempt);
    traced.push_back(span);
    if (attempt.outcome == AttemptOutcome::kOk ||
        attempt.outcome == AttemptOutcome::kError) {
      // Definitive answers pass through verbatim; 400/404/500 are
      // deterministic and would only be recomputed by a retry.
      out.response_line = std::move(response);
      out.final_outcome = attempt.outcome;
      answered = true;
    }
  }

  if (!answered) {
    out.exhausted = true;
    out.final_outcome = out.attempts.back().outcome;
    out.response_line = exhausted_envelope(request_line, out.attempts);
    retries_exhausted_.fetch_add(1);
  }
  if (record) {
    record_request_trace(method, context, out, traced, request_begin,
                         conn, seq);
  }
  return out;
}

void Front::record_request_trace(const std::string& method,
                                 const serve::TraceContext& context,
                                 const ForwardResult& result,
                                 const std::vector<TracedAttempt>& attempts,
                                 Clock::time_point request_begin,
                                 std::uint64_t conn, std::uint64_t seq) {
  obs::Observer* ob = config_.obs;
  if (ob == nullptr) return;
  const AttemptOutcome client_visible =
      result.exhausted ? AttemptOutcome::kRejected : result.final_outcome;

  // The whole request's spans land as one complete batch under
  // latency_mutex_ -- the same lock the telemetry copy_spans callback
  // takes -- so a subscriber never streams a root without its attempt
  // children. Steady-clock stamps are mapped onto the tracer's wall
  // timeline retrospectively, anchored at "now".
  std::lock_guard<std::mutex> lock(latency_mutex_);
  const Clock::time_point now = Clock::now();
  const double wall_now = ob->tracer.wall_now();
  const auto wall_at = [&](Clock::time_point tp) {
    return wall_now - seconds_between(tp, now);
  };

  const obs::SpanId root = ob->tracer.begin(
      obs::SpanLevel::kDispatchRequest, method, wall_at(request_begin),
      obs::TimeDomain::kWallSeconds);
  ob->tracer.attr(root, "trace_id", context.trace_id);
  ob->tracer.attr(root, "parent_span",
                  static_cast<double>(context.span_id));
  ob->tracer.attr(root, "conn", static_cast<double>(conn));
  ob->tracer.attr(root, "seq", static_cast<double>(seq));
  ob->tracer.attr(root, "outcome", attempt_outcome_name(client_visible));
  ob->tracer.attr(root, "attempts",
                  static_cast<double>(attempts.size()));
  if (result.exhausted) ob->tracer.attr(root, "exhausted", 1.0);
  for (const TracedAttempt& a : attempts) {
    const obs::SpanId child = ob->tracer.begin(
        obs::SpanLevel::kDispatchAttempt, "attempt", wall_at(a.begin),
        obs::TimeDomain::kWallSeconds, root);
    ob->tracer.attr(child, "ref", static_cast<double>(a.ref));
    ob->tracer.attr(child, "upstream",
                    pool_.address(a.upstream_index).label());
    ob->tracer.attr(child, "outcome", attempt_outcome_name(a.outcome));
    ob->tracer.end(child, wall_at(a.end));
  }
  ob->tracer.end(root, wall_now);
}

std::string Front::dispatch_stats_line(const std::string& line) {
  stats_served_.fetch_add(1);
  serve::Json id;
  try {
    const serve::Json request = serve::parse_json(line);
    if (const serve::Json* i = request.find("id"); i != nullptr) id = *i;
  } catch (const std::exception&) {
  }
  const FrontStats s = stats();
  serve::Json result = serve::Json::object();
  result.set("policy", serve::Json(balance_policy_name(config_.policy)));
  result.set("upstream_count", serve::Json(pool_.size()));
  result.set("requests", serve::Json(static_cast<double>(s.requests)));
  result.set("forwarded_ok",
             serve::Json(static_cast<double>(s.forwarded_ok)));
  result.set("forwarded_rejected",
             serve::Json(static_cast<double>(s.forwarded_rejected)));
  result.set("forwarded_deadline",
             serve::Json(static_cast<double>(s.forwarded_deadline)));
  result.set("forwarded_error",
             serve::Json(static_cast<double>(s.forwarded_error)));
  result.set("forwarded_transport",
             serve::Json(static_cast<double>(s.forwarded_transport)));
  result.set("retries", serve::Json(static_cast<double>(s.retries)));
  result.set("failovers", serve::Json(static_cast<double>(s.failovers)));
  result.set("retries_exhausted",
             serve::Json(static_cast<double>(s.retries_exhausted)));
  serve::Json upstreams = serve::Json::array();
  const std::vector<UpstreamSnapshot> snapshots = pool_.snapshot();
  std::lock_guard<std::mutex> latency_lock(latency_mutex_);
  for (std::size_t i = 0; i < snapshots.size(); ++i) {
    const UpstreamSnapshot& u = snapshots[i];
    serve::Json entry = serve::Json::object();
    entry.set("address", serve::Json(u.address.label()));
    entry.set("healthy", serve::Json(u.healthy));
    entry.set("outstanding", serve::Json(u.outstanding));
    entry.set("attempts", serve::Json(static_cast<double>(u.attempts)));
    entry.set("ok", serve::Json(static_cast<double>(u.ok)));
    entry.set("rejected", serve::Json(static_cast<double>(u.rejected)));
    entry.set("deadline", serve::Json(static_cast<double>(u.deadline)));
    entry.set("errors", serve::Json(static_cast<double>(u.errors)));
    entry.set("transport", serve::Json(static_cast<double>(u.transport)));
    entry.set("probe_failures",
              serve::Json(static_cast<double>(u.probe_failures)));
    entry.set("ejections", serve::Json(static_cast<double>(u.ejections)));
    entry.set("readmissions",
              serve::Json(static_cast<double>(u.readmissions)));
    // Snapshot order is pool index order, so histogram i matches entry i.
    entry.set("latency", serve::histogram_json(latency_by_upstream_[i]));
    upstreams.push_back(std::move(entry));
  }
  result.set("upstreams", std::move(upstreams));
  return serve::make_result_response(id, std::move(result)).dump();
}

std::string Front::respond_line(const std::string& line,
                                std::uint64_t conn, std::uint64_t seq) {
  requests_.fetch_add(1);
  bool is_dispatch_stats = false;
  try {
    const serve::Json request = serve::parse_json(line);
    if (const serve::Json* m = request.find("method");
        m != nullptr && m->is_string() &&
        m->as_string() == "dispatch_stats") {
      is_dispatch_stats = true;
    }
  } catch (const std::exception&) {
    // Unparseable lines are forwarded anyway: the upstream produces the
    // canonical 400 envelope, keeping responses byte-identical to a
    // direct connection.
  }
  if (is_dispatch_stats) return dispatch_stats_line(line);

  const ForwardResult fr = forward_line_traced(line, conn, seq);
  // Counters classify the response the client actually got: a spent
  // budget surfaces as the 503 retries_exhausted envelope, so it counts
  // as a rejection regardless of how the last attempt died.
  const AttemptOutcome client_visible =
      fr.exhausted ? AttemptOutcome::kRejected : fr.final_outcome;
  switch (client_visible) {
    case AttemptOutcome::kOk: forwarded_ok_.fetch_add(1); break;
    case AttemptOutcome::kRejected: forwarded_rejected_.fetch_add(1); break;
    case AttemptOutcome::kDeadline: forwarded_deadline_.fetch_add(1); break;
    case AttemptOutcome::kError: forwarded_error_.fetch_add(1); break;
    case AttemptOutcome::kTransport:
      forwarded_transport_.fetch_add(1);
      break;
  }
  return fr.response_line;
}

void Front::acceptor_loop() {
  const std::string reject_line =
      serve::make_error_response(serve::Json(), serve::ErrorCode::kQueueFull,
                                 "dispatcher at max_clients (" +
                                     std::to_string(config_.max_clients) +
                                     ")")
          .dump() +
      "\n";

  while (!accept_stop_.load()) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kAcceptPollMillis);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;

    bool admitted = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!stopping_ && in_system_ < config_.max_clients) {
        ++in_system_;
        std::size_t seen = max_in_system_.load();
        while (in_system_ > seen &&
               !max_in_system_.compare_exchange_weak(seen, in_system_)) {
        }
        queue_.push_back(Job{fd});
        admitted = true;
      }
    }
    if (admitted) {
      accepted_.fetch_add(1);
      work_ready_.notify_one();
      continue;
    }

    rejected_.fetch_add(1);
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    (void)::send(fd, reject_line.data(), reject_line.size(), MSG_NOSIGNAL);
    ::close(fd);
  }
}

void Front::worker_loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_ready_.wait(lock,
                       [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty()) return;
      job = queue_.front();
      queue_.pop_front();
    }
    handle_connection(job);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_system_;
    }
    completed_.fetch_add(1);
  }
}

void Front::handle_connection(const Job& job) {
  set_io_timeouts(job.fd, config_.read_timeout_seconds);
  const std::uint64_t conn = conn_serial_.fetch_add(1) + 1;
  std::uint64_t seq = 0;
  std::string buffer;
  bool first_request = true;
  for (;;) {
    std::string line;
    if (first_request) {
      if (!read_line(job.fd, buffer, line)) break;
    } else {
      if (!park_for_next_request(job.fd)) break;
      const bool got = read_line(job.fd, buffer, line);
      unpark(job.fd);
      if (!got) break;
    }
    first_request = false;
    if (line.empty()) continue;
    switch (maybe_subscribe(job.fd, line)) {
      case 1:
        // The telemetry streamer owns the fd now; the worker slot is
        // released when this returns. A subscriber to the front never
        // counts against the upstreams' admission -- the front never
        // forwards subscribe.
        return;
      case 2:
        continue;
      default:
        break;
    }
    const std::string response = respond_line(line, conn, seq++);
    if (!send_all(job.fd, response + "\n")) break;
  }
  ::close(job.fd);
}

int Front::maybe_subscribe(int fd, const std::string& line) {
  // Cheap pre-filter: almost every request line lacks the literal and
  // skips the extra parse entirely.
  if (line.find("subscribe") == std::string::npos) return 0;
  serve::Json request;
  try {
    request = serve::parse_json(line);
  } catch (const std::exception&) {
    return 0;  // forwarded; the upstream produces the canonical 400
  }
  if (!request.is_object()) return 0;
  const serve::Json* method = request.find("method");
  if (method == nullptr || !method->is_string() ||
      method->as_string() != "subscribe") {
    return 0;
  }
  const serve::Json* id_member = request.find("id");
  const serve::Json id = id_member != nullptr ? *id_member : serve::Json();

  double interval_ms = 500.0;
  const serve::Json* params = request.find("params");
  if (params != nullptr && !params->is_object() && !params->is_null()) {
    (void)send_all(fd, serve::make_error_response(
                           id, serve::ErrorCode::kBadRequest,
                           "'params' must be an object when present")
                               .dump() +
                           "\n");
    return 2;
  }
  if (params != nullptr && params->is_object()) {
    if (const serve::Json* v = params->find("interval_ms"); v != nullptr) {
      if (!v->is_number() || !(v->as_number() >= 10.0) ||
          !(v->as_number() <= 60000.0)) {
        (void)send_all(
            fd, serve::make_error_response(
                    id, serve::ErrorCode::kBadRequest,
                    "param 'interval_ms' must be a number in [10, 60000]")
                        .dump() +
                    "\n");
        return 2;
      }
      interval_ms = v->as_number();
    }
  }

  serve::Json result = serve::Json::object();
  result.set("subscribed", serve::Json(true));
  result.set("process",
             serve::Json(config_.telemetry_process.empty()
                             ? "upa_dispatch:" + std::to_string(port_)
                             : config_.telemetry_process));
  result.set("interval_ms", serve::Json(interval_ms));
  const std::string ack =
      serve::make_result_response(id, std::move(result)).dump();
  if (telemetry_ == nullptr ||
      !telemetry_->add_subscriber(fd, interval_ms / 1000.0, ack)) {
    (void)send_all(fd, serve::make_error_response(
                           id, serve::ErrorCode::kQueueFull,
                           "telemetry subscriber limit reached")
                               .dump() +
                           "\n");
    return 2;
  }
  return 1;
}

bool Front::park_for_next_request(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  parked_fds_.push_back(fd);
  return true;
}

void Front::unpark(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = parked_fds_.begin(); it != parked_fds_.end(); ++it) {
    if (*it == fd) {
      parked_fds_.erase(it);
      return;
    }
  }
}

}  // namespace upa::dispatch
