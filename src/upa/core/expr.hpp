#pragma once
// Availability expressions: a small symbolic AST over named parameters
// with exact evaluation and symbolic partial derivatives. Table 6 of the
// paper and eq. (10) are such expressions; derivatives give first-order
// sensitivity/importance of each availability parameter for free.

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace upa::core {

/// Parameter valuation by name.
using Params = std::map<std::string, double>;

/// Immutable expression handle (value semantics; cheap to copy).
class Expr {
 public:
  [[nodiscard]] static Expr constant(double value);
  [[nodiscard]] static Expr param(std::string name);

  /// prod of children (series structure in availability terms).
  [[nodiscard]] static Expr product(std::vector<Expr> children);

  /// sum of children.
  [[nodiscard]] static Expr sum(std::vector<Expr> children);

  /// 1 - e.
  [[nodiscard]] static Expr complement(const Expr& e);

  /// 1 - prod(1 - e_i): parallel/redundant structure.
  [[nodiscard]] static Expr parallel(std::vector<Expr> children);

  friend Expr operator*(const Expr& a, const Expr& b) {
    return product({a, b});
  }
  friend Expr operator+(const Expr& a, const Expr& b) { return sum({a, b}); }
  friend Expr operator*(double k, const Expr& e) {
    return product({constant(k), e});
  }

  /// Evaluates with the given parameter values; throws ModelError when a
  /// referenced parameter is missing.
  [[nodiscard]] double evaluate(const Params& params) const;

  /// Symbolic partial derivative with respect to `param`.
  [[nodiscard]] Expr derivative(const std::string& param) const;

  /// Distinct parameter names appearing in the expression.
  [[nodiscard]] std::vector<std::string> parameters() const;

  /// Rendering such as "(1 - (1 - as) * (1 - as'))".
  [[nodiscard]] std::string to_string() const;

 private:
  struct Node;
  explicit Expr(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  [[nodiscard]] static Expr make(int kind, double value, std::string name,
                                 std::vector<Expr> children);
  std::shared_ptr<const Node> node_;
};

/// First-order sensitivities of `expr` at `at`: parameter -> d expr / d p,
/// sorted map (deterministic iteration for reports).
[[nodiscard]] std::map<std::string, double> gradient(const Expr& expr,
                                                     const Params& at);

}  // namespace upa::core
