#pragma once
// M/M/1 and M/M/1/K queues in closed form (the paper's eq. 1 is the
// M/M/1/K loss probability). Conventions: arrival rate `alpha`, service
// rate `nu`, offered load rho = alpha / nu.

#include <cstddef>
#include <vector>

namespace upa::queueing {

/// Steady-state metrics of an infinite-buffer M/M/1 (requires rho < 1).
struct Mm1Metrics {
  double rho = 0.0;              ///< utilization alpha/nu
  double mean_in_system = 0.0;   ///< L
  double mean_in_queue = 0.0;    ///< Lq
  double mean_response = 0.0;    ///< W (time in system)
  double mean_wait = 0.0;        ///< Wq (time in queue)
};

[[nodiscard]] Mm1Metrics mm1_metrics(double alpha, double nu);

/// Steady-state metrics of a finite M/M/1/K system (K = total capacity,
/// including the job in service). Stable for any rho >= 0.
struct Mm1kMetrics {
  double rho = 0.0;
  double blocking = 0.0;          ///< p_K: arriving request lost
  double mean_in_system = 0.0;    ///< L
  double throughput = 0.0;        ///< alpha (1 - p_K)
  double mean_response = 0.0;     ///< W for accepted requests (Little)
  std::vector<double> state_probabilities;  ///< p_0 .. p_K
};

[[nodiscard]] Mm1kMetrics mm1k_metrics(double alpha, double nu,
                                       std::size_t capacity);

/// The paper's eq. (1): probability an arriving request finds the buffer
/// full in an M/M/1/K queue, rho = alpha/nu (handles rho == 1 exactly).
[[nodiscard]] double mm1k_loss_probability(double alpha, double nu,
                                           std::size_t capacity);

}  // namespace upa::queueing
