#pragma once
// Blocking TCP client for the upa_served wire protocol: connect, send
// newline-delimited JSON request lines, read newline-delimited response
// lines. One Client per connection; used by upa_loadgen, the serve
// tests, and as the reference implementation of the protocol's client
// side.

#include <cstdint>
#include <string>

#include "upa/serve/json.hpp"
#include "upa/serve/protocol.hpp"

namespace upa::serve {

/// Outcome of one RPC round trip, classified for the load generator's
/// bookkeeping. kRejected / kDeadline map to the 503 / 504 envelopes;
/// kTransportError covers refused connections, resets, and unparseable
/// response lines.
enum class CallOutcome {
  kOk,
  kRejected,
  kDeadline,
  kError,           ///< any other error envelope (400/404/500)
  kTransportError,
};

[[nodiscard]] std::string call_outcome_name(CallOutcome outcome);

/// One response, parsed: the outcome class, the raw envelope, and the
/// result / error members pulled out for convenience.
struct CallResult {
  CallOutcome outcome = CallOutcome::kTransportError;
  int code = 0;             ///< error code (0 for ok outcomes)
  Json envelope;            ///< whole response (null on transport error)
  std::string error_message;

  [[nodiscard]] bool ok() const noexcept {
    return outcome == CallOutcome::kOk;
  }
  /// The result object; null JSON unless ok().
  [[nodiscard]] const Json* result() const noexcept {
    return envelope.find("result");
  }
};

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connects with a timeout (seconds). Throws ModelError on failure
  /// (connection refused, timeout, bad address). `call_timeout_seconds`
  /// bounds each subsequent receive while waiting for a response line;
  /// 0 inherits `timeout_seconds`, so a client is never stuck longer
  /// waiting for a response than it was willing to wait for a connect
  /// unless it asks to be.
  void connect(const std::string& host, std::uint16_t port,
               double timeout_seconds = 5.0,
               double call_timeout_seconds = 0.0);

  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }
  void close();

  /// Sends one raw request line and reads one response line. Throws
  /// ModelError on transport failure; the returned string has the
  /// trailing newline stripped.
  [[nodiscard]] std::string call_line(const std::string& request_line);

  /// Builds {"id": id, "method": method, "params": params}, sends it,
  /// and classifies the response. Transport failures are folded into
  /// the CallResult (outcome kTransportError) instead of throwing, so
  /// load generators can count them. A non-null `trace` adds the
  /// envelope's trace member (distributed-tracing context).
  [[nodiscard]] CallResult call(const std::string& method, Json params,
                                std::uint64_t id = 0,
                                const TraceContext* trace = nullptr);

  /// One-way send of a raw line (used to issue `subscribe` before
  /// switching to read_line streaming). Throws ModelError on failure.
  void send_line(const std::string& line);

  /// Reads the next newline-delimited line (telemetry streaming).
  /// Throws ModelError on EOF, timeout, or error.
  [[nodiscard]] std::string read_line();

  /// shutdown(SHUT_RDWR) without closing the fd: wakes a reader blocked
  /// in read_line() from another thread so it can exit cleanly.
  void shutdown_both();

 private:
  int fd_ = -1;
  std::string buffer_;  ///< unconsumed bytes past the last response line
};

/// Classifies a raw response line (shared by Client::call and tests).
[[nodiscard]] CallResult classify_response(const std::string& line);

}  // namespace upa::serve
