#include "upa/sim/stats.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::sim {

void RunningStats::add(double value) noexcept {
  if (n_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++n_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (value - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept {
  return std::sqrt(variance());
}

TimeWeightedStats::TimeWeightedStats(double start_time, double initial_value)
    : last_time_(start_time), value_(initial_value), start_time_(start_time) {}

void TimeWeightedStats::update(double t, double value) {
  UPA_REQUIRE(t >= last_time_, "time must not decrease");
  integral_ += value_ * (t - last_time_);
  last_time_ = t;
  value_ = value;
}

double TimeWeightedStats::time_average(double end_time) const {
  UPA_REQUIRE(end_time > start_time_, "empty observation window");
  UPA_REQUIRE(end_time >= last_time_, "end time before last update");
  const double total =
      integral_ + value_ * (end_time - last_time_);
  return total / (end_time - start_time_);
}

double student_t_critical(std::size_t dof, double level) {
  UPA_REQUIRE(dof >= 1, "degrees of freedom must be positive");
  struct Row {
    std::size_t dof;
    double t90, t95, t99;
  };
  // Two-sided critical values.
  static constexpr Row kTable[] = {
      {1, 6.314, 12.706, 63.657}, {2, 2.920, 4.303, 9.925},
      {3, 2.353, 3.182, 5.841},   {4, 2.132, 2.776, 4.604},
      {5, 2.015, 2.571, 4.032},   {6, 1.943, 2.447, 3.707},
      {7, 1.895, 2.365, 3.499},   {8, 1.860, 2.306, 3.355},
      {9, 1.833, 2.262, 3.250},   {10, 1.812, 2.228, 3.169},
      {12, 1.782, 2.179, 3.055},  {15, 1.753, 2.131, 2.947},
      {20, 1.725, 2.086, 2.845},  {25, 1.708, 2.060, 2.787},
      {30, 1.697, 2.042, 2.750},  {40, 1.684, 2.021, 2.704},
      {60, 1.671, 2.000, 2.660},  {120, 1.658, 1.980, 2.617},
  };
  auto pick = [&](const Row& row) {
    if (level >= 0.985) return row.t99;
    if (level >= 0.925) return row.t95;
    return row.t90;
  };
  UPA_REQUIRE(level >= 0.85 && level < 1.0,
              "supported confidence levels: 0.90, 0.95, 0.99");
  const Row* below = &kTable[0];
  for (const Row& row : kTable) {
    if (row.dof == dof) return pick(row);
    if (row.dof < dof) below = &row;
    if (row.dof > dof) {
      // Linear interpolation in 1/dof between bracketing table rows.
      const double x = 1.0 / static_cast<double>(dof);
      const double x0 = 1.0 / static_cast<double>(below->dof);
      const double x1 = 1.0 / static_cast<double>(row.dof);
      const double y0 = pick(*below);
      const double y1 = pick(row);
      return y1 + (y0 - y1) * (x - x1) / (x0 - x1);
    }
  }
  // Beyond the table: normal quantiles.
  if (level >= 0.985) return 2.576;
  if (level >= 0.925) return 1.960;
  return 1.645;
}

ConfidenceInterval confidence_interval(const std::vector<double>& replications,
                                       double level) {
  UPA_REQUIRE(replications.size() >= 2,
              "need at least two replications for an interval");
  RunningStats stats;
  for (double r : replications) stats.add(r);
  ConfidenceInterval ci;
  ci.mean = stats.mean();
  const double se =
      stats.stddev() / std::sqrt(static_cast<double>(replications.size()));
  ci.half_width = student_t_critical(replications.size() - 1, level) * se;
  ci.low = ci.mean - ci.half_width;
  ci.high = ci.mean + ci.half_width;
  return ci;
}

}  // namespace upa::sim
