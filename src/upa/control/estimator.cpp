#include "upa/control/estimator.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::control {

RateEstimator::RateEstimator(Options options) : options_(options) {
  UPA_REQUIRE(std::isfinite(options_.window_seconds) &&
                  options_.window_seconds > 0.0,
              "estimator window must be positive");
  UPA_REQUIRE(std::isfinite(options_.ewma_halflife_seconds) &&
                  options_.ewma_halflife_seconds > 0.0,
              "EWMA half-life must be positive");
  UPA_REQUIRE(options_.min_window_seconds >= 0.0 &&
                  options_.min_window_seconds <= options_.window_seconds,
              "min window must be in [0, window]");
}

void RateEstimator::observe(const CounterSample& sample) {
  UPA_REQUIRE(std::isfinite(sample.t), "sample time must be finite");
  if (!window_.empty() && sample.t < window_.back().t) return;

  if (!window_.empty()) {
    const CounterSample& prev = window_.back();
    const double dt = sample.t - prev.t;
    if (dt > 0.0) {
      const double instant =
          std::max(0.0, sample.arrivals - prev.arrivals) / dt;
      // Half-life smoothing: after `halflife` seconds of evidence the
      // old estimate contributes half. Seed on the first difference so
      // the EWMA never has to climb up from zero.
      const double keep =
          std::exp2(-dt / options_.ewma_halflife_seconds);
      lambda_ewma_ = lambda_seeded_
                         ? keep * lambda_ewma_ + (1.0 - keep) * instant
                         : instant;
      lambda_seeded_ = true;
    }
  }
  window_.push_back(sample);
  const double horizon = sample.t - options_.window_seconds;
  // Keep one sample at or before the horizon as the difference base, so
  // the window always spans >= window_seconds once enough time passed.
  while (window_.size() >= 2 && window_[1].t <= horizon) {
    window_.pop_front();
  }
  const double handled =
      std::max(0.0, window_.back().handled - window_.front().handled);
  const double busy = std::max(
      0.0, window_.back().busy_seconds - window_.front().busy_seconds);
  if (handled > 0.0 && busy > 0.0) last_nu_ = handled / busy;
}

RateEstimate RateEstimator::estimate() const {
  RateEstimate e;
  if (window_.size() < 2) return e;
  const CounterSample& base = window_.front();
  const CounterSample& now = window_.back();
  const double span = now.t - base.t;
  if (span <= 0.0) return e;
  e.window_seconds = span;

  const double arrivals = std::max(0.0, now.arrivals - base.arrivals);
  const double rejected = std::max(0.0, now.rejected - base.rejected);

  e.window_arrivals = arrivals;
  e.lambda_window = arrivals / span;
  e.lambda = lambda_seeded_ ? lambda_ewma_ : e.lambda_window;
  if (arrivals > 0.0) {
    e.loss = rejected / arrivals;
    e.loss_stddev = std::sqrt(e.loss * (1.0 - e.loss) / arrivals);
  }
  e.nu = last_nu_;
  e.ready = span >= options_.min_window_seconds;
  return e;
}

void RateEstimator::reset() {
  window_.clear();
  lambda_ewma_ = 0.0;
  lambda_seeded_ = false;
  last_nu_ = 0.0;
}

}  // namespace upa::control
