#include "upa/ta/params.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::ta {

TaParameters TaParameters::with_reservation_systems(std::size_t n) const {
  TaParameters p = *this;
  p.n_flight = p.n_hotel = p.n_car = n;
  return p;
}

void TaParameters::validate() const {
  using upa::common::is_probability;
  UPA_REQUIRE(is_probability(a_net) && is_probability(a_lan) &&
                  is_probability(a_cas) && is_probability(a_cds) &&
                  is_probability(a_disk) && is_probability(a_payment) &&
                  is_probability(a_reservation),
              "availabilities must lie in [0, 1]");
  UPA_REQUIRE(n_flight >= 1 && n_hotel >= 1 && n_car >= 1,
              "need at least one reservation system per trip item");
  UPA_REQUIRE(n_web >= 1, "need at least one web server");
  UPA_REQUIRE(lambda_web > 0.0 && mu_web > 0.0,
              "web failure/repair rates must be positive");
  UPA_REQUIRE(is_probability(coverage), "coverage must be a probability");
  UPA_REQUIRE(beta > 0.0, "reconfiguration rate must be positive");
  UPA_REQUIRE(alpha > 0.0 && nu > 0.0, "request rates must be positive");
  UPA_REQUIRE(buffer >= n_web,
              "buffer K must be at least the number of web servers");
  UPA_REQUIRE(is_probability(q23) && is_probability(q24) &&
                  is_probability(q45) && is_probability(q47),
              "branch probabilities must lie in [0, 1]");
  UPA_REQUIRE(std::abs(q23 + q24 - 1.0) <= 1e-9,
              "q23 + q24 must equal 1 (web-server branch)");
  UPA_REQUIRE(std::abs(q45 + q47 - 1.0) <= 1e-9,
              "q45 + q47 must equal 1 (application-server branch)");
}

}  // namespace upa::ta
