#include "upa/ta/user_classes.hpp"

#include <array>

#include "upa/common/error.hpp"
#include "upa/profile/session_graph.hpp"

namespace upa::ta {
namespace {

constexpr std::size_t kHome = 0;
constexpr std::size_t kBrowse = 1;
constexpr std::size_t kSearch = 2;
constexpr std::size_t kBook = 3;
constexpr std::size_t kPay = 4;

/// Table 1 probabilities (percent), scenario order 1..12.
constexpr std::array<double, 12> kClassA = {10.0, 26.7, 11.3, 18.4, 12.2, 7.6,
                                            3.0,  2.0,  1.3,  3.6,  2.4,  1.5};
constexpr std::array<double, 12> kClassB = {10.0, 6.6, 4.2, 13.9, 20.4, 9.7,
                                            4.7,  6.9, 3.3, 6.4,  9.4,  4.5};

const std::array<double, 12>& table_of(UserClass uc) {
  return uc == UserClass::kA ? kClassA : kClassB;
}

}  // namespace

std::string user_class_name(UserClass uc) {
  return uc == UserClass::kA ? "class A" : "class B";
}

std::size_t function_index(TaFunction f) {
  return static_cast<std::size_t>(f);
}

std::string category_name(ScenarioCategory c) {
  switch (c) {
    case ScenarioCategory::kSC1:
      return "SC1 (Home/Browse only)";
    case ScenarioCategory::kSC2:
      return "SC2 (Search, no Book)";
    case ScenarioCategory::kSC3:
      return "SC3 (Book, no Pay)";
    case ScenarioCategory::kSC4:
      return "SC4 (Pay)";
  }
  UPA_ASSERT(false);
  return {};
}

ScenarioCategory category_of(const profile::ScenarioClass& scenario) {
  if (scenario.functions.contains(kPay)) return ScenarioCategory::kSC4;
  if (scenario.functions.contains(kBook)) return ScenarioCategory::kSC3;
  if (scenario.functions.contains(kSearch)) return ScenarioCategory::kSC2;
  return ScenarioCategory::kSC1;
}

profile::ScenarioSet scenario_table(UserClass uc) {
  const auto& pi = table_of(uc);
  profile::ScenarioSet set({"Home", "Browse", "Search", "Book", "Pay"});

  using S = std::set<std::size_t>;
  struct Row {
    const char* label;
    S functions;
  };
  const std::array<Row, 12> rows = {{
      {"St-Ho-Ex", {kHome}},
      {"St-Br-Ex", {kBrowse}},
      {"St-{Ho-Br}*-Ex", {kHome, kBrowse}},
      {"St-Ho-Se-Ex", {kHome, kSearch}},
      {"St-Br-Se-Ex", {kBrowse, kSearch}},
      {"St-{Ho-Br}*-Se-Ex", {kHome, kBrowse, kSearch}},
      {"St-Ho-{Se-Bo}*-Ex", {kHome, kSearch, kBook}},
      {"St-Br-{Se-Bo}*-Ex", {kBrowse, kSearch, kBook}},
      {"St-{Ho-Br}*-{Se-Bo}*-Ex", {kHome, kBrowse, kSearch, kBook}},
      {"St-Ho-{Se-Bo}*-Pa-Ex", {kHome, kSearch, kBook, kPay}},
      {"St-Br-{Se-Bo}*-Pa-Ex", {kBrowse, kSearch, kBook, kPay}},
      {"St-{Ho-Br}*-{Se-Bo}*-Pa-Ex",
       {kHome, kBrowse, kSearch, kBook, kPay}},
  }};
  for (std::size_t i = 0; i < rows.size(); ++i) {
    set.add(rows[i].label, rows[i].functions, pi[i] / 100.0);
  }
  set.validate_complete(1e-9);
  return set;
}

profile::OperationalProfile fitted_session_graph(UserClass uc,
                                                 double start_home,
                                                 double book_back_to_search) {
  UPA_REQUIRE(start_home > 0.0 && start_home < 1.0,
              "start_home must lie strictly inside (0, 1)");
  UPA_REQUIRE(book_back_to_search >= 0.0 && book_back_to_search < 1.0,
              "book_back_to_search must lie in [0, 1)");
  const auto& pi = table_of(uc);
  auto pct = [&](int i) { return pi[static_cast<std::size_t>(i - 1)] / 100.0; };

  // Closed-form identification (see DESIGN.md): the 12 scenario classes
  // factor into a browsing part (which of Home/Browse is visited) and a
  // transaction part (how deep the Search-Book-Pay funnel goes), so the
  // p_ij are recovered from marginal ratios.
  const double u = start_home;
  const double ho_only = pct(1) + pct(4) + pct(7) + pct(10);
  const double br_only = pct(2) + pct(5) + pct(8) + pct(11);
  // Home row: split exit vs search by pi_1 : (pi_4 + pi_7 + pi_10).
  const double eh_plus_sh = ho_only / u;
  UPA_REQUIRE(eh_plus_sh < 1.0 + 1e-9,
              "start_home too small for this profile");
  const double e_h = eh_plus_sh * pct(1) / ho_only;
  const double s_h = eh_plus_sh - e_h;
  const double t_h = 1.0 - eh_plus_sh;
  // Browse row, analogously.
  const double eb_plus_sb = br_only / (1.0 - u);
  UPA_REQUIRE(eb_plus_sb < 1.0 + 1e-9,
              "start_home too large for this profile");
  const double e_b = eb_plus_sb * pct(2) / br_only;
  const double s_b = eb_plus_sb - e_b;
  const double t_b = 1.0 - eb_plus_sb;

  // Transaction funnel: given Search is reached, exit directly with x_e,
  // book with x_b; from Book, return to Search (r), pay (p_p) or exit.
  const double reach_search = pct(4) + pct(5) + pct(6) + pct(7) + pct(8) +
                              pct(9) + pct(10) + pct(11) + pct(12);
  const double q_none =
      (pct(4) + pct(5) + pct(6)) / reach_search;  // Search only
  const double q_pay = (pct(10) + pct(11) + pct(12)) / reach_search;
  const double x_e = q_none;
  const double x_b = 1.0 - x_e;
  const double r = book_back_to_search;
  const double p_p = q_pay * (1.0 - x_b * r) / x_b;
  const double b_e = 1.0 - r - p_p;
  UPA_REQUIRE(p_p >= 0.0 && b_e >= -1e-9,
              "book_back_to_search too large for this profile");

  profile::SessionGraphBuilder builder;
  builder.add_function("Home")
      .add_function("Browse")
      .add_function("Search")
      .add_function("Book")
      .add_function("Pay");
  builder.transition("Start", "Home", u)
      .transition("Start", "Browse", 1.0 - u)
      .transition("Home", "Exit", e_h)
      .transition("Home", "Search", s_h)
      .transition("Home", "Browse", t_h)
      .transition("Browse", "Exit", e_b)
      .transition("Browse", "Search", s_b)
      .transition("Browse", "Home", t_b)
      .transition("Search", "Exit", x_e)
      .transition("Search", "Book", x_b)
      .transition("Book", "Pay", p_p)
      .transition("Book", "Exit", std::max(b_e, 0.0))
      .transition("Pay", "Exit", 1.0);
  if (r > 0.0) builder.transition("Book", "Search", r);
  return builder.build();
}

}  // namespace upa::ta
