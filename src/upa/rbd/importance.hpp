#pragma once
// Component importance measures: which component's availability matters
// most to the system? These quantify the paper's qualitative remark that
// LAN / Internet access / web service dominate the user-perceived measure.

#include <string>
#include <vector>

#include "upa/rbd/block.hpp"

namespace upa::rbd {

/// Importance measures of one component within a diagram.
struct ComponentImportance {
  std::string component;
  /// Birnbaum: dA_sys / dA_c = A(sys | c up) - A(sys | c down).
  double birnbaum = 0.0;
  /// Criticality: birnbaum * (1 - A_c) / (1 - A_sys); probability that the
  /// component is "responsible" for system failure.
  double criticality = 0.0;
  /// Risk achievement worth: UA(sys | c down) / UA(sys).
  double risk_achievement_worth = 0.0;
  /// Risk reduction worth: UA(sys) / UA(sys | c up).
  double risk_reduction_worth = 0.0;
};

/// Importance of every component, sorted by descending Birnbaum measure.
[[nodiscard]] std::vector<ComponentImportance> importance_ranking(
    const Block& block, const ParamMap& params);

}  // namespace upa::rbd
