#include "upa/spn/reachability.hpp"

#include <deque>

#include "upa/common/error.hpp"

namespace upa::spn {

std::size_t ReachabilityGraph::tangible_count() const {
  std::size_t n = 0;
  for (bool v : vanishing) {
    if (!v) ++n;
  }
  return n;
}

ReachabilityGraph explore(const PetriNet& net,
                          const ReachabilityOptions& options) {
  ReachabilityGraph graph;
  std::map<Marking, std::size_t> index_of;

  const Marking initial = net.initial_marking();
  graph.markings.push_back(initial);
  graph.vanishing.push_back(net.is_vanishing(initial));
  index_of.emplace(initial, 0);
  graph.initial = 0;

  std::deque<std::size_t> frontier{0};
  while (!frontier.empty()) {
    const std::size_t current = frontier.front();
    frontier.pop_front();
    const Marking marking = graph.markings[current];

    for (TransitionId t : net.eligible_transitions(marking)) {
      Marking next = net.fire(t, marking);
      std::size_t next_index;
      if (const auto it = index_of.find(next); it != index_of.end()) {
        next_index = it->second;
      } else {
        UPA_REQUIRE(graph.markings.size() < options.max_markings,
                    "reachability exploration exceeded max_markings; "
                    "the net may be unbounded");
        next_index = graph.markings.size();
        graph.vanishing.push_back(net.is_vanishing(next));
        graph.markings.push_back(std::move(next));
        index_of.emplace(graph.markings.back(), next_index);
        frontier.push_back(next_index);
      }
      graph.edges.push_back(
          {current, next_index, t, net.effective_rate(t, marking),
           net.transition_kind(t) == TransitionKind::kImmediate});
    }
  }
  return graph;
}

}  // namespace upa::spn
