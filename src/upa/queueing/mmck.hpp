#pragma once
// M/M/c/K multi-server finite-capacity queue — the paper's eq. (3):
// p_K(i) is the probability an arriving request is lost when i servers are
// operational and the total capacity is K. Conventions: `alpha` arrival
// rate, `nu` per-server service rate, rho = alpha / nu (NOT per-server
// utilization), c servers, capacity K >= c.

#include <cstddef>
#include <vector>

namespace upa::queueing {

/// Full steady-state description of an M/M/c/K queue.
struct MmckMetrics {
  double rho = 0.0;       ///< alpha / nu
  double blocking = 0.0;  ///< p_K
  double mean_in_system = 0.0;
  double mean_in_queue = 0.0;
  double throughput = 0.0;      ///< alpha (1 - p_K)
  double mean_response = 0.0;   ///< W for accepted requests
  double mean_busy_servers = 0.0;
  std::vector<double> state_probabilities;  ///< p_0 .. p_K
};

/// Loss probability p_K(c) of M/M/c/K (paper eq. 3; reduces to eq. 1 for
/// c = 1). Stable for any rho; the running product-form weight is
/// rescaled in-loop (exact power-of-two factors), so even extreme
/// rho/capacity combinations (rho ~ 1e3, K ~ 1e4) stay finite. Consults
/// the evaluation cache when cache::set_enabled is on.
[[nodiscard]] double mmck_loss_probability(double alpha, double nu,
                                           std::size_t servers,
                                           std::size_t capacity);

/// All steady-state metrics of M/M/c/K.
[[nodiscard]] MmckMetrics mmck_metrics(double alpha, double nu,
                                       std::size_t servers,
                                       std::size_t capacity);

/// The paper's web-farm usage: loss probability with `operational` servers
/// sharing one buffer of size K (capacity = K in the paper's notation).
/// Thin name-preserving wrapper so call sites read like the paper.
[[nodiscard]] double paper_pk(double alpha, double nu,
                              std::size_t operational_servers,
                              std::size_t buffer_size);

/// Result of an inverse search over the p_K(i) surface.
struct MmckSizing {
  std::size_t servers = 0;   ///< smallest feasible i (or the search cap)
  std::size_t capacity = 0;  ///< smallest feasible K for that i (or cap)
  double loss = 1.0;         ///< analytic p_K at the returned point
  bool feasible = false;     ///< loss <= target within the caps
};

/// Smallest K in [max(servers, min_capacity), max_capacity] with
/// p_K(servers) <= target_loss, exploiting that p_K is nonincreasing in
/// K at fixed (alpha, nu, i) -- a binary search over the capacity axis.
/// Infeasible searches return {servers, max_capacity, loss, false}.
[[nodiscard]] MmckSizing mmck_capacity_for_loss(double alpha, double nu,
                                                std::size_t servers,
                                                double target_loss,
                                                std::size_t max_capacity,
                                                std::size_t min_capacity = 1);

/// Smallest (i, K) -- fewest servers first, then smallest capacity --
/// with p_K(i) <= target_loss. p_K is nonincreasing in i at fixed K, so
/// the scan stops at the first feasible server count. Infeasible
/// searches return the (max_servers, max_capacity) corner with
/// feasible = false, which is still the best configuration available --
/// callers under overload apply it rather than doing nothing.
[[nodiscard]] MmckSizing mmck_smallest_config(double alpha, double nu,
                                              double target_loss,
                                              std::size_t max_servers,
                                              std::size_t max_capacity,
                                              std::size_t min_servers = 1);

}  // namespace upa::queueing
