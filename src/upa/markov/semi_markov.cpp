#include "upa/markov/semi_markov.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::markov {

SemiMarkovProcess::SemiMarkovProcess(linalg::Matrix embedded_transitions,
                                     std::vector<double> mean_sojourns)
    : embedded_(std::move(embedded_transitions)),
      sojourns_(std::move(mean_sojourns)) {
  UPA_REQUIRE(sojourns_.size() == embedded_.state_count(),
              "one mean sojourn per state required");
  for (double m : sojourns_) {
    UPA_REQUIRE(std::isfinite(m) && m > 0.0,
                "mean sojourn times must be positive");
  }
}

linalg::Vector SemiMarkovProcess::embedded_stationary() const {
  return embedded_.stationary_distribution();
}

linalg::Vector SemiMarkovProcess::steady_state_occupancy() const {
  const linalg::Vector nu = embedded_stationary();
  linalg::Vector pi(nu.size());
  for (std::size_t i = 0; i < nu.size(); ++i) {
    pi[i] = nu[i] * sojourns_[i];
  }
  upa::common::normalize(pi);
  return pi;
}

double SemiMarkovProcess::occupancy_mass(
    const std::vector<std::size_t>& states) const {
  const linalg::Vector pi = steady_state_occupancy();
  double mass = 0.0;
  for (std::size_t s : states) {
    UPA_REQUIRE(s < pi.size(), "state index out of range");
    mass += pi[s];
  }
  return mass;
}

SemiMarkovProcess to_semi_markov(const Ctmc& chain) {
  const std::size_t n = chain.state_count();
  const linalg::SparseMatrix q = chain.sparse_generator();
  linalg::Matrix p(n, n);
  std::vector<double> sojourns(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double exit = chain.exit_rate(i);
    UPA_REQUIRE(exit > 0.0,
                "absorbing state has no semi-Markov representation");
    sojourns[i] = 1.0 / exit;
    const auto cols = q.row_cols(i);
    const auto vals = q.row_values(i);
    for (std::size_t k = 0; k < cols.size(); ++k) {
      if (cols[k] == i) continue;
      p(i, cols[k]) = vals[k] / exit;
    }
  }
  return SemiMarkovProcess(std::move(p), std::move(sojourns));
}

}  // namespace upa::markov
