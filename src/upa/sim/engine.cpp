#include "upa/sim/engine.hpp"

#include <cmath>
#include <limits>

#include "upa/common/error.hpp"

namespace upa::sim {

EventId Engine::schedule_at(double at, std::function<void()> handler) {
  UPA_REQUIRE(std::isfinite(at) && at >= now_,
              "events must be scheduled at or after the current time");
  UPA_REQUIRE(handler != nullptr, "event handler must be callable");
  const EventId id = next_id_++;
  calendar_.push({at, id});
  handlers_.emplace(id, std::move(handler));
  return id;
}

EventId Engine::schedule_in(double delay, std::function<void()> handler) {
  UPA_REQUIRE(std::isfinite(delay) && delay >= 0.0,
              "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Engine::cancel(EventId id) { return handlers_.erase(id) > 0; }

void Engine::run_until(double horizon) {
  UPA_REQUIRE(std::isfinite(horizon) && horizon >= now_,
              "horizon must be at or after the current time");
  while (!calendar_.empty()) {
    const Entry entry = calendar_.top();
    if (entry.time > horizon) break;
    calendar_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    now_ = entry.time;
    std::function<void()> handler = std::move(it->second);
    handlers_.erase(it);
    ++processed_;
    handler();
  }
  now_ = horizon;
}

void Engine::run_all() {
  while (!calendar_.empty()) {
    const Entry entry = calendar_.top();
    calendar_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;
    now_ = entry.time;
    std::function<void()> handler = std::move(it->second);
    handlers_.erase(it);
    ++processed_;
    handler();
  }
}

std::size_t Engine::pending_count() const noexcept {
  return handlers_.size();
}

}  // namespace upa::sim
