#pragma once
// Discrete-event simulation of a G/G/c/K queue (FIFO, homogeneous
// servers). With exponential interarrival/service times this validates the
// M/M/c/K closed forms; with other distributions it quantifies how far the
// paper's Poisson assumptions can be stretched.

#include <cstdint>

#include "upa/sim/distributions.hpp"
#include "upa/sim/stats.hpp"

namespace upa::sim {

/// Queue description: `capacity` counts waiting room + in-service jobs.
struct QueueSpec {
  Distribution interarrival;
  Distribution service;
  std::size_t servers = 1;
  std::size_t capacity = 1;
};

/// Controls for the queue simulation.
struct QueueSimOptions {
  std::uint64_t arrivals_per_replication = 200000;
  std::uint64_t warmup_arrivals = 10000;
  std::size_t replications = 10;
  std::uint64_t seed = 42;
  double confidence_level = 0.95;
  /// When > 0, the fraction of accepted jobs whose sojourn time exceeds
  /// this deadline is also estimated (deadline_miss in the result).
  double deadline = 0.0;
};

/// Simulation outputs with confidence intervals over replications.
struct QueueSimResult {
  ConfidenceInterval loss_probability;
  ConfidenceInterval mean_in_system;     ///< time-averaged L
  ConfidenceInterval mean_response;      ///< accepted jobs' sojourn time
  /// Fraction of accepted jobs missing options.deadline (all-zero when
  /// the deadline feature is disabled).
  ConfidenceInterval deadline_miss;
};

[[nodiscard]] QueueSimResult simulate_queue(const QueueSpec& spec,
                                            const QueueSimOptions& options = {});

}  // namespace upa::sim
