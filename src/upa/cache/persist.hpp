#pragma once
// PersistentCache: the disk-backed second tier of EvalCache.
//
// Two attach modes:
//
//  - kLazy (default): construction opens every *.upaseg via mmap and
//    loads (or rebuilds) its *.upaidx sidecar -- a sorted key-digest ->
//    record-offset table -- so attach cost is O(index bytes), not
//    O(decode every value). The instance installs itself as the cache's
//    CacheSource: a miss binary-searches the indexes, CRC-checks the
//    one record it points at, compares FULL key bytes (a digest
//    collision can never replay a wrong value), decodes it, and serves
//    it as a disk hit. Millions of records cost attach-time microseconds
//    each only when actually touched.
//
//  - kEager: the PR-8 behavior -- decode and seed everything at
//    construction. Kept for workloads that replay the entire directory
//    anyway (and as the bench baseline the lazy path is gated against).
//
// Both modes install the instance as the cache's insert sink, so every
// freshly computed value is write-behind-appended to a per-process
// active segment; a key already persisted is never appended twice, so
// re-running a workload leaves the directory the same size. (Lazy mode
// dedupes by key digest instead of full key bytes -- a collision merely
// skips one append, never corrupts a value.)
//
// Maintenance: start_maintenance() runs background compaction -- when
// the directory holds enough sealed segments they are merged
// first-wins into one `compact-*` segment and atomically swapped in
// (see compact.hpp); the process's own active segment is never touched.
// upa_cachectl drives the same pass offline.
//
// Free functions export_segment_blob / import_segment_blob carry
// segment bytes over the wire (`cache export` / `cache import`), and
// digest_summary / export_delta_blob implement the anti-entropy
// exchange: a replica ships the digests it HAS, a peer answers with a
// delta blob of only the records the caller is missing.
// digest_fingerprint collapses the summary to an O(1)-to-compare
// (count, fold) pair so converged replicas skip the exchange entirely,
// and export_delta_page cuts a large delta into bounded pages that fit
// the wire protocol's line cap.
//
// Writer exclusivity: construction takes an flock(2) DirectoryLock on
// the directory (`.upalock`), so a second writer -- another process OR
// a second in-process attach -- fails fast with an error naming the
// holder's pid instead of interleaving appends and compactions.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_set>
#include <vector>

#include "upa/cache/compact.hpp"
#include "upa/cache/eval_cache.hpp"
#include "upa/cache/index.hpp"
#include "upa/cache/segment.hpp"

namespace upa::cache {

/// Advisory single-writer lock on a cache directory: an exclusive
/// non-blocking flock(2) on `<dir>/.upalock`, stamped with the holder's
/// pid. Construction throws ModelError naming the current holder when
/// the lock is already taken. flock is per open file description, so a
/// second attach from the SAME process conflicts too -- exactly the
/// accident (two sinks appending to one directory) this guards against.
/// The default-constructed lock holds nothing; moving transfers
/// ownership; destruction releases.
class DirectoryLock {
 public:
  DirectoryLock() = default;
  explicit DirectoryLock(const std::string& directory);
  ~DirectoryLock();

  DirectoryLock(DirectoryLock&& other) noexcept;
  DirectoryLock& operator=(DirectoryLock&& other) noexcept;
  DirectoryLock(const DirectoryLock&) = delete;
  DirectoryLock& operator=(const DirectoryLock&) = delete;

  [[nodiscard]] bool held() const noexcept { return fd_ >= 0; }

  /// The lock file's name inside the directory.
  static constexpr const char* kLockFileName = ".upalock";

 private:
  void release() noexcept;
  int fd_ = -1;
};

struct PersistConfig {
  enum class Attach { kLazy, kEager };
  Attach attach = Attach::kLazy;
  /// Online maintenance compacts once the directory holds at least this
  /// many sealed (non-active) segments.
  std::size_t compact_min_segments = 4;
};

struct PersistStats {
  std::size_t segments_loaded = 0;
  std::size_t segments_rejected = 0;  ///< version/tag mismatch, unreadable
  std::size_t indexes_loaded = 0;     ///< fresh *.upaidx reused
  std::size_t indexes_rebuilt = 0;    ///< missing/stale/corrupt -> rescan
  std::uint64_t records_indexed = 0;  ///< offsets addressable on disk
  std::uint64_t bytes_mapped = 0;     ///< segment bytes behind mmap views
  std::uint64_t records_replayed = 0;  ///< decoded into memory (eager seed
                                       ///< or lazy disk-hit serve)
  std::uint64_t disk_hits = 0;  ///< lazy lookups served from a segment
  std::uint64_t records_skipped_crc = 0;
  std::uint64_t records_skipped_decode = 0;  ///< unknown tag / bad payload
  std::uint64_t records_appended = 0;  ///< written to the active segment
  std::uint64_t write_errors = 0;  ///< appends lost to I/O failure
  std::uint64_t compactions = 0;   ///< maintenance passes that merged
  std::uint64_t compact_records_dropped = 0;
};

struct ImportStats {
  bool segment_rejected = false;
  std::uint64_t records_seeded = 0;     ///< new in-memory entries
  std::uint64_t records_duplicate = 0;  ///< key was already in memory
  std::uint64_t records_skipped = 0;    ///< CRC or decode failures
  std::uint64_t records_appended = 0;   ///< persisted to the active segment
};

class PersistentCache final : public CacheSink, public CacheSource {
 public:
  /// Creates `directory` when missing, attaches per `config.attach`,
  /// and installs itself as the cache's sink (and source, when lazy).
  /// Throws ModelError when the directory cannot be created or listed.
  PersistentCache(EvalCache& cache, std::string directory,
                  PersistConfig config = {});
  ~PersistentCache() override;

  void on_insert(const CacheKey& key, const StoredValue& value) override;

  /// CacheSource: serves a lazy lookup from the mapped segments.
  bool lookup(const CacheKey& key, StoredValue* out) override;

  /// Decodes a segment blob (the `cache import` RPC payload), seeds the
  /// cache, and appends previously unseen records to the active segment
  /// so the imported warmth survives the NEXT restart too.
  ImportStats import_blob(std::string_view segment_bytes);

  /// Merges this directory's sealed segments (everything but the
  /// process's own active file) into one compacted segment and swaps
  /// the in-memory maps to it. No-op returning performed=false when
  /// fewer than `min_segments` sealed segments exist.
  CompactionStats compact_now(std::size_t min_segments = 2);

  /// Starts (or restarts) the background maintenance thread: every
  /// `interval` it runs compact_now(config.compact_min_segments).
  void start_maintenance(std::chrono::milliseconds interval);
  void stop_maintenance();

  [[nodiscard]] PersistStats stats() const;
  [[nodiscard]] const std::string& directory() const noexcept {
    return directory_;
  }

 private:
  /// One attached sealed segment: its mapping plus the sorted
  /// digest -> offset table lazily consulted on lookups.
  struct AttachedSegment {
    std::string path;
    MappedFile file;
    std::vector<IndexEntry> entries;
  };

  void load_directory_eager();
  void load_directory_lazy();
  /// Opens + indexes one segment, appends it to segments_, and folds
  /// its digests into persisted_digests_. Caller holds mutex_.
  void attach_segment(const std::string& path);
  /// True when some attached segment's index holds `digest` -- append
  /// dedupe binary-searches the sorted entries instead of building a
  /// digest hash set at attach time (which would dwarf the index load
  /// at 10^5+ records). Caller holds mutex_.
  [[nodiscard]] bool digest_on_disk(std::uint64_t digest) const;
  /// Seeds one decoded record; returns false on decode failure.
  bool seed_record(const SegmentRecord& record, bool* inserted);
  void append_record(const std::string& type_tag,
                     const std::string& key_bytes,
                     const std::string& value_bytes);

  EvalCache& cache_;
  std::string directory_;
  PersistConfig config_;
  DirectoryLock lock_;  // held for the instance lifetime

  mutable std::mutex mutex_;
  std::unique_ptr<SegmentFile> active_;  // created lazily on first append
  std::vector<AttachedSegment> segments_;  // lazy mode, replay order
  /// Digests THIS process appended or eager-seeded; sealed segments
  /// are consulted through their sorted indexes (digest_on_disk).
  std::unordered_set<std::uint64_t> persisted_digests_;
  PersistStats stats_;

  std::mutex maintenance_mutex_;
  std::condition_variable maintenance_cv_;
  std::thread maintenance_;
  bool maintenance_stop_ = false;
};

/// Serializes every completed in-memory entry that has a registered
/// codec into one segment blob (the `cache export` RPC payload).
struct ExportStats {
  std::uint64_t records = 0;
  std::uint64_t skipped_no_codec = 0;
};
[[nodiscard]] std::string export_segment_blob(EvalCache& cache,
                                              ExportStats* stats = nullptr);

/// Seeds `cache` from a segment blob without touching any disk tier
/// (the import path of a replica running without --cache-dir).
ImportStats import_segment_blob(EvalCache& cache,
                                std::string_view segment_bytes);

/// Sorted, deduplicated key digests of every completed in-memory entry
/// -- the compact summary `cache digest` ships between replicas.
[[nodiscard]] std::vector<std::uint64_t> digest_summary(EvalCache& cache);

/// Packs digests as little-endian u64s (hex-encode for the wire).
[[nodiscard]] std::string encode_digests(
    const std::vector<std::uint64_t>& digests);
/// Inverse; throws ModelError when the byte count is not a multiple
/// of 8. The result is sorted.
[[nodiscard]] std::vector<std::uint64_t> decode_digests(
    std::string_view bytes);

/// Like export_segment_blob, but skips every entry whose key digest is
/// in `have` (must be sorted) -- the delta a `cache pull` answers with.
[[nodiscard]] std::string export_delta_blob(
    EvalCache& cache, const std::vector<std::uint64_t>& have,
    ExportStats* stats = nullptr);

/// O(1)-to-compare convergence check: the number of distinct key
/// digests plus a commutative splitmix64 fold over them. Equal
/// fingerprints mean equal warm sets (up to a ~2^-64 fold collision),
/// so a converged anti-entropy round costs one tiny RPC instead of
/// shipping the full digest summary.
struct DigestFingerprint {
  std::uint64_t count = 0;
  std::uint64_t fold = 0;
  friend bool operator==(const DigestFingerprint&,
                         const DigestFingerprint&) = default;
};
[[nodiscard]] DigestFingerprint digest_fingerprint(EvalCache& cache);

/// One bounded page of the delta export: records in ascending
/// key-digest order, strictly after `cursor`, packed until adding the
/// next record would push the blob past `max_bytes` (a page always
/// carries at least one record, so progress never stalls on one large
/// value). `complete` means the delta is exhausted; otherwise resume
/// with `next_cursor`. Lets `cache pull` answers stay under the wire
/// protocol's line cap no matter how large the delta is.
struct DeltaPage {
  std::string blob;            ///< segment header + the page's records
  bool complete = true;        ///< no records remain past this page
  std::uint64_t next_cursor = 0;  ///< resume point (last shipped digest)
  std::uint64_t records = 0;
  std::uint64_t skipped_no_codec = 0;
};
[[nodiscard]] DeltaPage export_delta_page(
    EvalCache& cache, const std::vector<std::uint64_t>& have,
    std::uint64_t cursor, std::size_t max_bytes);

/// Attaches the process-global persistence tier (what --cache-dir
/// does): warms cache::global() from `directory` and write-behinds
/// its inserts there for the rest of the process lifetime. Idempotent
/// for the same directory; throws ModelError when already attached to a
/// different one.
PersistentCache& attach_global_persistence(const std::string& directory);

/// The attached tier, or nullptr when the process runs memory-only.
[[nodiscard]] PersistentCache* global_persistence() noexcept;

}  // namespace upa::cache
