// Transient analysis supporting the paper's modeling assumption
// (Section 4.1.2): the composite performance-availability approach
// requires the failure/repair process to reach quasi-steady state between
// performance events. This bench quantifies both sides: how fast the farm
// chain converges to its steady state (hours) vs the request timescale
// (milliseconds), and how the interval availability over a finite mission
// approaches the steady value.

#include "bench_util.hpp"
#include "upa/core/performability.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/markov/reward.hpp"
#include "upa/markov/transient.hpp"

namespace {

namespace uc = upa::core;
namespace um = upa::markov;
namespace cm = upa::common;

void print_transient() {
  upa::bench::print_header(
      "Quasi-steady-state assumption (Section 4.1.2)",
      "Transient behaviour of the Figure 10 farm chain (N_W=4, c=0.98,\n"
      "lambda=1e-4/h, mu=1/h, beta=12/h), starting from all-servers-up.");

  const uc::WebFarmParams farm{4, 1e-4, 1.0, 0.98, 12.0};
  const uc::WebQueueParams queue{100.0, 100.0, 10};
  const auto composite = uc::composite_imperfect(farm, queue);
  const double steady = composite.availability();

  const um::RewardModel reward(composite.chain(),
                               composite.service_probability());
  upa::linalg::Vector initial(composite.chain().state_count(), 0.0);
  initial[4] = 1.0;  // all four servers up

  cm::Table t({"t [hours]", "point availability A(t)",
               "interval availability A_I(0,t)", "|A(t) - A_steady|"});
  for (double t_h : {1.0, 10.0, 100.0, 1000.0, 10000.0, 100000.0}) {
    const double point = reward.transient_reward(initial, t_h);
    const double interval = reward.interval_reward(initial, t_h, 100);
    t.add_row({cm::fmt(t_h, 6), cm::fmt(point, 10), cm::fmt(interval, 10),
               cm::fmt_sci(std::abs(point - steady), 2)});
  }
  std::cout << t << "\n";
  std::cout << "steady-state composite availability = " << cm::fmt(steady, 10)
            << "\n";
  const double separation = uc::timescale_separation_ratio(
      composite.chain(), /*performance rate*/ 100.0 * 3600.0);
  std::cout << "timescale separation (failure dynamics / request rate) = "
            << cm::fmt_sci(separation, 2)
            << "  (<< 1: the composite approach is sound)\n\n";

  // Mission-time view: short missions see better-than-steady service
  // because the farm starts fully up.
  cm::Table m({"mission length", "expected served fraction"});
  m.set_align(0, cm::Align::kLeft);
  for (double hours : {24.0, 24.0 * 7, 24.0 * 30, 24.0 * 365}) {
    m.add_row({cm::fmt(hours / 24.0, 4) + " days",
               cm::fmt(reward.interval_reward(initial, hours, 200), 10)});
  }
  std::cout << m << "\n";
}

void bm_transient_point(benchmark::State& state) {
  const uc::WebFarmParams farm{4, 1e-4, 1.0, 0.98, 12.0};
  const uc::WebQueueParams queue{100.0, 100.0, 10};
  const auto composite = uc::composite_imperfect(farm, queue);
  const um::RewardModel reward(composite.chain(),
                               composite.service_probability());
  upa::linalg::Vector initial(composite.chain().state_count(), 0.0);
  initial[4] = 1.0;
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(reward.transient_reward(initial, t));
  }
}
BENCHMARK(bm_transient_point)->Arg(10)->Arg(1000)->Arg(100000);

}  // namespace

UPA_BENCH_MAIN(print_transient)
