// The dispatch front end: upstream pool bookkeeping, balancing policies,
// health-driven ejection/readmission, byte-identical forwarding, the
// bounded failover retry layer, and the live kill -9 farm experiment
// validated against the imperfect-coverage composite model.
//
// Naming note: the Dispatch* suites run under the ThreadSanitizer CI job
// (its ctest regex includes "Dispatch"). FarmFailover deliberately does
// NOT match that regex: it spawns real upa_served processes and measures
// a timed loss fraction, which under TSan's ~10x slowdown would measure
// the sanitizer, not the farm.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/dispatch/balancer.hpp"
#include "upa/dispatch/farm.hpp"
#include "upa/dispatch/front.hpp"
#include "upa/dispatch/health.hpp"
#include "upa/dispatch/upstream.hpp"
#include "upa/inject/fault_plan.hpp"
#include "upa/obs/metrics.hpp"
#include "upa/obs/observer.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/protocol.hpp"
#include "upa/serve/loadgen.hpp"
#include "upa/serve/server.hpp"

namespace {

using upa::common::ModelError;
using upa::dispatch::AttemptOutcome;
using upa::dispatch::BalancePolicy;
using upa::dispatch::Balancer;
using upa::dispatch::Front;
using upa::dispatch::FrontConfig;
using upa::dispatch::UpstreamAddress;
using upa::dispatch::UpstreamPool;
using upa::serve::CallOutcome;
using upa::serve::Server;
using upa::serve::ServerConfig;

/// Starts and immediately stops an ephemeral server, yielding a loopback
/// port that is bound by nobody: connections to it are refused fast,
/// which is exactly how a SIGKILLed replica looks to the front.
std::uint16_t claim_dead_port() {
  ServerConfig config;
  config.port = 0;
  config.workers = 1;
  config.capacity = 2;
  Server server(std::move(config));
  server.start();
  const std::uint16_t port = server.port();
  server.stop();
  return port;
}

ServerConfig live_server_config(std::size_t workers = 2,
                                std::size_t capacity = 8,
                                std::uint16_t port = 0) {
  ServerConfig config;
  config.port = port;
  config.workers = workers;
  config.capacity = capacity;
  return config;
}

/// Health thresholds so large the initial sweep never changes a verdict:
/// these tests pin the retry layer, not the checker.
upa::dispatch::HealthConfig inert_health() {
  upa::dispatch::HealthConfig health;
  health.probe_interval_seconds = 30.0;
  health.probe_timeout_seconds = 0.2;
  health.unhealthy_threshold = 1000;
  health.healthy_threshold = 1;
  return health;
}

// --- Upstream pool -------------------------------------------------------

TEST(DispatchUpstream, ParsesAddressesAndLists) {
  const UpstreamAddress a =
      upa::dispatch::parse_upstream_address("127.0.0.1:7077");
  EXPECT_EQ(a.host, "127.0.0.1");
  EXPECT_EQ(a.port, 7077);
  EXPECT_EQ(a.label(), "127.0.0.1:7077");

  const std::vector<UpstreamAddress> list =
      upa::dispatch::parse_upstream_list("127.0.0.1:1,localhost:2,,h:3");
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[1].host, "localhost");
  EXPECT_EQ(list[2].port, 3);

  EXPECT_THROW((void)upa::dispatch::parse_upstream_address("noport"),
               ModelError);
  EXPECT_THROW((void)upa::dispatch::parse_upstream_address("h:0"),
               ModelError);
  EXPECT_THROW((void)upa::dispatch::parse_upstream_address("h:70000"),
               ModelError);
  EXPECT_THROW((void)upa::dispatch::parse_upstream_address("h:12x"),
               ModelError);
  EXPECT_THROW((void)upa::dispatch::parse_upstream_list(",,"), ModelError);
}

TEST(DispatchUpstream, CallCountersTrackOutcomes) {
  UpstreamPool pool({{"127.0.0.1", 1}, {"127.0.0.1", 2}});
  pool.begin_call(0);
  {
    std::vector<bool> healthy;
    std::vector<std::size_t> outstanding;
    pool.balancing_view(healthy, outstanding);
    EXPECT_EQ(outstanding[0], 1u);
    EXPECT_EQ(outstanding[1], 0u);
  }
  pool.end_call(0, AttemptOutcome::kOk, 0.25);
  pool.begin_call(0);
  pool.end_call(0, AttemptOutcome::kTransport, 0.5);
  pool.begin_call(1);
  pool.end_call(1, AttemptOutcome::kRejected, 0.125);

  const auto snap = pool.snapshot();
  EXPECT_EQ(snap[0].attempts, 2u);
  EXPECT_EQ(snap[0].ok, 1u);
  EXPECT_EQ(snap[0].transport, 1u);
  EXPECT_EQ(snap[0].outstanding, 0u);
  EXPECT_DOUBLE_EQ(snap[0].latency_sum_seconds, 0.75);
  EXPECT_EQ(snap[1].rejected, 1u);
}

TEST(DispatchUpstream, ProbeThresholdsEjectAndReadmit) {
  UpstreamPool pool({{"127.0.0.1", 1}});
  // Two consecutive failures required: the first does not flip.
  EXPECT_FALSE(pool.record_probe(0, false, 2, 2));
  EXPECT_TRUE(pool.healthy(0));
  EXPECT_TRUE(pool.record_probe(0, false, 2, 2));  // flipped: ejected
  EXPECT_FALSE(pool.healthy(0));
  // A lone success resets the failure streak but does not readmit yet.
  EXPECT_FALSE(pool.record_probe(0, true, 2, 2));
  EXPECT_FALSE(pool.healthy(0));
  EXPECT_TRUE(pool.record_probe(0, true, 2, 2));  // flipped: readmitted
  EXPECT_TRUE(pool.healthy(0));

  const auto snap = pool.snapshot();
  EXPECT_EQ(snap[0].probe_failures, 2u);
  EXPECT_EQ(snap[0].ejections, 1u);
  EXPECT_EQ(snap[0].readmissions, 1u);
}

// --- Balancer ------------------------------------------------------------

TEST(DispatchBalancer, ParsesPolicyNames) {
  EXPECT_EQ(upa::dispatch::parse_balance_policy("round-robin"),
            BalancePolicy::kRoundRobin);
  EXPECT_EQ(upa::dispatch::parse_balance_policy("least-outstanding"),
            BalancePolicy::kLeastOutstanding);
  EXPECT_EQ(upa::dispatch::parse_balance_policy("consistent-hash"),
            BalancePolicy::kConsistentHash);
  EXPECT_THROW((void)upa::dispatch::parse_balance_policy("random"),
               ModelError);
  EXPECT_EQ(upa::dispatch::balance_policy_name(BalancePolicy::kRoundRobin),
            "round-robin");
}

TEST(DispatchBalancer, RoundRobinCyclesThroughAllUpstreams) {
  UpstreamPool pool({{"h", 1}, {"h", 2}, {"h", 3}});
  Balancer balancer(pool, BalancePolicy::kRoundRobin);
  std::set<std::size_t> firsts;
  for (int i = 0; i < 3; ++i) {
    const auto order = balancer.pick("ignored");
    ASSERT_EQ(order.size(), 3u);
    firsts.insert(order.front());
  }
  EXPECT_EQ(firsts.size(), 3u);  // three picks, three distinct leaders
}

TEST(DispatchBalancer, LeastOutstandingPrefersIdleReplica) {
  UpstreamPool pool({{"h", 1}, {"h", 2}, {"h", 3}});
  Balancer balancer(pool, BalancePolicy::kLeastOutstanding);
  pool.begin_call(0);
  pool.begin_call(0);
  pool.begin_call(1);
  const auto order = balancer.pick("ignored");
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);  // idle
  EXPECT_EQ(order[1], 1u);  // one outstanding
  EXPECT_EQ(order[2], 0u);  // two outstanding
}

TEST(DispatchBalancer, UnhealthyUpstreamsSinkToTheBackButStayPresent) {
  UpstreamPool pool({{"h", 1}, {"h", 2}, {"h", 3}});
  Balancer balancer(pool, BalancePolicy::kRoundRobin);
  ASSERT_TRUE(pool.record_probe(1, false, 1, 1));  // eject index 1
  for (int i = 0; i < 4; ++i) {
    const auto order = balancer.pick("ignored");
    ASSERT_EQ(order.size(), 3u);             // fail open: nobody dropped
    EXPECT_EQ(order.back(), 1u);             // ejected replica last
    EXPECT_NE(order.front(), 1u);
  }
}

TEST(DispatchBalancer, ConsistentHashIsStablePerKeyAndCompleteOrder) {
  UpstreamPool pool({{"h", 1}, {"h", 2}, {"h", 3}, {"h", 4}});
  Balancer balancer(pool, BalancePolicy::kConsistentHash);
  const std::string key_a = "mmck_metrics|{\"lambda\": 1}";
  const auto order_a1 = balancer.pick(key_a);
  const auto order_a2 = balancer.pick(key_a);
  EXPECT_EQ(order_a1, order_a2);  // same key, same preference order

  // The order is a permutation of all upstreams.
  std::vector<std::size_t> sorted = order_a1;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::size_t>{0, 1, 2, 3}));

  // Different keys spread over different leaders.
  std::set<std::size_t> leaders;
  for (int i = 0; i < 64; ++i) {
    leaders.insert(balancer.pick("key-" + std::to_string(i)).front());
  }
  EXPECT_GT(leaders.size(), 1u);
}

TEST(DispatchBalancer, AffinityKeyIsMethodPlusParamsNotId) {
  const std::string a =
      R"({"id": 1, "method": "mmck_metrics", "params": {"lambda": 2}})";
  const std::string b =
      R"({"id": 99, "method": "mmck_metrics", "params": {"lambda": 2}})";
  const std::string c =
      R"({"id": 1, "method": "mmck_metrics", "params": {"lambda": 3}})";
  EXPECT_EQ(upa::dispatch::affinity_key(a), upa::dispatch::affinity_key(b));
  EXPECT_NE(upa::dispatch::affinity_key(a), upa::dispatch::affinity_key(c));
  // Unparseable lines still balance deterministically.
  EXPECT_EQ(upa::dispatch::affinity_key("{nope"), "{nope");
}

// --- Health checker ------------------------------------------------------

TEST(DispatchHealth, RejectsInvalidConfig) {
  upa::dispatch::HealthConfig bad;
  bad.probe_interval_seconds = 0.0;
  EXPECT_THROW(upa::dispatch::check_health_config(bad), ModelError);
  bad = {};
  bad.unhealthy_threshold = 0;
  EXPECT_THROW(upa::dispatch::check_health_config(bad), ModelError);
}

TEST(DispatchHealth, EjectsDeadUpstreamAndReadmitsAfterRestart) {
  const std::uint16_t dead_port = claim_dead_port();
  Server live(live_server_config());
  live.start();

  UpstreamPool pool(
      {{"127.0.0.1", dead_port}, {"127.0.0.1", live.port()}});
  upa::dispatch::HealthConfig config;
  config.probe_interval_seconds = 30.0;  // probe_all() drives the test
  config.probe_timeout_seconds = 0.5;
  config.unhealthy_threshold = 2;
  config.healthy_threshold = 1;
  upa::dispatch::HealthChecker checker(pool, config);

  checker.probe_all();
  EXPECT_TRUE(pool.healthy(0));  // one failure, threshold is two
  checker.probe_all();
  EXPECT_FALSE(pool.healthy(0));  // ejected
  EXPECT_TRUE(pool.healthy(1));   // live replica untouched

  // "Restart" the replica on the recorded port; one good probe readmits.
  Server revived(live_server_config(1, 4, dead_port));
  revived.start();
  checker.probe_all();
  EXPECT_TRUE(pool.healthy(0));
  const auto snap = pool.snapshot();
  EXPECT_EQ(snap[0].ejections, 1u);
  EXPECT_EQ(snap[0].readmissions, 1u);
  revived.stop();
  live.stop();
}

// --- Front: forwarding, byte identity, retries ---------------------------

TEST(DispatchFront, RejectsInvalidConfig) {
  FrontConfig config;  // no upstreams
  EXPECT_THROW(Front front(std::move(config)), ModelError);

  FrontConfig zero_budget;
  zero_budget.upstreams = {{"127.0.0.1", 1}};
  zero_budget.retry.max_attempts = 0;
  EXPECT_THROW(Front front(std::move(zero_budget)), ModelError);

  FrontConfig bad_jitter;
  bad_jitter.upstreams = {{"127.0.0.1", 1}};
  bad_jitter.retry.jitter = 1.5;
  EXPECT_THROW(Front front(std::move(bad_jitter)), ModelError);
}

TEST(DispatchFront, ResponsesAreByteIdenticalToDirectOnes) {
  Server server(live_server_config());
  server.start();

  FrontConfig config;
  config.upstreams = {{"127.0.0.1", server.port()}};
  config.workers = 2;
  config.health = inert_health();
  Front front(std::move(config));
  front.start();

  const std::vector<std::string> lines = {
      R"({"id": 1, "method": "ping"})",
      R"({"id": 2, "method": "mmck_metrics", "params": )"
      R"({"lambda": 150.0, "mu": 100.0, "servers": 3, "capacity": 6}})",
      R"({"id": 3, "method": "no_such_method"})",
      R"({"id": 4, "method": "steady_state"})",
      "{this is not json",
  };
  upa::serve::Client direct;
  direct.connect("127.0.0.1", server.port());
  upa::serve::Client fronted;
  fronted.connect("127.0.0.1", front.port());
  for (const std::string& line : lines) {
    EXPECT_EQ(fronted.call_line(line), direct.call_line(line))
        << "through-dispatcher bytes differ for: " << line;
  }
  direct.close();
  fronted.close();
  front.stop();
  server.stop();
}

TEST(DispatchFront, DispatchStatsIsServedLocally) {
  Server server(live_server_config());
  server.start();

  FrontConfig config;
  config.upstreams = {{"127.0.0.1", server.port()}};
  config.policy = BalancePolicy::kRoundRobin;
  config.workers = 2;
  config.health = inert_health();
  Front front(std::move(config));
  front.start();

  upa::serve::Client client;
  client.connect("127.0.0.1", front.port());
  (void)client.call("ping", upa::serve::Json());
  const upa::serve::CallResult stats =
      client.call("dispatch_stats", upa::serve::Json());
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.result()->find("policy")->as_string(), "round-robin");
  EXPECT_DOUBLE_EQ(stats.result()->find("upstream_count")->as_number(),
                   1.0);
  EXPECT_DOUBLE_EQ(stats.result()->find("forwarded_ok")->as_number(), 1.0);
  const upa::serve::Json* upstreams = stats.result()->find("upstreams");
  ASSERT_NE(upstreams, nullptr);
  EXPECT_EQ(upstreams->as_array().size(), 1u);
  client.close();

  EXPECT_EQ(front.stats().stats_served, 1u);
  // The upstream never saw the locally-served method.
  EXPECT_EQ(front.upstreams()[0].attempts, 1u);
  front.stop();
  server.stop();
}

TEST(DispatchFront, FailsOverToLiveReplicaAndCountsRequestOnceAsOk) {
  const std::uint16_t dead_port = claim_dead_port();
  Server live(live_server_config());
  live.start();

  FrontConfig config;
  // Round-robin over {dead, live}: about half of all requests hit the
  // dead replica first and must fail over.
  config.upstreams = {{"127.0.0.1", dead_port},
                      {"127.0.0.1", live.port()}};
  config.policy = BalancePolicy::kRoundRobin;
  config.workers = 2;
  config.retry.max_attempts = 3;
  config.retry.backoff_initial_seconds = 0.001;
  config.retry.backoff_max_seconds = 0.002;
  config.health = inert_health();  // keep the dead replica in rotation
  Front front(std::move(config));
  front.start();

  constexpr std::size_t kRequests = 10;
  upa::serve::Client client;
  client.connect("127.0.0.1", front.port());
  for (std::size_t i = 0; i < kRequests; ++i) {
    const upa::serve::CallResult r =
        client.call("ping", upa::serve::Json(), i);
    EXPECT_EQ(r.outcome, CallOutcome::kOk) << "request " << i;
  }
  client.close();

  // Outcome taxonomy: a retried-then-succeeded request is ok, exactly
  // once -- never double-counted, never surfaced as a transport error.
  const upa::dispatch::FrontStats stats = front.stats();
  EXPECT_EQ(stats.requests, kRequests);
  EXPECT_EQ(stats.forwarded_ok, kRequests);
  EXPECT_EQ(stats.forwarded_transport, 0u);
  EXPECT_EQ(stats.forwarded_rejected, 0u);
  EXPECT_GE(stats.retries, 1u);
  EXPECT_EQ(stats.retries, stats.failovers);  // every retry switched
  EXPECT_EQ(stats.retries_exhausted, 0u);

  const auto upstreams = front.upstreams();
  EXPECT_EQ(upstreams[0].transport, stats.retries);  // all on the corpse
  EXPECT_EQ(upstreams[1].ok, kRequests);
  front.stop();
  live.stop();
}

TEST(DispatchFront, ExhaustedBudgetYieldsRetriesExhaustedEnvelope) {
  const std::uint16_t dead_a = claim_dead_port();
  const std::uint16_t dead_b = claim_dead_port();

  FrontConfig config;
  config.upstreams = {{"127.0.0.1", dead_a}, {"127.0.0.1", dead_b}};
  config.workers = 1;
  config.retry.max_attempts = 3;
  config.retry.backoff_initial_seconds = 0.001;
  config.retry.backoff_max_seconds = 0.002;
  config.health = inert_health();
  Front front(std::move(config));
  front.start();

  const upa::dispatch::ForwardResult fr =
      front.forward_line(R"({"id": 7, "method": "ping"})");
  EXPECT_TRUE(fr.exhausted);
  EXPECT_EQ(fr.final_outcome, AttemptOutcome::kTransport);
  ASSERT_EQ(fr.attempts.size(), 3u);
  // The walk alternated replicas: budget > 1 implies a failover.
  EXPECT_NE(fr.attempts[0].upstream_index, fr.attempts[1].upstream_index);

  const upa::serve::CallResult classified =
      upa::serve::classify_response(fr.response_line);
  EXPECT_EQ(classified.outcome, CallOutcome::kRejected);  // 503, not
  EXPECT_EQ(classified.code, 503);                        // transport
  EXPECT_EQ(classified.error_message, "retries_exhausted");
  EXPECT_DOUBLE_EQ(classified.envelope.find("id")->as_number(), 7.0);
  const upa::serve::Json* attempts =
      classified.envelope.find("error")->find("attempts");
  ASSERT_NE(attempts, nullptr);
  ASSERT_EQ(attempts->as_array().size(), 3u);
  EXPECT_EQ(attempts->as_array()[0].find("outcome")->as_string(),
            "transport_error");
  EXPECT_EQ(front.stats().retries_exhausted, 1u);

  // Through a real connection the same exhaustion classifies as a
  // rejection -- never as a client-visible transport error.
  upa::serve::Client client;
  client.connect("127.0.0.1", front.port());
  const upa::serve::CallResult via_wire =
      client.call("ping", upa::serve::Json());
  EXPECT_EQ(via_wire.outcome, CallOutcome::kRejected);
  EXPECT_EQ(via_wire.code, 503);
  client.close();
  EXPECT_EQ(front.stats().retries_exhausted, 2u);
  EXPECT_EQ(front.stats().forwarded_rejected, 1u);
  EXPECT_EQ(front.stats().forwarded_transport, 0u);
  front.stop();
}

TEST(DispatchFront, PublishesPerUpstreamMetrics) {
  Server server(live_server_config());
  server.start();

  FrontConfig config;
  config.upstreams = {{"127.0.0.1", server.port()}};
  config.workers = 1;
  config.health = inert_health();
  Front front(std::move(config));
  front.start();
  upa::serve::Client client;
  client.connect("127.0.0.1", front.port());
  ASSERT_TRUE(client.call("ping", upa::serve::Json()).ok());
  client.close();

  upa::obs::MetricsRegistry metrics;
  front.publish_metrics(metrics);
  const std::string prefix =
      "dispatch.upstream.127.0.0.1:" + std::to_string(server.port());
  EXPECT_DOUBLE_EQ(metrics.gauges().at(prefix + ".attempts").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauges().at(prefix + ".ok").value(), 1.0);
  EXPECT_DOUBLE_EQ(metrics.gauges().at("dispatch.forwarded_ok").value(),
                   1.0);
  EXPECT_FALSE(metrics.histograms().empty());
  front.stop();
  server.stop();
}

// --- Kill schedules from FaultPlans --------------------------------------

TEST(DispatchFarmSchedule, MapsFaultPlanWindowsOntoReplicas) {
  upa::inject::FaultPlan plan;
  plan.add(upa::inject::FaultTarget::kWebFarm, 1.0, 0.5);
  plan.add(upa::inject::FaultTarget::kWebFarm, 3.0, 0.25);
  const auto kills =
      upa::dispatch::kill_schedule_from_fault_plan(plan, 2, 2.0);
  ASSERT_EQ(kills.size(), 2u);
  EXPECT_EQ(kills[0].replica, 0u);
  EXPECT_DOUBLE_EQ(kills[0].down_at_seconds, 2.0);
  EXPECT_DOUBLE_EQ(kills[0].up_at_seconds, 3.0);
  EXPECT_EQ(kills[1].replica, 1u);
  EXPECT_DOUBLE_EQ(kills[1].down_at_seconds, 6.0);
  EXPECT_DOUBLE_EQ(kills[1].up_at_seconds, 6.5);
}

TEST(DispatchFarmSchedule, RejectsOverlapsAndEmptyPlans) {
  upa::inject::FaultPlan empty;
  EXPECT_THROW(
      (void)upa::dispatch::kill_schedule_from_fault_plan(empty, 3, 1.0),
      ModelError);

  upa::inject::FaultPlan overlapping;
  overlapping.add(upa::inject::FaultTarget::kWebFarm, 1.0, 2.0);
  overlapping.add(upa::inject::FaultTarget::kWebFarm, 2.5, 2.0);
  // merged_windows coalesces touching windows into one; a single merged
  // window is a valid (single-kill) schedule, so craft a real overlap via
  // scaling is impossible -- instead assert the merged plan maps to one
  // kill covering the union.
  const auto kills = upa::dispatch::kill_schedule_from_fault_plan(
      overlapping, 3, 1.0);
  ASSERT_EQ(kills.size(), 1u);
  EXPECT_DOUBLE_EQ(kills[0].down_at_seconds, 1.0);
  EXPECT_DOUBLE_EQ(kills[0].up_at_seconds, 4.5);
}

// --- Live farm: kill -9 failover vs the composite model ------------------
// Not in the Dispatch* (TSan) suites: spawns real processes and measures
// a timed loss fraction.

// --- Distributed tracing through the front -------------------------------

namespace trace_helpers {

/// Root attribute lookups over the observer's span table.
std::string text_attr(const upa::obs::Span& span, const std::string& key) {
  for (const upa::obs::SpanAttribute& attr : span.attributes) {
    if (attr.key == key && !attr.is_number) return attr.text;
  }
  return "";
}

double number_attr(const upa::obs::Span& span, const std::string& key) {
  for (const upa::obs::SpanAttribute& attr : span.attributes) {
    if (attr.key == key && attr.is_number) return attr.number;
  }
  return -1.0;
}

}  // namespace trace_helpers

TEST(DispatchTrace, OriginatesTraceAndRecordsAttemptTaxonomy) {
  using trace_helpers::number_attr;
  using trace_helpers::text_attr;

  const std::uint16_t dead_port = claim_dead_port();
  Server live(live_server_config());
  live.start();

  upa::obs::Observer observer;
  FrontConfig config;
  // Round-robin over {dead, live}: about half of all requests must fail
  // over, giving every attempt-outcome pattern in one run.
  config.upstreams = {{"127.0.0.1", dead_port},
                      {"127.0.0.1", live.port()}};
  config.policy = BalancePolicy::kRoundRobin;
  config.workers = 2;
  config.retry.max_attempts = 3;
  config.retry.backoff_initial_seconds = 0.001;
  config.retry.backoff_max_seconds = 0.002;
  config.health = inert_health();
  config.obs = &observer;
  config.trace = true;
  Front front(std::move(config));
  front.start();

  constexpr std::size_t kRequests = 10;
  upa::serve::Client client;
  client.connect("127.0.0.1", front.port());
  for (std::size_t i = 0; i < kRequests; ++i) {
    // No trace member: the front originates a fresh context.
    ASSERT_EQ(client.call("ping", upa::serve::Json(), i).outcome,
              CallOutcome::kOk);
  }
  client.close();
  front.stop();
  live.stop();

  std::vector<const upa::obs::Span*> roots;
  std::map<upa::obs::SpanId, std::vector<const upa::obs::Span*>> children;
  std::set<double> refs;
  for (const upa::obs::Span& span : observer.tracer.spans()) {
    if (span.level == upa::obs::SpanLevel::kDispatchRequest) {
      roots.push_back(&span);
    } else if (span.level == upa::obs::SpanLevel::kDispatchAttempt) {
      children[span.parent].push_back(&span);
      EXPECT_TRUE(refs.insert(number_attr(span, "ref")).second)
          << "attempt span refs must be distinct";
    }
  }
  ASSERT_EQ(roots.size(), kRequests);
  EXPECT_EQ(observer.tracer.dropped(), 0u);

  std::set<std::string> trace_ids;
  bool saw_failover = false;
  for (const upa::obs::Span* root : roots) {
    EXPECT_EQ(root->name, "ping");
    EXPECT_EQ(text_attr(*root, "outcome"), "ok");
    EXPECT_TRUE(trace_ids.insert(text_attr(*root, "trace_id")).second)
        << "originated trace_ids must be distinct";
    // Originated context: the root itself is the trace root.
    EXPECT_EQ(number_attr(*root, "parent_span"), 0.0);
    const auto& attempts = children[root->id];
    ASSERT_FALSE(attempts.empty());
    EXPECT_EQ(number_attr(*root, "attempts"),
              static_cast<double>(attempts.size()));
    EXPECT_EQ(text_attr(*attempts.back(), "outcome"), "ok");
    if (attempts.size() == 2) {
      saw_failover = true;
      EXPECT_EQ(text_attr(*attempts.front(), "outcome"),
                "transport_error");
      EXPECT_NE(text_attr(*attempts.front(), "upstream"),
                text_attr(*attempts.back(), "upstream"));
    }
  }
  // Round-robin over a dead replica guarantees retried requests.
  EXPECT_TRUE(saw_failover);
}

TEST(DispatchTrace, AdoptedContextLinksFrontAndServerSpans) {
  using trace_helpers::number_attr;
  using trace_helpers::text_attr;

  upa::obs::Observer server_obs;
  ServerConfig server_config = live_server_config();
  server_config.obs = &server_obs;
  server_config.trace = true;
  Server server(std::move(server_config));
  server.start();

  upa::obs::Observer front_obs;
  FrontConfig config;
  config.upstreams = {{"127.0.0.1", server.port()}};
  config.health = inert_health();
  config.obs = &front_obs;
  config.trace = true;
  Front front(std::move(config));
  front.start();

  upa::serve::TraceContext context;
  context.trace_id = "00000000000000ab";
  context.span_id = 5;
  upa::serve::Client client;
  client.connect("127.0.0.1", front.port());
  ASSERT_TRUE(client.call("ping", upa::serve::Json(), 1, &context).ok());
  client.close();
  front.stop();
  server.stop();

  // The front adopted the client's context...
  const upa::obs::Span* root = nullptr;
  const upa::obs::Span* attempt = nullptr;
  for (const upa::obs::Span& span : front_obs.tracer.spans()) {
    if (span.level == upa::obs::SpanLevel::kDispatchRequest) root = &span;
    if (span.level == upa::obs::SpanLevel::kDispatchAttempt) {
      attempt = &span;
    }
  }
  ASSERT_NE(root, nullptr);
  ASSERT_NE(attempt, nullptr);
  EXPECT_EQ(text_attr(*root, "trace_id"), "00000000000000ab");
  EXPECT_EQ(number_attr(*root, "parent_span"), 5.0);

  // ...and the replica's serve_request span parents on exactly the
  // attempt's propagated reference: the cross-process linkage the
  // collector stitches on.
  const upa::obs::Span* server_root = nullptr;
  for (const upa::obs::Span& span : server_obs.tracer.spans()) {
    if (span.level == upa::obs::SpanLevel::kServeRequest) {
      server_root = &span;
    }
  }
  ASSERT_NE(server_root, nullptr);
  EXPECT_EQ(text_attr(*server_root, "trace_id"), "00000000000000ab");
  EXPECT_EQ(number_attr(*server_root, "parent_span"),
            number_attr(*attempt, "ref"));
}

TEST(DispatchTrace, MalformedTraceForwardsVerbatimAndRecordsNothing) {
  Server server(live_server_config());
  server.start();

  upa::obs::Observer observer;
  FrontConfig config;
  config.upstreams = {{"127.0.0.1", server.port()}};
  config.health = inert_health();
  config.obs = &observer;
  config.trace = true;
  Front front(std::move(config));
  front.start();

  const std::string bad =
      R"({"id": 3, "method": "ping", "trace": {"trace_id": "NOPE"}})";
  upa::serve::Client direct;
  direct.connect("127.0.0.1", server.port());
  upa::serve::Client fronted;
  fronted.connect("127.0.0.1", front.port());
  const std::string via_front = fronted.call_line(bad);
  // The upstream dispatcher's canonical 400, byte-identical to direct.
  EXPECT_EQ(via_front, direct.call_line(bad));
  EXPECT_NE(via_front.find("400"), std::string::npos);
  direct.close();
  fronted.close();
  front.stop();
  server.stop();

  // An unparseable context is not a trace: the front records no spans
  // for it rather than inventing linkage the collector would trip on.
  EXPECT_TRUE(observer.tracer.spans().empty());
}

TEST(FarmFailover, TracedRunAccountsEverySpan) {
  // A traced farm run must account for every request the loadgen issued:
  // one dispatch_request root per request, attempt children matching
  // each root's declared count, zero dropped spans, and a one-to-one
  // trace_id match against the loadgen's own request log. Admission
  // rejections (503) under a = 2 erlangs make the taxonomy nontrivial.
  upa::dispatch::FarmExperimentConfig config;
  config.replica.served_binary = UPA_SERVED_BINARY;
  config.replica.workers = 1;
  config.replica.capacity = 3;
  config.replicas = 3;
  config.policy = BalancePolicy::kLeastOutstanding;
  config.retry.max_attempts = 3;
  config.lambda = 40.0;
  config.nu = 20.0;
  config.requests = 120;  // ~3 s of open-loop load
  config.seed = 11;
  config.call_timeout_seconds = 5.0;
  config.health = inert_health();
  config.trace = true;

  const upa::dispatch::FarmExperimentResult r =
      upa::dispatch::run_farm_experiment(config);

  EXPECT_EQ(r.loss.sent, config.requests);
  EXPECT_EQ(r.loss.transport_errors, 0u);
  ASSERT_EQ(r.loss.request_log.size(), config.requests);
  EXPECT_TRUE(r.trace_accounted) << r.trace_accounting_error;
  EXPECT_EQ(r.traced_requests, config.requests);
  EXPECT_GE(r.traced_attempts, r.traced_requests);
  EXPECT_EQ(r.trace_dropped_spans, 0u);
}

TEST(FarmFailover, KillNineMidRunStaysWithinCompositePrediction) {
  upa::dispatch::FarmExperimentConfig config;
  config.replica.served_binary = UPA_SERVED_BINARY;
  config.replica.workers = 1;   // per-replica i
  config.replica.capacity = 3;  // per-replica K_r
  config.replicas = 3;          // the paper's N_W
  config.policy = BalancePolicy::kLeastOutstanding;
  config.retry.max_attempts = 3;
  // ~100 ms mean services at a = 2 erlangs: slow services keep the
  // container's scheduling overhead a rounding error against the
  // modeled service time, and moderate utilization keeps the pooled
  // composite idealization close to the per-replica-blocking reality.
  config.lambda = 20.0;
  config.nu = 10.0;
  config.requests = 500;  // ~25 s of open-loop load
  config.seed = 1;
  config.call_timeout_seconds = 5.0;
  config.health.probe_interval_seconds = 0.25;
  config.health.unhealthy_threshold = 1;  // detection delay d = 0.25 s
  config.health.healthy_threshold = 1;

  // One uncovered failure driven through the FaultPlan machinery:
  // replica 0 is SIGKILLed at t=6.0 s and restarted at t=9.5 s.
  upa::inject::FaultPlan plan;
  plan.add(upa::inject::FaultTarget::kWebFarm, 6.0 / 3600.0, 3.5 / 3600.0);
  config.kills = upa::dispatch::kill_schedule_from_fault_plan(
      plan, config.replicas, 3600.0);

  const upa::dispatch::FarmExperimentResult r =
      upa::dispatch::run_farm_experiment(config);

  EXPECT_EQ(r.kills_executed, 1u);
  EXPECT_GT(r.total_down_seconds, 0.0);
  EXPECT_GT(r.coverage, 0.0);
  EXPECT_LT(r.coverage, 1.0);  // the probe delay is real

  // Budgeted retries must fully mask the kill: zero client-visible
  // transport errors.
  EXPECT_EQ(r.loss.transport_errors, 0u);
  EXPECT_EQ(r.loss.sent, config.requests);
  // The front did real failover work while replica 0 was down.
  EXPECT_GE(r.front.retries, 1u);
  EXPECT_EQ(r.front.forwarded_transport, 0u);

  // The measured farm-level rejection+failure fraction sits within
  // 4 sigma (+ scheduling allowance) of the imperfect-coverage
  // composite prediction -- and the prediction itself is nontrivial.
  EXPECT_GT(r.predicted_loss_imperfect, 0.02);
  EXPECT_LT(r.predicted_loss_imperfect, 0.3);
  EXPECT_TRUE(r.within_tolerance)
      << "measured=" << r.measured_loss_fraction
      << " predicted_imperfect=" << r.predicted_loss_imperfect
      << " predicted_perfect=" << r.predicted_loss_perfect
      << " tolerance=" << r.tolerance;
  // Imperfect coverage must matter: with c < 1 the imperfect prediction
  // exceeds the perfect one (manual states lose more).
  EXPECT_GT(r.predicted_loss_imperfect, r.predicted_loss_perfect);
}

TEST(FarmFailover, WarmTransferRewarmsTheRestartedReplica) {
  // The persistent-cache satellite of the kill-9 experiment: replica 1
  // (outside the kill schedule) is pre-warmed with distinct design
  // points; after replica 0's restart the orchestrator ships the peer's
  // cache over the wire (`cache export` -> `cache import`); the re-
  // issued design points must then HIT on the restarted process -- a
  // warm restart instead of PR 6's cold one.
  upa::dispatch::FarmExperimentConfig config;
  config.replica.served_binary = UPA_SERVED_BINARY;
  config.replica.workers = 1;
  config.replica.capacity = 3;
  config.replicas = 3;
  config.policy = BalancePolicy::kLeastOutstanding;
  config.retry.max_attempts = 3;
  config.lambda = 20.0;
  config.nu = 10.0;
  config.requests = 200;  // ~10 s of open-loop load
  config.seed = 5;
  config.call_timeout_seconds = 5.0;
  config.health.probe_interval_seconds = 0.25;
  config.health.unhealthy_threshold = 1;
  config.health.healthy_threshold = 1;
  config.kills.push_back({0, 3.0, 5.5});
  config.warm_transfer = true;
  config.warm_points = 8;

  const upa::dispatch::FarmExperimentResult r =
      upa::dispatch::run_farm_experiment(config);

  EXPECT_EQ(r.kills_executed, 1u);
  EXPECT_TRUE(r.warm_transfer_ok) << r.warm_transfer_error;
  EXPECT_EQ(r.warm_peer, 1u);  // first replica outside the kill set
  EXPECT_EQ(r.warm_points_computed, config.warm_points);
  // Every pre-warmed point crossed the wire and seeded the restarted
  // replica, and re-issuing the points afterwards replayed them.
  EXPECT_GE(r.warm_export_records, config.warm_points);
  EXPECT_GE(r.warm_import_records, config.warm_points);
  EXPECT_GE(r.warmed_hits, config.warm_points);
  // The workload itself still rode the retry layer cleanly.
  EXPECT_EQ(r.loss.transport_errors, 0u);
}

TEST(FarmFailover, AntiEntropyConvergesWithoutOrchestratorTransfers) {
  // The gossip variant of the warm restart: the killed replica comes
  // back with --peers/--anti-entropy-ms, diffs digests against a
  // sibling, and pulls ONLY its missing records itself. The
  // orchestrator must never ship a blob (`cache export`/`import`) --
  // its transfer counter stays zero while the replica still ends up
  // warm enough to replay every pre-warmed design point as a hit.
  upa::dispatch::FarmExperimentConfig config;
  config.replica.served_binary = UPA_SERVED_BINARY;
  config.replica.workers = 1;
  config.replica.capacity = 3;
  config.replicas = 3;
  config.policy = BalancePolicy::kLeastOutstanding;
  config.retry.max_attempts = 3;
  config.lambda = 20.0;
  config.nu = 10.0;
  config.requests = 200;  // ~10 s of open-loop load
  config.seed = 7;
  config.call_timeout_seconds = 5.0;
  config.health.probe_interval_seconds = 0.25;
  config.health.unhealthy_threshold = 1;
  config.health.healthy_threshold = 1;
  config.kills.push_back({0, 3.0, 5.5});
  config.warm_transfer = true;
  config.warm_points = 8;
  config.anti_entropy_ms = 100;

  const upa::dispatch::FarmExperimentResult r =
      upa::dispatch::run_farm_experiment(config);

  EXPECT_EQ(r.kills_executed, 1u);
  EXPECT_TRUE(r.anti_entropy_ok) << r.warm_transfer_error;
  EXPECT_TRUE(r.warm_transfer_ok) << r.warm_transfer_error;
  // The replica gossiped at least one round and pulled the warm set
  // itself; the orchestrator shipped nothing.
  EXPECT_GE(r.anti_entropy_rounds, 1u);
  EXPECT_GE(r.anti_entropy_records_pulled, config.warm_points);
  EXPECT_EQ(r.orchestrator_transfers, 0u);
  EXPECT_GE(r.warmed_hits, config.warm_points);
  EXPECT_EQ(r.loss.transport_errors, 0u);
}

TEST(FarmFailover, NoFaultInjectionMeansByteIdenticalAndPooledLoss) {
  // Fault injection disabled: the farm is just a pooled M/M/(N*i)/(N*K)
  // queue behind the front, and responses stay byte-identical to direct
  // ones (pinned against one replica spawned by the orchestrator).
  upa::dispatch::ReplicaConfig replica;
  replica.served_binary = UPA_SERVED_BINARY;
  // Two workers per replica: the direct keep-alive connection pins one
  // worker for its whole lifetime, and forwarded attempts need another.
  replica.workers = 2;
  replica.capacity = 4;
  upa::dispatch::FarmOrchestrator farm(replica, 2);
  farm.start_all();
  ASSERT_EQ(farm.size(), 2u);
  EXPECT_TRUE(farm.alive(0));
  EXPECT_TRUE(farm.alive(1));

  FrontConfig config;
  config.upstreams = farm.addresses();
  config.workers = 2;
  config.health = inert_health();
  Front front(std::move(config));
  front.start();

  upa::serve::Client direct;
  direct.connect("127.0.0.1", farm.addresses()[0].port);
  upa::serve::Client fronted;
  fronted.connect("127.0.0.1", front.port());
  const std::vector<std::string> lines = {
      R"({"id": 1, "method": "ping"})",
      R"({"id": 2, "method": "steady_state"})",
      "{still not json",
  };
  for (const std::string& line : lines) {
    EXPECT_EQ(fronted.call_line(line), direct.call_line(line));
  }
  direct.close();
  fronted.close();
  front.stop();
  farm.stop_all();
  EXPECT_FALSE(farm.alive(0));
}

}  // namespace
