// Capacity planning (the paper's Section 5.1 use case): how many web
// servers does a provider need to hit an availability target, given the
// expected request rate and the quality of its fault handling?
//
//   $ ./capacity_planning
//
// Demonstrates: composite performance-availability models, threshold
// search, and why imperfect coverage makes "just add servers" wrong.

#include <iostream>
#include <optional>

#include "upa/common/table.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/sensitivity/threshold.hpp"

namespace {

namespace uc = upa::core;
namespace us = upa::sensitivity;
namespace cm = upa::common;

double farm_unavailability(std::size_t servers, double lambda, double alpha,
                           double coverage) {
  uc::WebFarmParams farm;
  farm.servers = servers;
  farm.failure_rate = lambda;   // per hour
  farm.repair_rate = 1.0;       // per hour
  farm.coverage = coverage;
  farm.reconfiguration_rate = 12.0;  // 5 min mean manual reconfiguration
  uc::WebQueueParams queue;
  queue.arrival_rate = alpha;  // per second
  queue.service_rate = 100.0;
  queue.buffer = 10;
  return coverage < 1.0
             ? 1.0 - uc::web_service_availability_imperfect(farm, queue)
             : 1.0 - uc::web_service_availability_perfect(farm, queue);
}

}  // namespace

int main() {
  // Availability target: at most 5 minutes of downtime per year.
  const double target_ua =
      1.0 - us::availability_for_downtime_minutes_per_year(5.0);
  std::cout << "Target: <= 5 min downtime/year (UA < "
            << cm::fmt_sci(target_ua, 2) << ")\n\n";

  cm::Table t({"failure rate [1/h]", "arrival rate [req/s]", "coverage",
               "min servers", "feasible set (1..10)"});
  for (double lambda : {1e-2, 1e-3, 1e-4}) {
    for (double alpha : {50.0, 100.0, 150.0}) {
      for (double coverage : {0.98, 1.0}) {
        const auto region = us::satisfying_set(1, 10, [&](std::size_t n) {
          return farm_unavailability(n, lambda, alpha, coverage) < target_ua;
        });
        std::string set;
        for (std::size_t i = 0; i < region.size(); ++i) {
          if (i != 0) set += ",";
          set += std::to_string(region[i]);
        }
        t.add_row({cm::fmt_sci(lambda, 0), cm::fmt(alpha, 3),
                   cm::fmt(coverage, 3),
                   region.empty() ? "infeasible"
                                  : std::to_string(region.front()),
                   region.empty() ? "-" : set});
      }
    }
  }
  std::cout << t << "\n";

  std::cout
      << "Reading the table:\n"
      << " * With perfect coverage, adding servers always helps -- the\n"
      << "   feasible set is an up-closed interval.\n"
      << " * With 98% coverage, every extra server adds uncovered-failure\n"
      << "   exposure: feasible sets close from above (e.g. lambda=1e-3,\n"
      << "   alpha=100 is feasible ONLY with exactly 5 servers).\n"
      << " * At lambda=1e-2/h no farm size in 1..10 meets the target:\n"
      << "   invest in component reliability, not replication.\n";
  return 0;
}
