#include "upa/sim/engine.hpp"

#include <cmath>
#include <limits>

#include "upa/common/error.hpp"
#include "upa/obs/observer.hpp"

namespace upa::sim {

EventId Engine::schedule_at(double at, std::function<void()> handler) {
  UPA_REQUIRE(std::isfinite(at) && at >= now_,
              "events must be scheduled at or after the current time");
  UPA_REQUIRE(handler != nullptr, "event handler must be callable");
  const EventId id = next_id_++;
  calendar_.push({at, id});
  if (calendar_.size() > max_depth_) max_depth_ = calendar_.size();
  handlers_.emplace(id, std::move(handler));
  return id;
}

EventId Engine::schedule_in(double delay, std::function<void()> handler) {
  UPA_REQUIRE(std::isfinite(delay) && delay >= 0.0,
              "delay must be non-negative");
  return schedule_at(now_ + delay, std::move(handler));
}

bool Engine::cancel(EventId id) { return handlers_.erase(id) > 0; }

void Engine::record_batch(double batch_start, std::uint64_t processed_before,
                          double wall_start) {
  const double wall_seconds = obs_->tracer.wall_now() - wall_start;
  const auto events = processed_ - processed_before;
  const obs::SpanId span = obs_->tracer.begin(
      obs::SpanLevel::kSimEventBatch, "sim_event_batch", batch_start);
  obs_->tracer.end(span, now_);
  obs_->tracer.attr(span, "events", static_cast<double>(events));
  obs_->tracer.attr(span, "wall_seconds", wall_seconds);
  obs_->tracer.attr(span, "calendar_depth_max",
                    static_cast<double>(max_depth_));
  if (wall_seconds > 0.0) {
    obs_->tracer.attr(span, "virtual_hours_per_wall_second",
                      (now_ - batch_start) / wall_seconds);
  }
  obs_->metrics.counter("sim.events_processed").add(events);
  obs_->metrics.counter("sim.batches").add();
  obs_->metrics.gauge("sim.calendar_depth_max")
      .max_with(static_cast<double>(max_depth_));
}

void Engine::run_until(double horizon) {
  UPA_REQUIRE(std::isfinite(horizon) && horizon >= now_,
              "horizon must be at or after the current time");
  const double batch_start = now_;
  const std::uint64_t processed_before = processed_;
  const double wall_start = obs_ ? obs_->tracer.wall_now() : 0.0;
  while (!calendar_.empty()) {
    const Entry entry = calendar_.top();
    if (entry.time > horizon) break;
    calendar_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;  // cancelled
    now_ = entry.time;
    std::function<void()> handler = std::move(it->second);
    handlers_.erase(it);
    ++processed_;
    handler();
  }
  now_ = horizon;
  if (obs_ != nullptr) record_batch(batch_start, processed_before, wall_start);
}

void Engine::run_all() {
  const double batch_start = now_;
  const std::uint64_t processed_before = processed_;
  const double wall_start = obs_ ? obs_->tracer.wall_now() : 0.0;
  while (!calendar_.empty()) {
    const Entry entry = calendar_.top();
    calendar_.pop();
    const auto it = handlers_.find(entry.id);
    if (it == handlers_.end()) continue;
    now_ = entry.time;
    std::function<void()> handler = std::move(it->second);
    handlers_.erase(it);
    ++processed_;
    handler();
  }
  if (obs_ != nullptr) record_batch(batch_start, processed_before, wall_start);
}

std::size_t Engine::pending_count() const noexcept {
  return handlers_.size();
}

}  // namespace upa::sim
