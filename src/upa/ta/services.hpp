#pragma once
// Service-level availabilities of the travel agency (paper Tables 3-5).
// External services are black boxes replicated N times; internal services
// depend on the chosen architecture; the web service is the composite
// performance-availability model from core/web_farm.

#include "upa/core/web_farm.hpp"
#include "upa/ta/params.hpp"

namespace upa::ta {

/// Availabilities of every service the functions consume.
struct ServiceAvailabilities {
  double net = 0.0;
  double lan = 0.0;
  double web = 0.0;
  double application = 0.0;
  double database = 0.0;
  double flight = 0.0;
  double hotel = 0.0;
  double car = 0.0;
  double payment = 0.0;
};

/// Table 3: A = 1 - (1 - a)^N for each external reservation service.
[[nodiscard]] double external_service_availability(double per_system,
                                                   std::size_t systems);

[[nodiscard]] double flight_availability(const TaParameters& p);
[[nodiscard]] double hotel_availability(const TaParameters& p);
[[nodiscard]] double car_availability(const TaParameters& p);

/// Table 4. Basic: A(C_AS); redundant: 1 - (1 - A(C_AS))^2. (The paper
/// prints "1 - 2(1-A)", which is below a single component's availability;
/// we implement the parallel-pair formula — see DESIGN.md.)
[[nodiscard]] double application_service_availability(const TaParameters& p);

/// Table 4. Basic: A(C_DS) A(Disk); redundant:
/// [1-(1-A(C_DS))^2][1-(1-A(Disk))^2] (duplicated servers + mirrored
/// disks).
[[nodiscard]] double database_service_availability(const TaParameters& p);

/// Table 5: web service availability for the configured architecture and
/// coverage model. Basic architecture = one server (eq. 2); redundant =
/// eq. 5 (perfect) or corrected eq. 9 (imperfect).
[[nodiscard]] double web_service_availability(const TaParameters& p);

/// Web farm / queue parameter adapters for the core models.
[[nodiscard]] core::WebFarmParams web_farm_params(const TaParameters& p);
[[nodiscard]] core::WebQueueParams web_queue_params(const TaParameters& p);

/// Everything at once (one validated pass).
[[nodiscard]] ServiceAvailabilities compute_services(const TaParameters& p);

}  // namespace upa::ta
