#pragma once
// Sampling distributions for the discrete-event simulator. A small closed
// set (variant) rather than virtual dispatch: values are copyable, cheap,
// and exhaustively testable.

#include <variant>
#include <vector>

#include "upa/sim/rng.hpp"

namespace upa::sim {

/// Exponential(rate): mean 1/rate.
struct Exponential {
  double rate;
};

/// Always returns `value` (degenerate distribution).
struct Deterministic {
  double value;
};

/// Uniform(low, high).
struct UniformReal {
  double low;
  double high;
};

/// Erlang(k, rate): sum of k Exponential(rate) phases; mean k/rate.
struct Erlang {
  unsigned k;
  double rate;
};

/// Two-phase hyperexponential: Exponential(rate1) w.p. p, else
/// Exponential(rate2). Coefficient of variation > 1.
struct HyperExponential {
  double p;
  double rate1;
  double rate2;
};

/// Lognormal with the underlying normal's mu/sigma.
struct LogNormal {
  double mu;
  double sigma;
};

using Distribution = std::variant<Exponential, Deterministic, UniformReal,
                                  Erlang, HyperExponential, LogNormal>;

/// Validates parameters; throws ModelError on invalid ones.
void validate(const Distribution& d);

/// Draws one sample.
[[nodiscard]] double sample(const Distribution& d, Xoshiro256& rng);

/// Analytic mean of the distribution.
[[nodiscard]] double mean(const Distribution& d);

/// Analytic variance of the distribution.
[[nodiscard]] double variance(const Distribution& d);

}  // namespace upa::sim
