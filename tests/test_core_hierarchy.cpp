// Tests for the four-level hierarchical framework: service catalog,
// function models over execution paths, and user-level joint availability
// with shared-service dependence.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/core/hierarchy.hpp"
#include "upa/core/performability.hpp"

namespace uc = upa::core;
namespace up = upa::profile;
using upa::common::ModelError;

TEST(ServiceCatalog, AddLookupUpdate) {
  uc::ServiceCatalog catalog;
  const auto web = catalog.add("web", 0.99);
  const auto db = catalog.add("db", 0.95);
  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_EQ(catalog.name(web), "web");
  EXPECT_DOUBLE_EQ(catalog.availability(db), 0.95);
  EXPECT_EQ(catalog.id_of("db"), db);
  catalog.set_availability(db, 0.97);
  EXPECT_DOUBLE_EQ(catalog.availability(db), 0.97);
  EXPECT_THROW((void)catalog.id_of("nope"), ModelError);
  EXPECT_THROW((void)catalog.add("web", 0.5), ModelError);
}

TEST(FunctionModel, AllOfIsProductOfAvailabilities) {
  uc::ServiceCatalog catalog;
  const auto a = catalog.add("a", 0.9);
  const auto b = catalog.add("b", 0.8);
  const auto f = uc::FunctionModel::all_of("F", {a, b});
  EXPECT_NEAR(f.availability(catalog), 0.72, 1e-12);
}

TEST(FunctionModel, MixtureOfPathsMatchesBrowseFormula) {
  // Browse-like: q1 needs {ws}, q2 needs {ws, as}, q3 needs {ws, as, ds}.
  uc::ServiceCatalog catalog;
  const auto ws = catalog.add("ws", 0.99);
  const auto as = catalog.add("as", 0.95);
  const auto ds = catalog.add("ds", 0.90);
  const uc::FunctionModel browse(
      "Browse", {uc::ExecutionPath{0.2, {ws}},
                 uc::ExecutionPath{0.32, {ws, as}},
                 uc::ExecutionPath{0.48, {ws, as, ds}}});
  const double expected =
      0.99 * (0.2 + 0.95 * (0.32 + 0.48 * 0.90));
  EXPECT_NEAR(browse.availability(catalog), expected, 1e-12);
}

TEST(FunctionModel, PathProbabilitiesMustSumToOne) {
  uc::ServiceCatalog catalog;
  const auto a = catalog.add("a", 0.9);
  EXPECT_THROW(uc::FunctionModel("bad", {uc::ExecutionPath{0.5, {a}}}),
               ModelError);
}

TEST(FunctionModel, SuccessGivenStates) {
  uc::ServiceCatalog catalog;
  const auto a = catalog.add("a", 0.9);
  const auto b = catalog.add("b", 0.9);
  const uc::FunctionModel f(
      "F", {uc::ExecutionPath{0.6, {a}}, uc::ExecutionPath{0.4, {a, b}}});
  EXPECT_DOUBLE_EQ(f.success_given({true, true}), 1.0);
  EXPECT_DOUBLE_EQ(f.success_given({true, false}), 0.6);
  EXPECT_DOUBLE_EQ(f.success_given({false, true}), 0.0);
}

TEST(FunctionModel, InvolvedServicesDeduplicated) {
  uc::ServiceCatalog catalog;
  const auto a = catalog.add("a", 0.9);
  const auto b = catalog.add("b", 0.9);
  const uc::FunctionModel f(
      "F", {uc::ExecutionPath{0.5, {a, b}}, uc::ExecutionPath{0.5, {b}}});
  EXPECT_EQ(f.involved_services().size(), 2u);
}

namespace {

/// Two functions sharing service "shared"; scenario invokes both.
uc::UserLevelModel shared_service_model(double a_shared, double a_own1,
                                        double a_own2) {
  uc::ServiceCatalog catalog;
  const auto shared = catalog.add("shared", a_shared);
  const auto own1 = catalog.add("own1", a_own1);
  const auto own2 = catalog.add("own2", a_own2);
  std::vector<uc::FunctionModel> functions;
  functions.push_back(uc::FunctionModel::all_of("F", {shared, own1}));
  functions.push_back(uc::FunctionModel::all_of("G", {shared, own2}));
  up::ScenarioSet scenarios({"F", "G"});
  scenarios.add("St-F-Ex", {0}, 0.3);
  scenarios.add("St-G-Ex", {1}, 0.3);
  scenarios.add("St-F-G-Ex", {0, 1}, 0.4);
  return uc::UserLevelModel(std::move(catalog), std::move(functions),
                            std::move(scenarios));
}

}  // namespace

TEST(UserLevel, SharedServiceCountedOnce) {
  const auto model = shared_service_model(0.9, 0.8, 0.7);
  // Joint(F, G) = a_shared * a_own1 * a_own2, NOT a_shared^2 * ...
  EXPECT_NEAR(model.joint_success({0, 1}), 0.9 * 0.8 * 0.7, 1e-12);
  EXPECT_NEAR(model.joint_success({0}), 0.9 * 0.8, 1e-12);
}

TEST(UserLevel, UserAvailabilityIsScenarioWeighted) {
  const auto model = shared_service_model(0.9, 0.8, 0.7);
  const double expected = 0.3 * (0.9 * 0.8) + 0.3 * (0.9 * 0.7) +
                          0.4 * (0.9 * 0.8 * 0.7);
  EXPECT_NEAR(model.user_availability(), expected, 1e-12);
}

TEST(UserLevel, UnavailabilityContributionsSumToComplement) {
  const auto model = shared_service_model(0.95, 0.9, 0.85);
  const auto contributions = model.unavailability_contributions();
  double total = 0.0;
  for (double c : contributions) total += c;
  EXPECT_NEAR(total, 1.0 - model.user_availability(), 1e-12);
}

TEST(UserLevel, FunctionNameMismatchRejected) {
  uc::ServiceCatalog catalog;
  const auto s = catalog.add("s", 0.9);
  std::vector<uc::FunctionModel> functions;
  functions.push_back(uc::FunctionModel::all_of("WrongName", {s}));
  up::ScenarioSet scenarios({"F"});
  scenarios.add("St-F-Ex", {0}, 1.0);
  EXPECT_THROW(uc::UserLevelModel(std::move(catalog), std::move(functions),
                                  std::move(scenarios)),
               ModelError);
}

TEST(UserLevel, MixturePathsInteractExactly) {
  // F is a mixture over {s1} and {s1, s2}; G requires {s2}. In a joint
  // scenario the s2-dependence of F and G is correlated through s2.
  uc::ServiceCatalog catalog;
  const auto s1 = catalog.add("s1", 0.9);
  const auto s2 = catalog.add("s2", 0.5);
  std::vector<uc::FunctionModel> functions;
  functions.push_back(uc::FunctionModel(
      "F", {uc::ExecutionPath{0.5, {s1}}, uc::ExecutionPath{0.5, {s1, s2}}}));
  functions.push_back(uc::FunctionModel::all_of("G", {s2}));
  up::ScenarioSet scenarios({"F", "G"});
  scenarios.add("St-F-G-Ex", {0, 1}, 1.0);
  const uc::UserLevelModel model(std::move(catalog), std::move(functions),
                                 std::move(scenarios));
  // Exact: E[F G] = P(s1 up) * P(s2 up) * 1 (given s2 up, F succeeds w.p.
  // 1 since both paths work) = 0.9 * 0.5. Naive independent-product would
  // give A(F) * A(G) = 0.9*0.75 * 0.5 = 0.3375.
  EXPECT_NEAR(model.user_availability(), 0.45, 1e-12);
  EXPECT_NEAR(model.function(0).availability(model.catalog()), 0.675,
              1e-12);
}

TEST(Performability, BreakdownSumsCorrectly) {
  upa::markov::Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 1.0);
  chain.add_rate(2, 0, 1.0);
  const uc::CompositeAvailabilityModel model(std::move(chain),
                                             {1.0, 0.5, 0.0});
  const auto b = model.breakdown();
  EXPECT_NEAR(b.availability, model.availability(), 1e-12);
  EXPECT_NEAR(b.availability + b.performance_loss + b.downtime_loss, 1.0,
              1e-12);
  // Uniform steady state by symmetry: availability = (1 + 0.5)/3.
  EXPECT_NEAR(model.availability(), 0.5, 1e-12);
}

TEST(Performability, RejectsBadRewards) {
  upa::markov::Ctmc chain = upa::markov::two_state_availability(1.0, 1.0);
  EXPECT_THROW(
      uc::CompositeAvailabilityModel(std::move(chain), {1.0, 1.5}),
      ModelError);
}

TEST(Performability, TimescaleSeparation) {
  upa::markov::Ctmc chain = upa::markov::two_state_availability(1e-4, 1.0);
  EXPECT_NEAR(uc::timescale_separation_ratio(chain, 3.6e5), 1.0 / 3.6e5,
              1e-12);
  EXPECT_THROW((void)uc::timescale_separation_ratio(chain, 0.0), ModelError);
}
