// upa_ctl: closed-loop admission controller for a running upa_served.
//
// Attaches to the daemon's telemetry `subscribe` stream, estimates the
// offered load (lambda-hat), per-server service rate (nu-hat), and
// measured loss online, searches the analytic M/M/i/K loss surface for
// the smallest (workers, capacity) meeting --target-loss, and applies
// accepted plans through the server's `reconfigure` RPC. Runs until
// SIGINT/SIGTERM (or --duration), printing one status line per
// --status-every interval and a final decision summary.
//
// See docs/modeling-guide.md ("Closed-loop control") for the estimator
// and hysteresis math; upa_loadgen --mode control runs the same loop
// against scripted diurnal/flash/outage workloads and gates it.

#include <csignal>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "upa/cli/args.hpp"
#include "upa/common/error.hpp"
#include "upa/control/controller.hpp"

namespace {

volatile std::sig_atomic_t g_stop_requested = 0;

void on_signal(int) { g_stop_requested = 1; }

void print_usage(std::ostream& os) {
  os << "usage: upa_ctl --port N [options]\n"
        "\n"
        "Model-predictive admission control for a live upa_served: the\n"
        "measured arrival/service rates drive a search of the analytic\n"
        "M/M/i/K loss surface, and the smallest (i, K) meeting the loss\n"
        "SLO is applied through the server's `reconfigure` RPC. Grow\n"
        "decisions apply almost immediately; shrink proposals must stand\n"
        "for a cooldown before they trim the pool.\n"
        "\n"
        "options:\n"
        "  --host ADDR            server address     (default 127.0.0.1)\n"
        "  --port N               server port        (required)\n"
        "  --target-loss P        loss SLO in (0,1)  (default 0.08)\n"
        "  --min-workers N        search floor for i (default 1)\n"
        "  --max-workers N        search cap for i   (default 8)\n"
        "  --max-capacity N       search cap for K   (default 64)\n"
        "  --headroom F           plan for F*lambda-hat (default 1.3)\n"
        "  --sizing-fraction F    plan to F*SLO      (default 0.5)\n"
        "  --tick-ms N            telemetry tick     (default 250)\n"
        "  --window-ms N          estimator window   (default 2000)\n"
        "  --grow-cooldown-ms N   min gap before a grow (default 750)\n"
        "  --shrink-cooldown-ms N shrink stability bar  (default 6000)\n"
        "  --duration S           exit after S seconds, 0 = until signal\n"
        "                         (default 0)\n"
        "  --status-every S       status-line interval  (default 2)\n"
        "  --connect-retries N    attempts to reach the server before\n"
        "                         giving up (default 20, 250 ms apart)\n"
        "  --help                 this text\n";
}

const std::vector<std::string> kAllowedOptions = {
    "host",          "port",           "target-loss",
    "min-workers",   "max-workers",    "max-capacity",
    "headroom",      "sizing-fraction", "tick-ms",
    "window-ms",     "grow-cooldown-ms", "shrink-cooldown-ms",
    "duration",      "status-every",   "connect-retries",
};

void print_status(const upa::control::ControllerStats& s) {
  std::cout << "upa_ctl: ticks=" << s.ticks << " lambda=" << s.lambda
            << " nu=" << s.nu << " loss=" << s.loss << " i=" << s.workers
            << " K=" << s.capacity << " applies=" << s.applies
            << " retries=" << s.apply_retries
            << " failures=" << s.apply_failures
            << (s.connected ? "" : " [disconnected]") << std::endl;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  cli::Args args(argc, argv);
  if (args.has("help") || args.command() == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (!args.command().empty()) {
    std::cerr << "upa_ctl: unexpected positional argument '"
              << args.command() << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unknown =
      cli::unknown_options(args, kAllowedOptions);
  if (!unknown.empty()) {
    std::cerr << "upa_ctl: unknown option '--" << unknown.front()
              << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  if (!args.has("port")) {
    std::cerr << "upa_ctl: --port is required\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    control::ControllerOptions options;
    options.host = args.get("host", "127.0.0.1");
    options.port = static_cast<std::uint16_t>(args.get_size("port", 0));
    options.tick_interval_seconds =
        args.get_double("tick-ms", 250.0) / 1000.0;
    options.estimator.window_seconds =
        args.get_double("window-ms", 2000.0) / 1000.0;
    options.policy.target_loss = args.get_double("target-loss", 0.08);
    options.policy.min_workers = args.get_size("min-workers", 1);
    options.policy.max_workers = args.get_size("max-workers", 8);
    options.policy.max_capacity = args.get_size("max-capacity", 64);
    options.policy.lambda_headroom = args.get_double("headroom", 1.3);
    options.policy.sizing_fraction =
        args.get_double("sizing-fraction", 0.5);
    options.policy.grow_cooldown_seconds =
        args.get_double("grow-cooldown-ms", 750.0) / 1000.0;
    options.policy.shrink_cooldown_seconds =
        args.get_double("shrink-cooldown-ms", 6000.0) / 1000.0;
    const double duration = args.get_double("duration", 0.0);
    const double status_every = args.get_double("status-every", 2.0);
    const std::size_t connect_retries =
        args.get_size("connect-retries", 20);

    control::Controller controller(std::move(options));

    // The server may still be coming up (or briefly saturated): retry
    // the attach instead of dying on the first refused connect.
    std::size_t attempt = 0;
    for (;;) {
      try {
        controller.start();
        break;
      } catch (const std::exception& error) {
        if (++attempt >= connect_retries || g_stop_requested != 0) {
          std::cerr << "upa_ctl: cannot attach after " << attempt
                    << " attempts: " << error.what() << std::endl;
          return 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(250));
      }
    }

    std::signal(SIGINT, on_signal);
    std::signal(SIGTERM, on_signal);
    std::cout << "upa_ctl: attached to " << args.get("host", "127.0.0.1")
              << ":" << args.get_size("port", 0) << " (target loss "
              << args.get_double("target-loss", 0.08) << ")" << std::endl;

    const auto started = std::chrono::steady_clock::now();
    auto last_status = started;
    while (g_stop_requested == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const auto now = std::chrono::steady_clock::now();
      const double elapsed =
          std::chrono::duration<double>(now - started).count();
      if (duration > 0.0 && elapsed >= duration) break;
      if (status_every > 0.0 &&
          std::chrono::duration<double>(now - last_status).count() >=
              status_every) {
        print_status(controller.stats());
        last_status = now;
      }
      if (!controller.stats().connected) {
        // The server went away (stopped or restarted): exit rather
        // than spin on a dead stream; a supervisor can relaunch us.
        std::cerr << "upa_ctl: telemetry stream closed" << std::endl;
        break;
      }
    }

    controller.stop();
    const control::ControllerStats s = controller.stats();
    std::cout << "upa_ctl: done." << std::endl;
    print_status(s);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "upa_ctl: " << error.what() << std::endl;
    return 1;
  }
}
