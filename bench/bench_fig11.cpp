// Regenerates Figure 11: web-service unavailability vs number of web
// servers N_W = 1..10 under PERFECT coverage, one series per
// (failure rate lambda, arrival rate alpha) combination
// (lambda in {1e-2, 1e-3, 1e-4}/h, alpha in {50, 100, 150}/s,
// nu = 100/s, mu = 1/h, K = 10).

#include <vector>

#include "bench_util.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/sensitivity/sweep.hpp"

namespace {

namespace uc = upa::core;
namespace cm = upa::common;

double unavailability(std::size_t n, double lambda, double alpha) {
  uc::WebFarmParams farm{n, lambda, 1.0, 1.0, 12.0};
  uc::WebQueueParams queue{alpha, 100.0, 10};
  return 1.0 - uc::web_service_availability_perfect(farm, queue);
}

void print_fig11() {
  upa::bench::print_header(
      "Figure 11",
      "Web service unavailability (perfect coverage) vs N_W.\n"
      "Expected shape: monotone decrease in N_W for every series; lambda\n"
      "separates the curves only when the load alpha/nu < 1.");
  for (double alpha : {50.0, 100.0, 150.0}) {
    cm::Table t({"N_W", "lambda=1e-2/h", "lambda=1e-3/h", "lambda=1e-4/h"});
    t.set_title("UA(Web service), alpha = " + cm::fmt(alpha, 3) +
                " req/s (rho = " + cm::fmt(alpha / 100.0, 3) + ")");
    for (std::size_t n = 1; n <= 10; ++n) {
      t.add_row({std::to_string(n),
                 cm::fmt_sci(unavailability(n, 1e-2, alpha), 3),
                 cm::fmt_sci(unavailability(n, 1e-3, alpha), 3),
                 cm::fmt_sci(unavailability(n, 1e-4, alpha), 3)});
    }
    std::cout << t << "\n";
  }

  // Shape check mirrored from the paper's reading of the figure.
  std::vector<double> xs;
  for (std::size_t n = 1; n <= 10; ++n) xs.push_back(double(n));
  const auto series = upa::sensitivity::sweep(
      "lambda=1e-3, alpha=100", xs, [](double n) {
        return unavailability(static_cast<std::size_t>(n), 1e-3, 100.0);
      });
  std::cout << "monotone decreasing (no reversal expected): "
            << (upa::sensitivity::first_increase(series) == -1 ? "yes"
                                                               : "NO!")
            << "\n\n";
}

void bm_fig11_full_grid(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (double lambda : {1e-2, 1e-3, 1e-4}) {
      for (double alpha : {50.0, 100.0, 150.0}) {
        for (std::size_t n = 1; n <= 10; ++n) {
          acc += unavailability(n, lambda, alpha);
        }
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_fig11_full_grid);

}  // namespace

UPA_BENCH_MAIN(print_fig11)
