#pragma once
// Reliability block diagrams. A Block is an immutable expression tree over
// named components composed with series / parallel / k-of-n operators.
// Evaluation is exact even when a component appears in several places
// (Shannon factoring on repeated components).

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace upa::rbd {

/// Component availabilities by name, supplied at evaluation time.
using ParamMap = std::map<std::string, double>;

enum class BlockKind { kComponent, kSeries, kParallel, kKofN };

/// Value-semantic handle to an immutable block-diagram node.
class Block {
 public:
  /// Leaf referring to a named component whose availability comes from the
  /// ParamMap at evaluation time.
  [[nodiscard]] static Block component(std::string name);

  /// Series composition: up iff all children are up.
  [[nodiscard]] static Block series(std::vector<Block> children);

  /// Parallel composition: up iff at least one child is up.
  [[nodiscard]] static Block parallel(std::vector<Block> children);

  /// k-out-of-n:G composition: up iff at least k children are up.
  [[nodiscard]] static Block k_of_n(std::size_t k, std::vector<Block> children);

  /// n identical components named `name` in parallel.
  [[nodiscard]] static Block replicated(const std::string& name,
                                        std::size_t count);

  [[nodiscard]] BlockKind kind() const noexcept;
  [[nodiscard]] const std::string& component_name() const;
  [[nodiscard]] std::size_t threshold() const;  // k for kKofN
  [[nodiscard]] const std::vector<Block>& children() const;

  /// All distinct component names appearing in the diagram.
  [[nodiscard]] std::vector<std::string> component_names() const;

  /// True when some component name appears more than once (structural
  /// evaluation would then be wrong; evaluation falls back to factoring).
  [[nodiscard]] bool has_repeated_components() const;

  /// Structure function: is the system up for the given component states?
  [[nodiscard]] bool evaluate_states(
      const std::map<std::string, bool>& states) const;

  /// Human-readable rendering, e.g. "series(ws, parallel(as, as))".
  [[nodiscard]] std::string to_string() const;

 private:
  struct Node;
  explicit Block(std::shared_ptr<const Node> node) : node_(std::move(node)) {}
  std::shared_ptr<const Node> node_;
  friend class BlockAccess;
};

/// Internal accessor used by the evaluation/path modules (keeps the node
/// layout private to the rbd library).
class BlockAccess;

/// Exact system availability. Components are assumed mutually independent;
/// their availabilities come from `params` (every referenced name must be
/// present and be a probability). Repeated components are handled by
/// Shannon factoring, so sharing a component across branches is exact.
[[nodiscard]] double availability(const Block& block, const ParamMap& params);

/// Availability with one component pinned up/down (used by the importance
/// measures and by factoring itself).
[[nodiscard]] double availability_given(const Block& block,
                                        const ParamMap& params,
                                        const std::string& component,
                                        bool component_up);

}  // namespace upa::rbd
