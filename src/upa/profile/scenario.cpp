#include "upa/profile/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::profile {
namespace {

/// P(session reaches Exit while visiting only functions inside `allowed`).
/// Computed on a modified chain where every function outside `allowed`
/// becomes an absorbing "reject" state.
double stay_inside_probability(const OperationalProfile& profile,
                               const std::set<std::size_t>& allowed) {
  const std::size_t exit = profile.exit_state();
  linalg::Matrix p = profile.transition_matrix();
  for (std::size_t f = 0; f < profile.function_count(); ++f) {
    if (allowed.contains(f)) continue;
    const std::size_t s = NodeIndex::function(f);
    for (std::size_t c = 0; c < p.cols(); ++c) p(s, c) = 0.0;
    p(s, s) = 1.0;
  }
  const markov::Dtmc chain(p);
  std::vector<std::size_t> absorbing{exit};
  for (std::size_t f = 0; f < profile.function_count(); ++f) {
    if (!allowed.contains(f)) absorbing.push_back(NodeIndex::function(f));
  }
  const markov::AbsorbingChainAnalysis analysis(chain, absorbing);
  return analysis.absorption_probability(NodeIndex::kStart, exit);
}

}  // namespace

double visited_exactly_probability(const OperationalProfile& profile,
                                   const std::set<std::size_t>& functions) {
  for (std::size_t f : functions) {
    UPA_REQUIRE(f < profile.function_count(), "function index out of range");
  }
  // Inclusion-exclusion over subsets U of the target set V:
  // P(visited == V) = sum_U (-1)^{|V|-|U|} P(visited subseteq U).
  const std::vector<std::size_t> v(functions.begin(), functions.end());
  UPA_REQUIRE(v.size() <= 20, "too many functions for subset enumeration");
  double total = 0.0;
  for (std::size_t mask = 0; mask < (std::size_t{1} << v.size()); ++mask) {
    std::set<std::size_t> subset;
    for (std::size_t i = 0; i < v.size(); ++i) {
      if (mask & (std::size_t{1} << i)) subset.insert(v[i]);
    }
    const double sign =
        ((v.size() - subset.size()) % 2 == 0) ? 1.0 : -1.0;
    total += sign * stay_inside_probability(profile, subset);
  }
  // Tiny negatives arise from round-off in the alternating sum.
  return std::max(total, 0.0);
}

std::vector<ScenarioClass> scenario_classes(const OperationalProfile& profile,
                                            double threshold) {
  const std::size_t n = profile.function_count();
  UPA_REQUIRE(n <= 16, "too many functions for exhaustive scenario classes");
  std::vector<ScenarioClass> classes;
  for (std::size_t mask = 1; mask < (std::size_t{1} << n); ++mask) {
    std::set<std::size_t> functions;
    for (std::size_t f = 0; f < n; ++f) {
      if (mask & (std::size_t{1} << f)) functions.insert(f);
    }
    const double p = visited_exactly_probability(profile, functions);
    if (p <= threshold) continue;
    ScenarioClass sc;
    sc.probability = p;
    std::string label = "St";
    for (std::size_t f : functions) {
      label += "-" + profile.function_name(f);
    }
    sc.label = label + "-Ex";
    sc.functions = std::move(functions);
    classes.push_back(std::move(sc));
  }
  std::sort(classes.begin(), classes.end(),
            [](const ScenarioClass& a, const ScenarioClass& b) {
              return a.probability > b.probability;
            });
  return classes;
}

ScenarioSet::ScenarioSet(std::vector<std::string> function_names)
    : names_(std::move(function_names)) {
  UPA_REQUIRE(!names_.empty(), "scenario set needs at least one function");
}

void ScenarioSet::add(std::string label, std::set<std::size_t> functions,
                      double probability) {
  UPA_REQUIRE(!functions.empty(), "scenario must invoke some function");
  for (std::size_t f : functions) {
    UPA_REQUIRE(f < names_.size(), "function index out of range");
  }
  scenarios_.push_back({std::move(functions),
                        upa::common::clamp_probability(probability),
                        std::move(label)});
}

double ScenarioSet::total_probability() const noexcept {
  double sum = 0.0;
  for (const ScenarioClass& s : scenarios_) sum += s.probability;
  return sum;
}

void ScenarioSet::validate_complete(double tol) const {
  const double total = total_probability();
  UPA_REQUIRE(std::abs(total - 1.0) <= tol,
              "scenario probabilities sum to " + std::to_string(total));
}

double ScenarioSet::invocation_probability(std::size_t function) const {
  UPA_REQUIRE(function < names_.size(), "function index out of range");
  double sum = 0.0;
  for (const ScenarioClass& s : scenarios_) {
    if (s.functions.contains(function)) sum += s.probability;
  }
  return sum;
}

}  // namespace upa::profile
