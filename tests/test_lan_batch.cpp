// Tests for the LAN availability models (the paper's deferred A_LAN
// computation) and the batch-means output analysis.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/rbd/block.hpp"
#include "upa/sim/batch_means.hpp"
#include "upa/sim/rng.hpp"
#include "upa/ta/lan_model.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"

namespace ut = upa::ta;
namespace usim = upa::sim;
using upa::common::ModelError;

TEST(LanModel, BusMatchesHandComputation) {
  ut::LanComponentParams p;
  p.medium = 0.99;
  p.tap = 0.999;
  p.stations = 4;
  p.redundant_media = 2;
  const double expected =
      (1.0 - 0.01 * 0.01) * std::pow(0.999, 4.0);
  EXPECT_NEAR(ut::bus_lan_availability(p), expected, 1e-12);
}

TEST(LanModel, BusRbdAgreesWithFormula) {
  ut::LanComponentParams p;
  p.medium = 0.995;
  p.tap = 0.998;
  p.stations = 5;
  p.redundant_media = 3;
  upa::rbd::ParamMap availabilities;
  const auto block = ut::bus_lan_rbd(p, availabilities);
  EXPECT_NEAR(upa::rbd::availability(block, availabilities),
              ut::bus_lan_availability(p), 1e-12);
}

TEST(LanModel, RedundantMediaHelp) {
  ut::LanComponentParams single;
  single.redundant_media = 1;
  ut::LanComponentParams dual = single;
  dual.redundant_media = 2;
  EXPECT_GT(ut::bus_lan_availability(dual),
            ut::bus_lan_availability(single));
}

TEST(LanModel, RingToleratesOneLink) {
  // Perfect adapters: availability = P(at most one of n links down).
  const double a = ut::ring_lan_availability(0.99, 1.0, 4);
  const double expected = std::pow(0.99, 4.0) +
                          4.0 * std::pow(0.99, 3.0) * 0.01;
  EXPECT_NEAR(a, expected, 1e-12);
  // Ring beats the single bus built from the same link quality.
  ut::LanComponentParams bus;
  bus.medium = 0.99;
  bus.tap = 1.0;
  bus.stations = 4;
  bus.redundant_media = 1;
  EXPECT_GT(a, ut::bus_lan_availability(bus));
}

TEST(LanModel, DerivedAlanFeedsTheUserModel) {
  // Close the loop the paper leaves open: compute A_LAN from components
  // and push it through eq. (10).
  ut::LanComponentParams lan;
  lan.medium = 0.999;
  lan.tap = 0.9995;
  lan.stations = 4;
  lan.redundant_media = 2;
  auto p = ut::TaParameters::paper_defaults().with_reservation_systems(5);
  p.a_lan = ut::bus_lan_availability(lan);
  EXPECT_GT(p.a_lan, 0.99);
  const double a = ut::user_availability_eq10(ut::UserClass::kB, p);
  // Better LAN than Table 7's 0.9966 -> better user availability.
  const double baseline = ut::user_availability_eq10(
      ut::UserClass::kB,
      ut::TaParameters::paper_defaults().with_reservation_systems(5));
  EXPECT_GT(a, baseline);
}

TEST(LanModel, RejectsBadParameters) {
  ut::LanComponentParams p;
  p.stations = 1;
  EXPECT_THROW((void)ut::bus_lan_availability(p), ModelError);
  EXPECT_THROW((void)ut::ring_lan_availability(1.5, 0.9, 4), ModelError);
}

TEST(BatchMeans, BatchAveragesComputedCorrectly) {
  usim::BatchMeans bm(2);
  bm.add(1.0);
  bm.add(3.0);  // batch avg 2
  bm.add(5.0);
  bm.add(7.0);  // batch avg 6
  bm.add(100.0);  // incomplete batch ignored
  ASSERT_EQ(bm.completed_batches(), 2u);
  EXPECT_DOUBLE_EQ(bm.batch_averages()[0], 2.0);
  EXPECT_DOUBLE_EQ(bm.batch_averages()[1], 6.0);
  EXPECT_DOUBLE_EQ(bm.mean(), 4.0);
}

TEST(BatchMeans, IntervalCoversIidMean) {
  usim::Xoshiro256 rng(11);
  usim::BatchMeans bm(500);
  for (int i = 0; i < 20000; ++i) bm.add(rng.uniform01());
  const auto ci = bm.interval(0.99);
  EXPECT_TRUE(ci.contains(0.5));
  EXPECT_LT(ci.half_width, 0.01);
  // iid stream: batch averages nearly uncorrelated.
  EXPECT_LT(std::abs(bm.lag1_autocorrelation()), 0.4);
}

TEST(BatchMeans, DetectsCorrelationInSlowProcess) {
  // AR(1)-like stream with strong positive correlation; tiny batches
  // keep the correlation visible in the diagnostic.
  usim::Xoshiro256 rng(13);
  usim::BatchMeans tiny(5);
  double x = 0.0;
  for (int i = 0; i < 5000; ++i) {
    x = 0.98 * x + 0.02 * rng.uniform01();
    tiny.add(x);
  }
  EXPECT_GT(tiny.lag1_autocorrelation(), 0.5);
}

TEST(BatchMeans, AgreesWithReplicationsOnAvailability) {
  // One long alternating-renewal run analyzed by batch means lands on
  // the analytic availability.
  const double lambda = 0.05;
  const double mu = 1.0;
  usim::Xoshiro256 rng(17);
  usim::BatchMeans bm(200);
  // Sample cycles: up ~ Exp(lambda), down ~ Exp(mu); per-cycle
  // availability observations.
  for (int i = 0; i < 20000; ++i) {
    const double up = -std::log(rng.uniform01_open_left()) / lambda;
    const double down = -std::log(rng.uniform01_open_left()) / mu;
    bm.add(up / (up + down));
  }
  // Note: cycle-average != time-average in general; compare against the
  // empirical expectation of the SAME estimator via many replications.
  // Here we only check the CI machinery is self-consistent.
  const auto ci = bm.interval(0.95);
  EXPECT_NEAR(ci.mean, bm.mean(), 1e-12);
  EXPECT_GT(ci.half_width, 0.0);
}

TEST(BatchMeans, Guards) {
  usim::BatchMeans bm(10);
  EXPECT_THROW((void)bm.mean(), ModelError);
  bm.add(1.0);
  EXPECT_THROW((void)bm.lag1_autocorrelation(), ModelError);
  EXPECT_THROW(usim::BatchMeans(0), ModelError);
}
