// Monte-Carlo validation: the simulators must reproduce the analytic
// results of the queueing, RBD and Markov engines within their confidence
// intervals. These are the slowest tests in the suite.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"

#include "upa/markov/ctmc.hpp"
#include "upa/queueing/mm1.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/rbd/block.hpp"
#include "upa/sim/availability_sim.hpp"
#include "upa/sim/queue_sim.hpp"

namespace usim = upa::sim;
namespace uq = upa::queueing;
namespace ur = upa::rbd;
namespace um = upa::markov;

namespace {

/// Widened acceptance band: CI half-width plus a safety margin, so the
/// suite stays deterministic-pass under the fixed seeds.
void expect_in_band(const usim::ConfidenceInterval& ci, double analytic,
                    double extra) {
  EXPECT_NEAR(ci.mean, analytic, ci.half_width + extra)
      << "CI [" << ci.low << ", " << ci.high << "] vs analytic "
      << analytic;
}

}  // namespace

TEST(QueueSimValidation, Mm1kLossMatchesClosedForm) {
  usim::QueueSpec spec;
  spec.interarrival = usim::Exponential{90.0};
  spec.service = usim::Exponential{100.0};
  spec.servers = 1;
  spec.capacity = 10;
  usim::QueueSimOptions options;
  options.arrivals_per_replication = 120000;
  options.warmup_arrivals = 5000;
  options.replications = 8;
  options.seed = 1234;
  const auto result = usim::simulate_queue(spec, options);
  const double analytic = uq::mm1k_loss_probability(90.0, 100.0, 10);
  expect_in_band(result.loss_probability, analytic, 0.002);
}

TEST(QueueSimValidation, MmckLossMatchesClosedForm) {
  usim::QueueSpec spec;
  spec.interarrival = usim::Exponential{100.0};
  spec.service = usim::Exponential{50.0};  // 2 servers needed at rho=2
  spec.servers = 3;
  spec.capacity = 10;
  usim::QueueSimOptions options;
  options.arrivals_per_replication = 120000;
  options.warmup_arrivals = 5000;
  options.replications = 8;
  options.seed = 77;
  const auto result = usim::simulate_queue(spec, options);
  const double analytic = uq::mmck_loss_probability(100.0, 50.0, 3, 10);
  expect_in_band(result.loss_probability, analytic, 0.003);
}

TEST(QueueSimValidation, Mm1MeanInSystemMatches) {
  usim::QueueSpec spec;
  spec.interarrival = usim::Exponential{50.0};
  spec.service = usim::Exponential{100.0};
  spec.servers = 1;
  spec.capacity = 500;  // effectively infinite
  usim::QueueSimOptions options;
  options.arrivals_per_replication = 100000;
  options.warmup_arrivals = 10000;
  options.replications = 6;
  options.seed = 99;
  const auto result = usim::simulate_queue(spec, options);
  expect_in_band(result.mean_in_system,
                 uq::mm1_metrics(50.0, 100.0).mean_in_system, 0.05);
  expect_in_band(result.mean_response,
                 uq::mm1_metrics(50.0, 100.0).mean_response, 0.002);
}

TEST(AvailabilitySimValidation, SeriesSystemMatchesRbd) {
  // Two components in series; availability = prod of mu/(lambda+mu).
  const std::vector<usim::ComponentSpec> components{
      {"a", 0.02, 1.0}, {"b", 0.05, 0.5}};
  const auto block = ur::Block::series(
      {ur::Block::component("a"), ur::Block::component("b")});
  const ur::ParamMap params{
      {"a", 1.0 / (1.0 + 0.02)}, {"b", 0.5 / (0.5 + 0.05)}};
  const double analytic = ur::availability(block, params);

  usim::MonteCarloOptions options;
  options.horizon = 30000.0;
  options.warmup = 500.0;
  options.replications = 10;
  options.seed = 321;
  const auto estimate = usim::simulate_system_availability(
      components,
      [](const std::vector<bool>& up) { return up[0] && up[1]; }, options);
  expect_in_band(estimate.interval, analytic, 0.002);
}

TEST(AvailabilitySimValidation, ParallelSystemMatchesRbd) {
  const std::vector<usim::ComponentSpec> components{
      {"a", 0.1, 1.0}, {"b", 0.1, 1.0}};
  const double a = 1.0 / 1.1;
  const double analytic = 1.0 - (1.0 - a) * (1.0 - a);
  usim::MonteCarloOptions options;
  options.horizon = 20000.0;
  options.replications = 10;
  options.seed = 555;
  const auto estimate = usim::simulate_system_availability(
      components,
      [](const std::vector<bool>& up) { return up[0] || up[1]; }, options);
  expect_in_band(estimate.interval, analytic, 0.002);
}

TEST(CtmcRewardSimValidation, TwoStateAvailability) {
  const um::Ctmc chain = um::two_state_availability(0.05, 1.0);
  usim::MonteCarloOptions options;
  options.horizon = 20000.0;
  options.replications = 10;
  options.seed = 2024;
  const auto estimate =
      usim::simulate_ctmc_reward(chain, {1.0, 0.0}, 0, options);
  expect_in_band(estimate.interval, 1.0 / 1.05, 0.002);
}

TEST(CtmcRewardSimValidation, WeightedRewardChain) {
  um::Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 0, 3.0);
  const std::vector<double> rewards{1.0, 0.5, 0.0};
  const auto pi = chain.steady_state();
  const double analytic = pi[0] * 1.0 + pi[1] * 0.5;
  usim::MonteCarloOptions options;
  options.horizon = 30000.0;
  options.replications = 8;
  options.seed = 31337;
  const auto estimate = usim::simulate_ctmc_reward(chain, rewards, 0, options);
  expect_in_band(estimate.interval, analytic, 0.005);
}

TEST(CtmcRewardSimValidation, RejectsAbsorbingState) {
  um::Ctmc chain(2);
  chain.add_rate(0, 1, 1.0);  // state 1 absorbing
  usim::MonteCarloOptions options;
  options.horizon = 100.0;
  options.replications = 2;
  EXPECT_THROW((void)usim::simulate_ctmc_reward(chain, {1.0, 0.0}, 0, options),
               upa::common::ModelError);
}
