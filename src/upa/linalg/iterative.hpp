#pragma once
// Iterative kernels for chains too large for dense LU: power iteration for
// stochastic matrices and Gauss-Seidel / Jacobi for linear systems.

#include <cstddef>

#include "upa/linalg/matrix.hpp"
#include "upa/linalg/sparse.hpp"

namespace upa::linalg {

/// Options shared by the iterative solvers.
struct IterativeOptions {
  std::size_t max_iterations = 200000;
  double tolerance = 1e-13;  // infinity-norm of the update
  /// Record the update norm of every sweep into
  /// IterativeResult::residual_history (observability: per-stage residual
  /// trajectories). Off by default -- the history is one double per
  /// iteration, which can be large for slow solves.
  bool record_residual_history = false;
  /// Warm start: when non-empty, iteration begins from this vector
  /// instead of the solver's flat default (zeros for Gauss-Seidel /
  /// Jacobi, uniform for power iteration; power iteration renormalizes
  /// the guess first). Must match the system size. Opt-in and default
  /// off: with no guess the solvers reproduce their historical iterates
  /// bit for bit. Seeding from a nearby solution (the previous grid
  /// point of a sweep) typically cuts the iteration count sharply.
  std::vector<double> initial_guess;
};

/// Result of an iterative run (solution plus convergence diagnostics).
struct IterativeResult {
  Vector solution;
  std::size_t iterations = 0;
  double residual = 0.0;
  /// Update norm per sweep; empty unless record_residual_history was set.
  std::vector<double> residual_history;
};

/// Fixed point of pi = pi P for a row-stochastic sparse matrix P, starting
/// from the uniform distribution; renormalizes each sweep. Throws
/// ConvergenceError when the update norm stalls above tolerance.
[[nodiscard]] IterativeResult power_iteration(
    const SparseMatrix& p, const IterativeOptions& options = {});

/// Gauss-Seidel for A x = b (square sparse A with non-zero diagonal).
/// Throws ConvergenceError when not converged within the budget.
[[nodiscard]] IterativeResult gauss_seidel(
    const SparseMatrix& a, const Vector& b,
    const IterativeOptions& options = {});

/// Jacobi iteration for A x = b; slower than Gauss-Seidel but embarrassingly
/// order-independent (useful as a cross-check).
[[nodiscard]] IterativeResult jacobi(const SparseMatrix& a, const Vector& b,
                                     const IterativeOptions& options = {});

}  // namespace upa::linalg
