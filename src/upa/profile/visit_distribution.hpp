#pragma once
// Distribution of the number of invocations of one function per session.
// Under a Markovian profile the count is zero-modified geometric:
//   P(N = 0) = 1 - f,   P(N = k) = f r^{k-1} (1 - r)   (k >= 1)
// where f = P(reach the function) and r = P(return to it before Exit).
// Both are absorbing-chain quantities; expected_visits = f / (1 - r)
// cross-checks OperationalProfile::expected_visits.

#include <vector>

#include "upa/profile/operational_profile.hpp"

namespace upa::profile {

/// Parameters of the zero-modified geometric invocation-count law.
struct VisitLaw {
  double reach_probability = 0.0;   ///< f
  double return_probability = 0.0;  ///< r
  [[nodiscard]] double expected_visits() const {
    return reach_probability / (1.0 - return_probability);
  }
};

/// Computes f and r for one function.
[[nodiscard]] VisitLaw visit_law(const OperationalProfile& profile,
                                 std::size_t function);

/// P(N = k) for k = 0..max_count (the tail beyond max_count is whatever
/// mass remains; entries sum to <= 1).
[[nodiscard]] std::vector<double> visit_count_distribution(
    const OperationalProfile& profile, std::size_t function,
    std::size_t max_count);

}  // namespace upa::profile
