#include "upa/profile/visit_distribution.hpp"

#include "upa/common/error.hpp"
#include "upa/markov/dtmc.hpp"

namespace upa::profile {
namespace {

/// P(hit `target` before Exit | start one step after `from_state` under
/// the original transition row of `from_state`). Used with
/// from_state == target to get the return probability.
double hit_before_exit_after_leaving(const OperationalProfile& profile,
                                     std::size_t target_state) {
  const std::size_t exit = profile.exit_state();
  linalg::Matrix p = profile.transition_matrix();
  // Make the target absorbing (hitting it = success).
  linalg::Matrix modified = p;
  for (std::size_t c = 0; c < modified.cols(); ++c) {
    modified(target_state, c) = 0.0;
  }
  modified(target_state, target_state) = 1.0;
  const markov::Dtmc chain(modified);
  const markov::AbsorbingChainAnalysis analysis(chain,
                                                {target_state, exit});
  // One-step distribution out of the ORIGINAL target row, then absorb.
  double probability = 0.0;
  for (std::size_t c = 0; c < p.cols(); ++c) {
    const double step = p(target_state, c);
    if (step == 0.0) continue;
    if (c == target_state) {
      probability += step;  // self-loop: immediate revisit
    } else if (c == exit) {
      // contributes nothing
    } else {
      probability += step * analysis.absorption_probability(c, target_state);
    }
  }
  return probability;
}

}  // namespace

VisitLaw visit_law(const OperationalProfile& profile, std::size_t function) {
  UPA_REQUIRE(function < profile.function_count(),
              "function index out of range");
  VisitLaw law;
  law.reach_probability = profile.invocation_probability(function);
  law.return_probability = hit_before_exit_after_leaving(
      profile, NodeIndex::function(function));
  UPA_REQUIRE(law.return_probability < 1.0,
              "function is revisited with probability 1; the profile "
              "cannot terminate");
  return law;
}

std::vector<double> visit_count_distribution(
    const OperationalProfile& profile, std::size_t function,
    std::size_t max_count) {
  const VisitLaw law = visit_law(profile, function);
  std::vector<double> pmf(max_count + 1, 0.0);
  pmf[0] = 1.0 - law.reach_probability;
  double mass = law.reach_probability * (1.0 - law.return_probability);
  for (std::size_t k = 1; k <= max_count; ++k) {
    pmf[k] = mass;
    mass *= law.return_probability;
  }
  return pmf;
}

}  // namespace upa::profile
