#include "upa/core/performability.hpp"

#include <utility>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::core {
namespace {

double availability_uncached(const markov::Ctmc& chain,
                             const std::vector<double>& service_probability) {
  const linalg::Vector pi = chain.steady_state();
  double a = 0.0;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    a += pi[s] * service_probability[s];
  }
  return a;
}

}  // namespace

CompositeAvailabilityModel::CompositeAvailabilityModel(
    markov::Ctmc chain, std::vector<double> service_probability)
    : chain_(std::move(chain)),
      service_probability_(std::move(service_probability)) {
  UPA_REQUIRE(service_probability_.size() == chain_.state_count(),
              "one service probability per state required");
  for (double p : service_probability_) {
    UPA_REQUIRE(upa::common::is_probability(p),
                "service probabilities must lie in [0, 1]");
  }
}

double CompositeAvailabilityModel::availability() const {
  if (!cache::enabled()) {
    return availability_uncached(chain_, service_probability_);
  }
  cache::KeyBuilder kb("core.composite_availability", 1);
  chain_.append_cache_key(kb);
  kb.add(service_probability_);
  return *cache::global().get_or_compute<double>(
      std::move(kb).finish(),
      [&] { return availability_uncached(chain_, service_probability_); });
}

CompositeAvailabilityModel::Breakdown CompositeAvailabilityModel::breakdown()
    const {
  const linalg::Vector pi = chain_.steady_state();
  Breakdown b;
  for (std::size_t s = 0; s < pi.size(); ++s) {
    const double r = service_probability_[s];
    b.availability += pi[s] * r;
    if (r == 0.0) {
      b.downtime_loss += pi[s];
    } else {
      b.performance_loss += pi[s] * (1.0 - r);
    }
  }
  return b;
}

double timescale_separation_ratio(const markov::Ctmc& chain,
                                  double performance_rate) {
  UPA_REQUIRE(performance_rate > 0.0, "performance rate must be positive");
  return chain.max_exit_rate() / performance_rate;
}

}  // namespace upa::core
