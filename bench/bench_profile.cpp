// Regenerates Table 1 (user scenario probabilities for classes A and B)
// and demonstrates the user-level pipeline: a full p_ij session graph is
// fitted to the table, and the exact visited-set analysis of that graph
// recovers the twelve scenario-class probabilities.

#include "bench_util.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/ta/user_classes.hpp"

namespace {

namespace ut = upa::ta;
namespace up = upa::profile;
namespace cm = upa::common;

void print_table1() {
  upa::bench::print_header(
      "Table 1",
      "User scenario probabilities (percent). 'recovered' = exact\n"
      "visited-set probability of the fitted p_ij session graph\n"
      "(inclusion-exclusion over absorbing-chain solves).");
  for (const auto uclass : {ut::UserClass::kA, ut::UserClass::kB}) {
    const auto table = ut::scenario_table(uclass);
    const auto profile = ut::fitted_session_graph(uclass);
    cm::Table t({"scenario", "paper %", "recovered %", "diff"});
    t.set_align(0, cm::Align::kLeft);
    t.set_title("Table 1, " + ut::user_class_name(uclass));
    for (const auto& scenario : table.scenarios()) {
      const double recovered =
          up::visited_exactly_probability(profile, scenario.functions);
      t.add_row({scenario.label, cm::fmt_fixed(scenario.probability * 100, 1),
                 cm::fmt_fixed(recovered * 100, 2),
                 cm::fmt_fixed((recovered - scenario.probability) * 100, 2)});
    }
    std::cout << t << "\n";

    cm::Table v({"function", "E[visits]/session", "P(invoked)"});
    v.set_align(0, cm::Align::kLeft);
    v.set_title("Derived profile statistics, " + ut::user_class_name(uclass));
    for (std::size_t f = 0; f < profile.function_count(); ++f) {
      v.add_row({profile.function_name(f),
                 cm::fmt(profile.expected_visits(f), 4),
                 cm::fmt(profile.invocation_probability(f), 4)});
    }
    v.add_row({"(session length)", cm::fmt(profile.mean_session_length(), 4),
               "-"});
    std::cout << v << "\n";
  }
}

void bm_visited_set_analysis(benchmark::State& state) {
  const auto profile = ut::fitted_session_graph(ut::UserClass::kA);
  const auto table = ut::scenario_table(ut::UserClass::kA);
  for (auto _ : state) {
    double acc = 0.0;
    for (const auto& scenario : table.scenarios()) {
      acc += up::visited_exactly_probability(profile, scenario.functions);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_visited_set_analysis);

void bm_scenario_class_enumeration(benchmark::State& state) {
  const auto profile = ut::fitted_session_graph(ut::UserClass::kB);
  for (auto _ : state) {
    benchmark::DoNotOptimize(up::scenario_classes(profile));
  }
}
BENCHMARK(bm_scenario_class_enumeration);

void bm_fit_session_graph(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(ut::fitted_session_graph(ut::UserClass::kB));
  }
}
BENCHMARK(bm_fit_session_graph);

}  // namespace

UPA_BENCH_MAIN(print_table1)
