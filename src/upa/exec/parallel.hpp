#pragma once
// Convenience front-ends over ThreadPool for the embarrassingly-parallel
// shapes this codebase actually runs: design-point sweeps (the Fig. 11-13
// grids), replication fan-out, and campaign plans. Results always come
// back in input order, so a sweep is a drop-in replacement for the serial
// loop it displaces -- same values, same order, any thread count.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "upa/exec/thread_pool.hpp"

namespace upa::exec {

/// Evaluates `eval(point)` for every design point and returns the results
/// in input order. `threads` as for ThreadPool (0 = hardware concurrency,
/// 1 = serial inline loop). Evaluators must be independent: they may not
/// share mutable state, and exceptions surface as in ThreadPool
/// (smallest failing index first).
template <typename Point, typename Fn>
[[nodiscard]] auto parallel_sweep(const std::vector<Point>& points, Fn&& eval,
                                  std::size_t threads = 0)
    -> std::vector<decltype(eval(points.front()))> {
  using Result = decltype(eval(points.front()));
  if (points.empty()) return {};
  // Never spawn more workers than there are design points.
  ThreadPool pool(std::min(resolve_threads(threads), points.size()));
  return pool.parallel_map<Result>(
      points.size(), [&](std::size_t i) { return eval(points[i]); });
}

/// parallel_sweep against an existing pool (no per-call thread spawn).
template <typename Point, typename Fn>
[[nodiscard]] auto parallel_sweep(ThreadPool& pool,
                                  const std::vector<Point>& points, Fn&& eval)
    -> std::vector<decltype(eval(points.front()))> {
  using Result = decltype(eval(points.front()));
  return pool.parallel_map<Result>(
      points.size(), [&](std::size_t i) { return eval(points[i]); });
}

}  // namespace upa::exec
