#pragma once
// Shared plumbing for the reproduction harnesses. Every bench binary
// first prints the paper artifact it regenerates (table rows / figure
// series, paper value vs reproduced value where applicable), then runs
// google-benchmark timings of the underlying kernels.

#include <benchmark/benchmark.h>

#include <iostream>

#include "upa/common/table.hpp"
#include "upa/ta/params.hpp"

namespace upa::bench {

/// Paper configuration shortcuts.
[[nodiscard]] inline ta::TaParameters paper_params(std::size_t n_reservation) {
  return ta::TaParameters::paper_defaults().with_reservation_systems(
      n_reservation);
}

inline void print_header(const char* artifact, const char* description) {
  std::cout << "==============================================================="
               "=\n"
            << "Reproduction of " << artifact << "\n"
            << description << "\n"
            << "==============================================================="
               "=\n\n";
}

}  // namespace upa::bench

/// Prints the reproduction output, then runs registered benchmarks.
#define UPA_BENCH_MAIN(print_fn)                      \
  int main(int argc, char** argv) {                   \
    print_fn();                                       \
    benchmark::Initialize(&argc, argv);               \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    benchmark::RunSpecifiedBenchmarks();              \
    benchmark::Shutdown();                            \
    return 0;                                         \
  }
