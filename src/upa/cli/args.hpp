#pragma once
// Minimal command-line argument parsing for the upa tools: positional
// command + "--name value" / "--flag" options. Deliberately dependency-
// free and strict: unknown access patterns throw, so tools fail loudly on
// typos.

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace upa::cli {

/// Parsed command line: one optional positional command followed by
/// --key [value] options. A token starting with "--" is an option name;
/// it consumes the next token as its value unless that token is also an
/// option (then it is a boolean flag).
class Args {
 public:
  Args(int argc, const char* const* argv);
  explicit Args(const std::vector<std::string>& tokens);

  [[nodiscard]] const std::string& command() const noexcept {
    return command_;
  }
  [[nodiscard]] bool has(const std::string& name) const;

  /// String option with default.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;

  /// Numeric options with defaults; throw ModelError on non-numeric text.
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& name,
                                     std::size_t fallback) const;

  /// Every option name provided on the command line, in sorted order;
  /// lets a tool validate the whole invocation up front (against a
  /// per-command vocabulary) before doing any work.
  [[nodiscard]] std::vector<std::string> names() const;

  /// Names that were provided but never read (typo detection).
  [[nodiscard]] std::vector<std::string> unused() const;

 private:
  void parse(const std::vector<std::string>& tokens);

  std::string command_;
  std::map<std::string, std::string> options_;  // name -> value ("" = flag)
  mutable std::map<std::string, bool> accessed_;
};

/// Allowlist validation, shared by every tool: the provided option
/// names not in `allowed`, in sorted order. Run this *before* any work
/// with side effects so a typo'd flag exits with usage instead of
/// half-running (e.g. `upa_dispatch --upstraems` must not bind a port).
/// "help" is always allowed.
[[nodiscard]] std::vector<std::string> unknown_options(
    const Args& args, const std::vector<std::string>& allowed);

}  // namespace upa::cli
