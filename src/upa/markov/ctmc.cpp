#include "upa/markov/ctmc.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/linalg/iterative.hpp"
#include "upa/linalg/lu.hpp"

namespace upa::markov {

Ctmc::Ctmc(std::size_t state_count) : n_(state_count), labels_(state_count) {
  UPA_REQUIRE(state_count >= 1, "CTMC needs at least one state");
  for (std::size_t i = 0; i < n_; ++i) {
    labels_[i] = "s" + std::to_string(i);
  }
}

void Ctmc::check_state(std::size_t s) const {
  UPA_REQUIRE(s < n_, "state index " + std::to_string(s) + " out of range");
}

void Ctmc::add_rate(std::size_t from, std::size_t to, double rate) {
  check_state(from);
  check_state(to);
  UPA_REQUIRE(from != to, "self-loop rates are not allowed in a CTMC");
  UPA_REQUIRE(std::isfinite(rate) && rate > 0.0,
              "transition rate must be positive and finite");
  rates_.push_back({from, to, rate});
}

void Ctmc::set_label(std::size_t state, std::string label) {
  check_state(state);
  labels_[state] = std::move(label);
}

const std::string& Ctmc::label(std::size_t state) const {
  check_state(state);
  return labels_[state];
}

linalg::Matrix Ctmc::generator() const {
  linalg::Matrix q(n_, n_);
  for (const auto& t : rates_) {
    q(t.row, t.col) += t.value;
    q(t.row, t.row) -= t.value;
  }
  return q;
}

linalg::SparseMatrix Ctmc::sparse_generator() const {
  std::vector<linalg::Triplet> triplets = rates_;
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) exit[t.row] += t.value;
  for (std::size_t i = 0; i < n_; ++i) {
    if (exit[i] != 0.0) triplets.push_back({i, i, -exit[i]});
  }
  return {n_, n_, std::move(triplets)};
}

double Ctmc::exit_rate(std::size_t state) const {
  check_state(state);
  double sum = 0.0;
  for (const auto& t : rates_) {
    if (t.row == state) sum += t.value;
  }
  return sum;
}

double Ctmc::max_exit_rate() const {
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) exit[t.row] += t.value;
  return *std::max_element(exit.begin(), exit.end());
}

linalg::Vector Ctmc::steady_state() const {
  // Solve pi Q = 0 with normalization: transpose to Q^T pi^T = 0 and
  // replace the last balance equation by sum(pi) = 1.
  linalg::Matrix a = generator().transposed();
  for (std::size_t c = 0; c < n_; ++c) a(n_ - 1, c) = 1.0;
  linalg::Vector b(n_, 0.0);
  b[n_ - 1] = 1.0;
  linalg::Vector pi = linalg::solve(std::move(a), b);
  for (double& p : pi) {
    UPA_REQUIRE(p > -1e-9, "steady state produced a negative probability; "
                           "the chain is likely reducible");
    p = std::max(p, 0.0);
  }
  upa::common::normalize(pi);
  return pi;
}

linalg::Vector Ctmc::steady_state_iterative(double tolerance) const {
  // Uniformize: P = I + Q / Lambda with Lambda slightly above the largest
  // exit rate so every diagonal stays positive (aperiodic DTMC).
  const double lambda = max_exit_rate() * 1.02 + 1e-300;
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(rates_.size() + n_);
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) {
    exit[t.row] += t.value;
    triplets.push_back({t.row, t.col, t.value / lambda});
  }
  for (std::size_t i = 0; i < n_; ++i) {
    triplets.push_back({i, i, 1.0 - exit[i] / lambda});
  }
  linalg::SparseMatrix p(n_, n_, std::move(triplets));
  linalg::IterativeOptions options;
  options.tolerance = tolerance;
  return linalg::power_iteration(p, options).solution;
}

double Ctmc::mean_time_to_absorption(
    std::size_t from, const std::vector<std::size_t>& absorbing) const {
  check_state(from);
  UPA_REQUIRE(!absorbing.empty(), "need at least one absorbing state");
  std::vector<bool> is_absorbing(n_, false);
  for (std::size_t s : absorbing) {
    check_state(s);
    is_absorbing[s] = true;
  }
  UPA_REQUIRE(!is_absorbing[from], "start state is absorbing; MTTA is 0");

  // Index the transient states and solve (-Q_TT) tau = 1.
  std::vector<std::size_t> transient_index(n_, SIZE_MAX);
  std::vector<std::size_t> transient_states;
  for (std::size_t s = 0; s < n_; ++s) {
    if (!is_absorbing[s]) {
      transient_index[s] = transient_states.size();
      transient_states.push_back(s);
    }
  }
  const std::size_t m = transient_states.size();
  linalg::Matrix neg_qtt(m, m);
  std::vector<double> exit(n_, 0.0);
  for (const auto& t : rates_) exit[t.row] += t.value;
  for (std::size_t i = 0; i < m; ++i) {
    neg_qtt(i, i) = exit[transient_states[i]];
  }
  for (const auto& t : rates_) {
    if (is_absorbing[t.row] || is_absorbing[t.col]) continue;
    neg_qtt(transient_index[t.row], transient_index[t.col]) -= t.value;
  }
  const linalg::Vector ones(m, 1.0);
  const linalg::Vector tau = linalg::solve(std::move(neg_qtt), ones);
  return tau[transient_index[from]];
}

double Ctmc::steady_state_mass(const std::vector<std::size_t>& states) const {
  const linalg::Vector pi = steady_state();
  double mass = 0.0;
  for (std::size_t s : states) {
    check_state(s);
    mass += pi[s];
  }
  return mass;
}

Ctmc two_state_availability(double lambda, double mu) {
  UPA_REQUIRE(lambda > 0.0 && mu > 0.0, "rates must be positive");
  Ctmc chain(2);
  chain.set_label(0, "up");
  chain.set_label(1, "down");
  chain.add_rate(0, 1, lambda);
  chain.add_rate(1, 0, mu);
  return chain;
}

double two_state_steady_availability(double lambda, double mu) {
  UPA_REQUIRE(lambda > 0.0 && mu > 0.0, "rates must be positive");
  return mu / (lambda + mu);
}

}  // namespace upa::markov
