// upa_tracecol: cross-process trace collector for the serving farm.
//
// Subscribes to the telemetry channel (`subscribe` RPC) of every farm
// process -- the upa_dispatch front and each upa_served replica -- or
// ingests previously captured JSONL files, then reassembles the spans
// into end-to-end request traces (obs::TraceCollector), writes a merged
// Chrome/Perfetto trace with one track per process, and optionally
// mines the observed session graph back into the paper's operational
// profile + scenario-class inputs and compares eq. (10) on the mined
// mix against the hand-specified Table 1 answer.
//
// Exit code is a CI gate: nonzero when any process reported dropped
// spans, when --check-complete is given and fewer than that fraction of
// the loadgen's requests (--expect-csv) reassembled into complete
// traces, or when --mine finds the mined availability outside the
// run's sampling tolerance.

#include <chrono>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "upa/cli/args.hpp"
#include "upa/common/csv.hpp"
#include "upa/common/error.hpp"
#include "upa/dispatch/upstream.hpp"
#include "upa/obs/collect.hpp"
#include "upa/serve/client.hpp"
#include "upa/ta/user_classes.hpp"

namespace {

void print_usage(std::ostream& os) {
  os << "usage: upa_tracecol (--subscribe LIST | --from-jsonl LIST) "
        "[options]\n"
        "\n"
        "Collects telemetry spans from farm processes, reassembles\n"
        "cross-process request traces, and mines the observed workload\n"
        "back into the paper's modeling inputs.\n"
        "\n"
        "options:\n"
        "  --subscribe LIST   comma-separated host:port telemetry\n"
        "                     endpoints (upa_served / upa_dispatch\n"
        "                     started with --trace)\n"
        "  --from-jsonl LIST  comma-separated captured JSONL files to\n"
        "                     ingest instead of (or in addition to)\n"
        "                     live subscriptions\n"
        "  --duration S       how long to stream (default 5)\n"
        "  --interval-ms N    telemetry tick interval (default 200)\n"
        "  --connect-timeout S  per-endpoint connect timeout (default 5)\n"
        "  --trace-out PATH   merged Chrome/Perfetto trace JSON\n"
        "  --spans-out PATH   merged raw spans as JSONL\n"
        "  --expect-csv PATH  loadgen --trace-csv file; reports the\n"
        "                     fraction of its trace_ids reassembled\n"
        "                     into complete traces\n"
        "  --check-complete F exit 1 unless that fraction >= F\n"
        "  --mine             mine the session DTMC + class mix from\n"
        "                     complete traces (session workloads)\n"
        "  --class A|B        hand-specified class to compare the mined\n"
        "                     mix against via eq. (10) (default B)\n"
        "  --help             this text\n";
}

const std::vector<std::string> kAllowedOptions = {
    "subscribe",      "from-jsonl", "duration",       "interval-ms",
    "connect-timeout", "trace-out", "spans-out",      "expect-csv",
    "check-complete", "mine",       "class",
};

/// One live telemetry subscription, drained by its own reader thread.
struct Subscription {
  upa::dispatch::UpstreamAddress address;
  upa::serve::Client client;
  std::thread reader;
  std::uint64_t lines = 0;
  std::string error;  ///< empty = drained cleanly (shutdown/EOF)
};

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  UPA_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
  out << text;
  out.flush();
  UPA_REQUIRE(out.good(), "write to '" + path + "' failed");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace upa;

  cli::Args args(argc, argv);
  if (args.has("help") || args.command() == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (!args.command().empty()) {
    std::cerr << "upa_tracecol: unexpected positional argument '"
              << args.command() << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }
  const std::vector<std::string> unknown =
      cli::unknown_options(args, kAllowedOptions);
  if (!unknown.empty()) {
    std::cerr << "upa_tracecol: unknown option '--" << unknown.front()
              << "'\n\n";
    print_usage(std::cerr);
    return 2;
  }

  try {
    const std::string subscribe = args.get("subscribe", "");
    const std::string from_jsonl = args.get("from-jsonl", "");
    if (subscribe.empty() && from_jsonl.empty()) {
      std::cerr << "upa_tracecol: need --subscribe and/or --from-jsonl\n\n";
      print_usage(std::cerr);
      return 2;
    }
    const double duration = args.get_double("duration", 5.0);
    const double interval_ms = args.get_double("interval-ms", 200.0);
    const double connect_timeout = args.get_double("connect-timeout", 5.0);
    UPA_REQUIRE(duration > 0.0, "--duration must be positive");
    UPA_REQUIRE(interval_ms >= 10.0 && interval_ms <= 60000.0,
                "--interval-ms must lie in [10, 60000]");

    obs::TraceCollector collector;

    // Offline ingest first: captured files are already complete.
    if (!from_jsonl.empty()) {
      std::stringstream list(from_jsonl);
      std::string path;
      while (std::getline(list, path, ',')) {
        if (path.empty()) continue;
        std::ifstream in(path, std::ios::binary);
        UPA_REQUIRE(in.good(), "cannot read '" + path + "'");
        std::ostringstream text;
        text << in.rdbuf();
        const std::size_t recognized = collector.ingest_jsonl(text.str());
        std::cout << "ingested " << path << ": " << recognized
                  << " telemetry lines" << std::endl;
      }
    }

    if (!subscribe.empty()) {
      const std::vector<dispatch::UpstreamAddress> endpoints =
          dispatch::parse_upstream_list(subscribe);
      std::vector<Subscription> subs(endpoints.size());
      for (std::size_t i = 0; i < endpoints.size(); ++i) {
        subs[i].address = endpoints[i];
        // The read timeout must comfortably exceed the tick interval or
        // a quiet process would look like a dead connection.
        subs[i].client.connect(endpoints[i].host, endpoints[i].port,
                               connect_timeout,
                               duration + interval_ms / 1000.0 + 5.0);
        std::ostringstream request;
        request << "{\"id\":1,\"method\":\"subscribe\",\"params\":"
                << "{\"interval_ms\":" << interval_ms << "}}";
        subs[i].client.send_line(request.str());
      }
      for (Subscription& sub : subs) {
        sub.reader = std::thread([&sub, &collector] {
          try {
            const std::string ack = sub.client.read_line();
            if (ack.find("\"subscribed\"") == std::string::npos) {
              sub.error = "subscribe not acknowledged: " + ack;
              return;
            }
            while (true) {
              const std::string line = sub.client.read_line();
              collector.ingest_line(line);
              ++sub.lines;
            }
          } catch (const std::exception&) {
            // EOF / shutdown_both from the main thread: normal drain.
          }
        });
      }
      std::this_thread::sleep_for(std::chrono::duration<double>(duration));
      for (Subscription& sub : subs) sub.client.shutdown_both();
      for (Subscription& sub : subs) sub.reader.join();
      for (Subscription& sub : subs) {
        if (!sub.error.empty()) {
          std::cerr << "upa_tracecol: " << sub.address.label() << ": "
                    << sub.error << "\n";
          return 1;
        }
        std::cout << "subscribed " << sub.address.label() << ": "
                  << sub.lines << " telemetry lines" << std::endl;
      }
    }

    int rc = 0;

    for (const obs::ProcessIngest& p : collector.processes()) {
      std::cout << "process " << p.process << ": spans=" << p.span_lines
                << " metrics_ticks=" << p.metrics_lines
                << " seq_gaps=" << p.seq_gaps
                << " dropped_spans=" << p.dropped_spans << std::endl;
    }
    if (collector.dropped_spans_total() > 0) {
      std::cerr << "upa_tracecol: " << collector.dropped_spans_total()
                << " spans dropped at the source\n";
      rc = 1;
    }

    const obs::ReassemblyReport report = collector.reassemble();
    std::cout << "traces=" << report.traces.size()
              << " complete=" << report.complete_traces
              << " orphan_server_roots=" << report.orphan_server_roots
              << std::endl;

    const std::string trace_out = args.get("trace-out", "");
    if (!trace_out.empty()) {
      write_text_file(trace_out, collector.merged_chrome_trace(report));
      std::cout << "wrote " << trace_out << std::endl;
    }
    const std::string spans_out = args.get("spans-out", "");
    if (!spans_out.empty()) {
      write_text_file(spans_out, collector.merged_spans_jsonl());
      std::cout << "wrote " << spans_out << std::endl;
    }

    const std::string expect_csv = args.get("expect-csv", "");
    if (!expect_csv.empty()) {
      std::ifstream in(expect_csv, std::ios::binary);
      UPA_REQUIRE(in.good(), "cannot read '" + expect_csv + "'");
      std::ostringstream text;
      text << in.rdbuf();
      const std::vector<std::vector<std::string>> rows =
          common::parse_csv(text.str());
      UPA_REQUIRE(!rows.empty(), "'" + expect_csv + "' is empty");
      std::size_t column = rows.front().size();
      for (std::size_t c = 0; c < rows.front().size(); ++c) {
        if (rows.front()[c] == "trace_id") column = c;
      }
      UPA_REQUIRE(column < rows.front().size(),
                  "'" + expect_csv + "' has no trace_id column");
      std::vector<std::string> expected;
      for (std::size_t r = 1; r < rows.size(); ++r) {
        if (column < rows[r].size()) expected.push_back(rows[r][column]);
      }
      const double accounted =
          obs::TraceCollector::accounted_fraction(report, expected);
      std::cout << "expected_requests=" << expected.size()
                << " accounted_fraction=" << accounted << std::endl;
      if (args.has("check-complete")) {
        const double threshold = args.get_double("check-complete", 0.99);
        UPA_REQUIRE(threshold >= 0.0 && threshold <= 1.0,
                    "--check-complete must lie in [0, 1]");
        if (accounted < threshold) {
          std::cerr << "upa_tracecol: accounted fraction " << accounted
                    << " below threshold " << threshold << "\n";
          rc = 1;
        }
      }
    } else if (args.has("check-complete")) {
      std::cerr << "upa_tracecol: --check-complete needs --expect-csv\n";
      return 2;
    }

    if (args.has("mine")) {
      const std::string uclass_name = args.get("class", "B");
      UPA_REQUIRE(uclass_name == "A" || uclass_name == "B",
                  "--class must be A or B");
      const ta::UserClass uclass =
          uclass_name == "A" ? ta::UserClass::kA : ta::UserClass::kB;
      const obs::MinedProfile mined =
          obs::TraceCollector::mine_profile(report);
      std::cout << "mined: walks=" << mined.walks
                << " invocations=" << mined.invocations
                << " skipped=" << mined.skipped_invocations << std::endl;
      for (const profile::ScenarioClass& sc : mined.classes.scenarios()) {
        std::cout << "  class " << sc.label << " pi=" << sc.probability
                  << std::endl;
      }
      const obs::ProfileComparison cmp =
          obs::TraceCollector::compare_with_hand_specified(mined, uclass);
      std::cout << "eq10: mined=" << cmp.mined_availability
                << " hand[" << uclass_name << "]=" << cmp.hand_availability
                << " diff=" << cmp.difference
                << " tolerance=" << cmp.tolerance
                << (cmp.within_tolerance ? " [within]" : " [OUTSIDE]")
                << std::endl;
      if (!cmp.within_tolerance) rc = 1;
    }

    return rc;
  } catch (const std::exception& e) {
    std::cerr << "upa_tracecol: " << e.what() << "\n";
    return 1;
  }
}
