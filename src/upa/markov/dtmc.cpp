#include "upa/markov/dtmc.hpp"

#include <cmath>
#include <string>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/linalg/lu.hpp"

namespace upa::markov {

Dtmc::Dtmc(linalg::Matrix transition, double tol) : p_(std::move(transition)) {
  UPA_REQUIRE(p_.rows() == p_.cols(), "DTMC matrix must be square");
  for (std::size_t r = 0; r < p_.rows(); ++r) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < p_.cols(); ++c) {
      UPA_REQUIRE(upa::common::is_probability(p_(r, c), tol),
                  "P[" + std::to_string(r) + "][" + std::to_string(c) +
                      "] is not a probability");
      row_sum += p_(r, c);
    }
    UPA_REQUIRE(std::abs(row_sum - 1.0) <= tol,
                "row " + std::to_string(r) + " sums to " +
                    std::to_string(row_sum) + ", expected 1");
    for (std::size_t c = 0; c < p_.cols(); ++c) p_(r, c) /= row_sum;
  }
}

linalg::Vector Dtmc::stationary_distribution() const {
  // Solve pi (P - I) = 0 with normalization, as a transposed linear system.
  const std::size_t n = state_count();
  linalg::Matrix a(n, n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a(r, c) = p_(c, r) - (r == c ? 1.0 : 0.0);
    }
  }
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  linalg::Vector b(n, 0.0);
  b[n - 1] = 1.0;
  linalg::Vector pi = linalg::solve(std::move(a), b);
  for (double& p : pi) {
    UPA_REQUIRE(p > -1e-9,
                "stationary solve produced a negative probability; "
                "the chain is likely reducible or periodic");
    p = std::max(p, 0.0);
  }
  upa::common::normalize(pi);
  return pi;
}

linalg::Vector Dtmc::distribution_after(linalg::Vector initial,
                                        std::size_t steps) const {
  UPA_REQUIRE(initial.size() == state_count(),
              "initial distribution size mismatch");
  for (std::size_t k = 0; k < steps; ++k) {
    initial = linalg::left_multiply(initial, p_);
  }
  return initial;
}

bool Dtmc::is_absorbing(std::size_t state) const {
  UPA_REQUIRE(state < state_count(), "state index out of range");
  return p_(state, state) == 1.0;
}

AbsorbingChainAnalysis::AbsorbingChainAnalysis(
    const Dtmc& chain, std::vector<std::size_t> absorbing_states)
    : absorbing_states_(std::move(absorbing_states)),
      index_of_state_(chain.state_count(), SIZE_MAX),
      is_absorbing_(chain.state_count(), false) {
  const std::size_t n = chain.state_count();
  UPA_REQUIRE(!absorbing_states_.empty(),
              "need at least one absorbing state");
  for (std::size_t s : absorbing_states_) {
    UPA_REQUIRE(s < n, "absorbing state index out of range");
    UPA_REQUIRE(chain.is_absorbing(s),
                "state " + std::to_string(s) + " is not absorbing");
    is_absorbing_[s] = true;
  }
  for (std::size_t i = 0; i < absorbing_states_.size(); ++i) {
    index_of_state_[absorbing_states_[i]] = i;
  }
  for (std::size_t s = 0; s < n; ++s) {
    if (!is_absorbing_[s]) {
      index_of_state_[s] = transient_states_.size();
      transient_states_.push_back(s);
    }
  }
  UPA_REQUIRE(!transient_states_.empty(), "chain has no transient states");

  const std::size_t m = transient_states_.size();
  const auto& p = chain.transition_matrix();

  // I - Q over transient states, then N = (I - Q)^{-1}.
  linalg::Matrix i_minus_q(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      const double q = p(transient_states_[i], transient_states_[j]);
      i_minus_q(i, j) = (i == j ? 1.0 : 0.0) - q;
    }
  }
  fundamental_ = linalg::inverse(std::move(i_minus_q));

  // R: transient -> absorbing one-step probabilities; B = N R.
  linalg::Matrix r(m, absorbing_states_.size());
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < absorbing_states_.size(); ++j) {
      r(i, j) = p(transient_states_[i], absorbing_states_[j]);
    }
  }
  absorption_ = fundamental_ * r;
}

std::size_t AbsorbingChainAnalysis::transient_index(std::size_t state) const {
  UPA_REQUIRE(state < is_absorbing_.size(), "state index out of range");
  UPA_REQUIRE(!is_absorbing_[state],
              "state " + std::to_string(state) + " is absorbing");
  return index_of_state_[state];
}

std::size_t AbsorbingChainAnalysis::absorbing_index(std::size_t state) const {
  UPA_REQUIRE(state < is_absorbing_.size(), "state index out of range");
  UPA_REQUIRE(is_absorbing_[state],
              "state " + std::to_string(state) + " is not absorbing");
  return index_of_state_[state];
}

double AbsorbingChainAnalysis::expected_visits(std::size_t from,
                                               std::size_t to) const {
  return fundamental_(transient_index(from), transient_index(to));
}

double AbsorbingChainAnalysis::expected_steps_to_absorption(
    std::size_t from) const {
  const std::size_t i = transient_index(from);
  double sum = 0.0;
  for (std::size_t j = 0; j < transient_states_.size(); ++j) {
    sum += fundamental_(i, j);
  }
  return sum;
}

double AbsorbingChainAnalysis::absorption_probability(
    std::size_t from, std::size_t target) const {
  return absorption_(transient_index(from), absorbing_index(target));
}

}  // namespace upa::markov
