#pragma once
// Reachability-graph generation for GSPNs: breadth-first exploration from
// the initial marking, recording every (marking, transition, successor)
// edge and classifying markings as tangible or vanishing.

#include <cstddef>
#include <map>
#include <vector>

#include "upa/spn/net.hpp"

namespace upa::spn {

/// One edge of the reachability graph.
struct ReachabilityEdge {
  std::size_t from = 0;  ///< marking index
  std::size_t to = 0;    ///< marking index
  TransitionId transition = 0;
  double rate_or_weight = 0.0;  ///< effective rate (timed) or weight
  bool immediate = false;
};

/// The explored state space of a bounded GSPN.
struct ReachabilityGraph {
  std::vector<Marking> markings;
  std::vector<bool> vanishing;  ///< per marking
  std::vector<ReachabilityEdge> edges;
  std::size_t initial = 0;

  [[nodiscard]] std::size_t tangible_count() const;
};

/// Options bounding the exploration.
struct ReachabilityOptions {
  std::size_t max_markings = 200000;
};

/// Explores the state space; throws ModelError when the bound is exceeded
/// (unbounded net or bound too small) or when a dead marking is reached
/// that has no enabled transitions at all (the CTMC conversion treats such
/// markings as absorbing, which steady-state analysis then rejects).
[[nodiscard]] ReachabilityGraph explore(const PetriNet& net,
                                        const ReachabilityOptions& options = {});

}  // namespace upa::spn
