#include "upa/serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/serve/protocol.hpp"

namespace upa::serve {

namespace {

bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

std::string call_outcome_name(CallOutcome outcome) {
  switch (outcome) {
    case CallOutcome::kOk: return "ok";
    case CallOutcome::kRejected: return "rejected";
    case CallOutcome::kDeadline: return "deadline";
    case CallOutcome::kError: return "error";
    case CallOutcome::kTransportError: return "transport_error";
  }
  return "?";
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port,
                     double timeout_seconds, double call_timeout_seconds) {
  UPA_REQUIRE(fd_ < 0, "Client::connect called on a connected client");
  UPA_REQUIRE(timeout_seconds > 0.0, "connect timeout must be > 0");
  UPA_REQUIRE(call_timeout_seconds >= 0.0, "call timeout must be >= 0");
  if (call_timeout_seconds == 0.0) call_timeout_seconds = timeout_seconds;

  // SOCK_CLOEXEC: connections must not be inherited by children forked
  // elsewhere in the process (a leaked duplicate suppresses EOF for the
  // peer until its read timeout).
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  UPA_REQUIRE(fd >= 0,
              std::string("socket() failed: ") + std::strerror(errno));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw common::ModelError("Client host is not an IPv4 address: " + host);
  }

  // Non-blocking connect + poll gives a real timeout instead of the
  // kernel's multi-minute default.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS) {
    pollfd pfd{};
    pfd.fd = fd;
    pfd.events = POLLOUT;
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(timeout_seconds * 1000.0));
    if (ready <= 0) {
      ::close(fd);
      throw common::ModelError("connect(" + host + ":" +
                               std::to_string(port) + ") timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
    rc = err == 0 ? 0 : -1;
    errno = err;
  }
  if (rc != 0) {
    const std::string reason = std::strerror(errno);
    ::close(fd);
    throw common::ModelError("connect(" + host + ":" + std::to_string(port) +
                             ") failed: " + reason);
  }
  ::fcntl(fd, F_SETFL, flags);  // back to blocking

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  // A stuck server must not hang the client forever -- but the bound is
  // the caller's, not a hardcoded 30 s floor that silently swallowed
  // shorter deadline experiments.
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(call_timeout_seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (call_timeout_seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);

  fd_ = fd;
  buffer_.clear();
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

void Client::send_line(const std::string& line) {
  UPA_REQUIRE(fd_ >= 0, "Client is not connected");
  if (!send_all(fd_, line + "\n")) {
    throw common::ModelError("send failed: " +
                             std::string(std::strerror(errno)));
  }
}

std::string Client::read_line() {
  UPA_REQUIRE(fd_ >= 0, "Client is not connected");
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw common::ModelError(
          n == 0 ? "connection closed before a response line"
                 : "recv failed: " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Client::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

std::string Client::call_line(const std::string& request_line) {
  UPA_REQUIRE(fd_ >= 0, "Client is not connected");
  if (!send_all(fd_, request_line + "\n")) {
    throw common::ModelError("send failed: " +
                             std::string(std::strerror(errno)));
  }
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(0, newline);
      buffer_.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      throw common::ModelError(
          n == 0 ? "connection closed before a response line"
                 : "recv failed: " + std::string(std::strerror(errno)));
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

CallResult Client::call(const std::string& method, Json params,
                        std::uint64_t id, const TraceContext* trace) {
  Json request = Json::object();
  request.set("id", Json(static_cast<double>(id)));
  request.set("method", Json(method));
  if (!params.is_null()) request.set("params", std::move(params));
  if (trace != nullptr) request.set("trace", trace_context_json(*trace));
  try {
    return classify_response(call_line(request.dump()));
  } catch (const std::exception& e) {
    CallResult r;
    r.outcome = CallOutcome::kTransportError;
    r.error_message = e.what();
    return r;
  }
}

CallResult classify_response(const std::string& line) {
  CallResult r;
  try {
    r.envelope = parse_json(line);
  } catch (const std::exception& e) {
    r.outcome = CallOutcome::kTransportError;
    r.error_message = e.what();
    return r;
  }
  const Json* ok = r.envelope.find("ok");
  if (ok != nullptr && ok->is_bool() && ok->as_bool()) {
    r.outcome = CallOutcome::kOk;
    return r;
  }
  const Json* error = r.envelope.find("error");
  if (error != nullptr) {
    if (const Json* code = error->find("code");
        code != nullptr && code->is_number()) {
      r.code = static_cast<int>(code->as_number());
    }
    if (const Json* message = error->find("message");
        message != nullptr && message->is_string()) {
      r.error_message = message->as_string();
    }
  }
  switch (r.code) {
    case ErrorCode::kQueueFull: r.outcome = CallOutcome::kRejected; break;
    case ErrorCode::kDeadlineExceeded:
      r.outcome = CallOutcome::kDeadline;
      break;
    default: r.outcome = CallOutcome::kError;
  }
  return r;
}

}  // namespace upa::serve
