#include "upa/inject/fault_plan.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::inject {

std::string fault_target_name(FaultTarget t) {
  switch (t) {
    case FaultTarget::kInternet: return "internet";
    case FaultTarget::kLan: return "lan";
    case FaultTarget::kWebFarm: return "web-farm";
    case FaultTarget::kApplication: return "application";
    case FaultTarget::kDatabase: return "database";
    case FaultTarget::kDisks: return "disks";
    case FaultTarget::kFlight: return "flight";
    case FaultTarget::kHotel: return "hotel";
    case FaultTarget::kCar: return "car";
    case FaultTarget::kPayment: return "payment";
  }
  UPA_ASSERT(false);
  return {};
}

FaultTarget fault_target_from_name(const std::string& name) {
  for (FaultTarget t : kAllFaultTargets) {
    if (fault_target_name(t) == name) return t;
  }
  std::string valid;
  for (FaultTarget t : kAllFaultTargets) {
    if (!valid.empty()) valid += ", ";
    valid += fault_target_name(t);
  }
  throw upa::common::ModelError("unknown fault target '" + name +
                                "' (valid: " + valid + ")");
}

FaultPlan& FaultPlan::add(FaultTarget target, double start_hours,
                          double duration_hours) {
  return add(FaultWindow{target, start_hours, duration_hours});
}

FaultPlan& FaultPlan::add(const FaultWindow& window) {
  UPA_REQUIRE(std::isfinite(window.start_hours) && window.start_hours >= 0.0,
              "fault window start must be finite and non-negative");
  UPA_REQUIRE(
      std::isfinite(window.duration_hours) && window.duration_hours > 0.0,
      "fault window duration must be finite and positive");
  windows_.push_back(window);
  return *this;
}

void FaultPlan::validate(double horizon_hours) const {
  UPA_REQUIRE(std::isfinite(horizon_hours) && horizon_hours > 0.0,
              "fault plan horizon must be positive");
  for (const FaultWindow& w : windows_) {
    UPA_REQUIRE(w.end_hours() <= horizon_hours,
                "fault window on " + fault_target_name(w.target) +
                    " ends at " + std::to_string(w.end_hours()) +
                    " h, past the horizon " + std::to_string(horizon_hours) +
                    " h");
  }
}

bool FaultPlan::forced_down(FaultTarget target, double t) const {
  for (const FaultWindow& w : windows_) {
    if (w.target == target && t >= w.start_hours && t < w.end_hours()) {
      return true;
    }
  }
  return false;
}

std::vector<std::pair<double, double>> FaultPlan::merged_windows(
    FaultTarget target) const {
  std::vector<std::pair<double, double>> intervals;
  for (const FaultWindow& w : windows_) {
    if (w.target == target) {
      intervals.emplace_back(w.start_hours, w.end_hours());
    }
  }
  std::sort(intervals.begin(), intervals.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& [start, end] : intervals) {
    if (!merged.empty() && start <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, end);
    } else {
      merged.emplace_back(start, end);
    }
  }
  return merged;
}

double FaultPlan::down_fraction(FaultTarget target,
                                double horizon_hours) const {
  UPA_REQUIRE(std::isfinite(horizon_hours) && horizon_hours > 0.0,
              "fault plan horizon must be positive");
  double down = 0.0;
  for (const auto& [start, end] : merged_windows(target)) {
    const double lo = std::min(start, horizon_hours);
    const double hi = std::min(end, horizon_hours);
    down += hi - lo;
  }
  return down / horizon_hours;
}

}  // namespace upa::inject
