// Boundary-condition tests across modules: minimal sizes, degenerate
// parameters, and extreme rate regimes that stress numerical robustness.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/faulttree/importance.hpp"
#include "upa/profile/session_graph.hpp"
#include "upa/queueing/mm1.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/rbd/block.hpp"
#include "upa/rbd/paths.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"

namespace uc = upa::core;
namespace uq = upa::queueing;
namespace ut = upa::ta;
using upa::common::ModelError;

TEST(EdgeCases, QueueWithCapacityOne) {
  // M/M/1/1 = Erlang loss with one server: p_1 = rho / (1 + rho).
  const double rho = 0.7;
  EXPECT_NEAR(uq::mm1k_loss_probability(70.0, 100.0, 1), rho / (1.0 + rho),
              1e-12);
  const auto m = uq::mm1k_metrics(70.0, 100.0, 1);
  EXPECT_NEAR(m.mean_in_system, rho / (1.0 + rho), 1e-12);
}

TEST(EdgeCases, ExtremeLoads) {
  // rho -> 0: loss vanishes; rho -> infinity: loss -> 1 - nu*c/alpha.
  EXPECT_LT(uq::mmck_loss_probability(1e-3, 100.0, 2, 10), 1e-20);
  const double heavy = uq::mmck_loss_probability(1e5, 100.0, 2, 10);
  EXPECT_NEAR(heavy, 1.0 - 200.0 / 1e5, 1e-6);
}

TEST(EdgeCases, FarmWithOneServerImperfect) {
  // N_W = 1 with imperfect coverage: an uncovered failure detours through
  // y_1 (mean 1/beta) instead of direct repair (mean 1/mu).
  uc::WebFarmParams farm{1, 1e-2, 1.0, 0.9, 12.0};
  uc::WebQueueParams queue{50.0, 100.0, 10};
  const double a_imp = uc::web_service_availability_imperfect(farm, queue);
  const double a_perf = uc::web_service_availability_perfect(farm, queue);
  EXPECT_LT(a_imp, a_perf);
  // Both close to the two-state bound times (1 - p_K).
  EXPECT_GT(a_imp, 0.97);
}

TEST(EdgeCases, ZeroCoverageFarm) {
  // c = 0: every failure requires manual reconfiguration.
  uc::WebFarmParams farm{3, 1e-3, 1.0, 0.0, 12.0};
  const auto dist = uc::imperfect_coverage_distribution(farm);
  // Chain structure: transitions into i-1 only via y_i. Distribution
  // still normalizes and availability is below the perfect variant.
  double sum = 0.0;
  for (double p : dist.operational) sum += p;
  for (double p : dist.manual) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  uc::WebQueueParams queue{100.0, 100.0, 10};
  EXPECT_LT(uc::web_service_availability_imperfect(farm, queue),
            uc::web_service_availability_perfect(farm, queue));
}

TEST(EdgeCases, TinyFailureRates) {
  // lambda = 1e-12/h: availability indistinguishable from the queue-only
  // bound; no numerical blowup in the log-domain product form.
  uc::WebFarmParams farm{10, 1e-12, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{100.0, 100.0, 10};
  const double a = uc::web_service_availability_imperfect(farm, queue);
  const double queue_only =
      1.0 - uq::mmck_loss_probability(100.0, 100.0, 10, 10);
  EXPECT_NEAR(a, queue_only, 1e-9);
}

TEST(EdgeCases, HugeFarm) {
  // 100 servers, buffer 100: still stable numerically.
  uc::WebFarmParams farm{100, 1e-4, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{100.0, 100.0, 100};
  const double a = uc::web_service_availability_imperfect(farm, queue);
  EXPECT_GT(a, 0.99);
  EXPECT_LE(a, 1.0);
}

TEST(EdgeCases, SingleFunctionProfile) {
  const auto profile = upa::profile::SessionGraphBuilder()
                           .add_function("Only")
                           .transition("Start", "Only", 1.0)
                           .transition("Only", "Exit", 1.0)
                           .build();
  EXPECT_NEAR(profile.expected_visits(0), 1.0, 1e-12);
  EXPECT_NEAR(profile.mean_session_length(), 1.0, 1e-12);
  EXPECT_NEAR(upa::profile::visited_exactly_probability(profile, {0}), 1.0,
              1e-12);
}

TEST(EdgeCases, DegenerateAvailabilities) {
  // A service with availability 0 or 1 propagates exactly.
  auto p = ut::TaParameters::paper_defaults();
  p.a_payment = 0.0;
  const auto breakdown = ut::category_breakdown(ut::UserClass::kB, p);
  // Every pay scenario fails: UA(SC4) = full pay mass.
  EXPECT_NEAR(breakdown.unavailability.at(ut::ScenarioCategory::kSC4),
              0.203, 1e-12);
  p.a_payment = 1.0;
  const auto perfect = ut::category_breakdown(ut::UserClass::kB, p);
  // SC4 and SC3 now fail identically (payment no longer matters).
  const double sc3_rate =
      perfect.unavailability.at(ut::ScenarioCategory::kSC3) / 0.149;
  const double sc4_rate =
      perfect.unavailability.at(ut::ScenarioCategory::kSC4) / 0.203;
  EXPECT_NEAR(sc3_rate, sc4_rate, 1e-12);
}

TEST(EdgeCases, RbdSingleComponent) {
  const auto block = upa::rbd::Block::component("x");
  EXPECT_NEAR(upa::rbd::availability(block, {{"x", 0.42}}), 0.42, 1e-15);
  EXPECT_EQ(upa::rbd::minimal_path_sets(block).size(), 1u);
  EXPECT_EQ(upa::rbd::minimal_cut_sets(block).size(), 1u);
}

TEST(EdgeCases, KofNExtremes) {
  using upa::rbd::Block;
  std::vector<Block> parts{Block::component("a"), Block::component("b"),
                           Block::component("c")};
  const upa::rbd::ParamMap params{{"a", 0.9}, {"b", 0.8}, {"c", 0.7}};
  // 1-of-n == parallel, n-of-n == series.
  EXPECT_NEAR(upa::rbd::availability(Block::k_of_n(1, parts), params),
              upa::rbd::availability(Block::parallel(parts), params),
              1e-15);
  EXPECT_NEAR(upa::rbd::availability(Block::k_of_n(3, parts), params),
              upa::rbd::availability(Block::series(parts), params), 1e-15);
}

TEST(EdgeCases, FaultTreeImportanceRanking) {
  // top = OR(shared, AND(x, y)): the shared single-event cut dominates.
  upa::faulttree::FaultTree tree;
  const auto shared = tree.add_basic_event("shared", 0.01);
  const auto x = tree.add_basic_event("x", 0.2);
  const auto y = tree.add_basic_event("y", 0.2);
  const auto pair = tree.add_and({x, y});
  tree.add_or({shared, pair});
  const auto ranking = upa::faulttree::event_importance_ranking(tree);
  ASSERT_EQ(ranking.size(), 3u);
  EXPECT_EQ(ranking[0].event, "shared");
  // Birnbaum of "shared": 1 - P(AND) = 1 - 0.04.
  EXPECT_NEAR(ranking[0].birnbaum, 0.96, 1e-12);
  // FV of x == FV of y by symmetry.
  double fv_x = 0.0;
  double fv_y = 0.0;
  for (const auto& imp : ranking) {
    if (imp.event == "x") fv_x = imp.fussell_vesely;
    if (imp.event == "y") fv_y = imp.fussell_vesely;
  }
  EXPECT_NEAR(fv_x, fv_y, 1e-12);
  EXPECT_GT(fv_x, 0.0);
}

TEST(EdgeCases, BufferEqualsServerCount) {
  // K = N_W: no waiting room at all (pure loss farm).
  uc::WebFarmParams farm{4, 1e-4, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{100.0, 100.0, 4};
  const double a = uc::web_service_availability_imperfect(farm, queue);
  // Erlang-B blocking at a = 1 erlang, 4 servers ~ 0.0154.
  EXPECT_NEAR(1.0 - a, 0.01538, 5e-4);
}

TEST(EdgeCases, UserAvailabilityDegradesGracefullyAtNetZero) {
  auto p = ut::TaParameters::paper_defaults();
  p.a_net = 0.0;
  EXPECT_NEAR(ut::user_availability_eq10(ut::UserClass::kA, p), 0.0, 1e-15);
  EXPECT_NEAR(ut::user_availability_hierarchical(ut::UserClass::kA, p), 0.0,
              1e-15);
}
