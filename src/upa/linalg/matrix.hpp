#pragma once
// Dense row-major matrix / vector algebra. Built from scratch (the target
// environment has no Eigen); sized for dependability models, i.e. matrices
// up to a few thousand states solved by direct LU and vector arithmetic.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace upa::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Regular value type: copyable,
/// movable, equality-comparable; throws ModelError on shape mismatches.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer lists; all rows must have equal width.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Checked element access; throws ModelError when out of range.
  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] std::span<const double> row(std::size_t r) const;

  [[nodiscard]] Matrix transposed() const;

  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  Matrix& operator*=(double scalar) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) {
    lhs += rhs;
    return lhs;
  }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) {
    lhs -= rhs;
    return lhs;
  }
  friend Matrix operator*(Matrix lhs, double scalar) noexcept {
    lhs *= scalar;
    return lhs;
  }
  friend Matrix operator*(double scalar, Matrix rhs) noexcept {
    rhs *= scalar;
    return rhs;
  }

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Matrix product; throws ModelError on incompatible shapes.
[[nodiscard]] Matrix operator*(const Matrix& a, const Matrix& b);

/// y = A x (matrix * column vector).
[[nodiscard]] Vector operator*(const Matrix& a, const Vector& x);

/// y = x^T A (row vector * matrix) — the natural operation for
/// probability-vector iteration pi' = pi P.
[[nodiscard]] Vector left_multiply(const Vector& x, const Matrix& a);

[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
[[nodiscard]] double norm_inf(std::span<const double> v) noexcept;
[[nodiscard]] double norm_1(std::span<const double> v) noexcept;

/// Largest |a_ij - b_ij|; throws on shape mismatch.
[[nodiscard]] double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace upa::linalg
