#include "upa/serve/anti_entropy.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/json.hpp"

namespace upa::serve {

namespace {

std::atomic<AntiEntropyAgent*> g_agent{nullptr};

/// Splits "host:port"; throws ModelError on a malformed address.
void parse_peer(const std::string& peer, std::string* host,
                std::uint16_t* port) {
  const auto colon = peer.rfind(':');
  UPA_REQUIRE(colon != std::string::npos && colon > 0 &&
                  colon + 1 < peer.size(),
              "peer must be host:port, got '" + peer + "'");
  *host = peer.substr(0, colon);
  const long value = std::strtol(peer.c_str() + colon + 1, nullptr, 10);
  UPA_REQUIRE(value > 0 && value <= 65535,
              "peer port out of range in '" + peer + "'");
  *port = static_cast<std::uint16_t>(value);
}

}  // namespace

AntiEntropyAgent::AntiEntropyAgent(AntiEntropyConfig config)
    : config_(std::move(config)) {}

AntiEntropyAgent::~AntiEntropyAgent() { stop(); }

void AntiEntropyAgent::start() {
  if (loop_.joinable() || config_.peers.empty()) return;
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    stop_ = false;
  }
  loop_ = std::thread([this] {
    std::size_t next_peer = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(loop_mutex_);
        loop_cv_.wait_for(lock, config_.interval, [this] { return stop_; });
        if (stop_) return;
      }
      (void)run_round(next_peer++);
    }
  });
}

void AntiEntropyAgent::stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    stop_ = true;
  }
  loop_cv_.notify_all();
  if (loop_.joinable()) loop_.join();
}

bool AntiEntropyAgent::run_round(std::size_t peer_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rounds;
  }
  try {
    const std::string& peer = config_.peers[peer_index % config_.peers.size()];
    std::string host;
    std::uint16_t port = 0;
    parse_peer(peer, &host, &port);

    Client client;
    client.connect(host, port, config_.connect_timeout_seconds);

    // Step 0: O(1) convergence check. A fingerprint mismatch (or a peer
    // that predates the op and errors on it) falls through to the pull.
    {
      const cache::DigestFingerprint mine =
          cache::digest_fingerprint(cache::global());
      Json params = Json::object();
      params.set("op", Json(std::string("fingerprint")));
      const CallResult reply = client.call("cache", std::move(params));
      const Json* result = reply.ok() ? reply.result() : nullptr;
      const Json* count =
          result != nullptr ? result->find("digest_count") : nullptr;
      const Json* fold =
          result != nullptr ? result->find("fingerprint_hex") : nullptr;
      if (count != nullptr && count->is_number() && fold != nullptr &&
          fold->is_string()) {
        cache::DigestFingerprint theirs;
        theirs.count = static_cast<std::uint64_t>(count->as_number());
        const std::vector<std::uint64_t> decoded =
            cache::decode_digests(cache::from_hex(fold->as_string()));
        UPA_REQUIRE(decoded.size() == 1,
                    "peer fingerprint_hex must be 16 hex chars");
        theirs.fold = decoded.front();
        if (theirs == mine) {
          std::lock_guard<std::mutex> lock(mutex_);
          ++stats_.pulls_ok;
          ++stats_.rounds_converged;
          return true;
        }
      }
    }

    const std::string have_hex = cache::to_hex(
        cache::encode_digests(cache::digest_summary(cache::global())));

    // Steps 2-4: pull the delta in bounded pages over the kept-alive
    // connection. A peer that ignores max_bytes answers one unpaged
    // blob whose reply lacks `complete`; that imports as a single page.
    std::uint64_t pulled = 0;
    std::uint64_t pages = 0;
    std::string cursor_hex;
    for (;;) {
      Json params = Json::object();
      params.set("op", Json(std::string("pull")));
      params.set("have_hex", Json(have_hex));
      if (config_.max_pull_bytes > 0) {
        params.set("max_bytes",
                   Json(static_cast<double>(config_.max_pull_bytes)));
      }
      if (!cursor_hex.empty()) params.set("cursor", Json(cursor_hex));
      const CallResult reply = client.call("cache", std::move(params));
      if (!reply.ok()) {
        throw common::ModelError("cache pull failed: " +
                                 reply.error_message);
      }
      const Json* result = reply.result();
      const Json* segment_hex =
          result != nullptr ? result->find("segment_hex") : nullptr;
      UPA_REQUIRE(segment_hex != nullptr && segment_hex->is_string(),
                  "cache pull reply lacks segment_hex");

      const std::string blob = cache::from_hex(segment_hex->as_string());
      cache::ImportStats imported;
      if (cache::PersistentCache* tier = cache::global_persistence()) {
        imported = tier->import_blob(blob);
      } else {
        imported = cache::import_segment_blob(cache::global(), blob);
      }
      UPA_REQUIRE(!imported.segment_rejected,
                  "peer delta rejected: version/tag mismatch");
      pulled += imported.records_seeded;
      ++pages;

      const Json* complete = result->find("complete");
      if (complete == nullptr || !complete->is_bool() ||
          complete->as_bool()) {
        break;
      }
      const Json* next_cursor = result->find("next_cursor");
      UPA_REQUIRE(next_cursor != nullptr && next_cursor->is_string(),
                  "incomplete pull reply lacks next_cursor");
      UPA_REQUIRE(next_cursor->as_string() != cursor_hex,
                  "pull cursor did not advance");
      cursor_hex = next_cursor->as_string();
    }

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pulls_ok;
    stats_.records_pulled += pulled;
    stats_.pages_pulled += pages;
    return true;
  } catch (const std::exception&) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pull_errors;
    return false;
  }
}

AntiEntropyStats AntiEntropyAgent::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

AntiEntropyAgent* global_anti_entropy() noexcept {
  return g_agent.load(std::memory_order_acquire);
}

void set_global_anti_entropy(AntiEntropyAgent* agent) noexcept {
  g_agent.store(agent, std::memory_order_release);
}

}  // namespace upa::serve
