#pragma once
// Generalized stochastic Petri nets: places, timed (exponential) and
// immediate transitions, input/output/inhibitor arcs. A GSPN gives a
// second, structurally different specification of the paper's web-farm
// failure/repair/coverage process; the reachability module converts it to
// a CTMC so both routes must agree.

#include <cstddef>
#include <string>
#include <vector>

namespace upa::spn {

/// A marking: token count per place, indexed by place id.
using Marking = std::vector<int>;

using PlaceId = std::size_t;
using TransitionId = std::size_t;

enum class TransitionKind { kTimed, kImmediate };

/// Firing-rate semantics for timed transitions.
enum class ServerSemantics {
  kSingleServer,    ///< rate is constant while enabled
  kInfiniteServer,  ///< rate scales with the enabling degree
};

/// A GSPN under construction; immutable once analysis starts (analysis
/// functions take it by const&).
class PetriNet {
 public:
  PlaceId add_place(std::string name, int initial_tokens = 0);

  TransitionId add_timed_transition(
      std::string name, double rate,
      ServerSemantics semantics = ServerSemantics::kSingleServer);

  /// Immediate transitions fire in zero time; among enabled immediates the
  /// choice is probabilistic by weight.
  TransitionId add_immediate_transition(std::string name, double weight = 1.0);

  void add_input_arc(TransitionId t, PlaceId p, int multiplicity = 1);
  void add_output_arc(TransitionId t, PlaceId p, int multiplicity = 1);
  /// Inhibitor arc: transition disabled when the place holds at least
  /// `multiplicity` tokens.
  void add_inhibitor_arc(TransitionId t, PlaceId p, int multiplicity = 1);

  [[nodiscard]] std::size_t place_count() const noexcept {
    return places_.size();
  }
  [[nodiscard]] std::size_t transition_count() const noexcept {
    return transitions_.size();
  }
  [[nodiscard]] const std::string& place_name(PlaceId p) const;
  [[nodiscard]] const std::string& transition_name(TransitionId t) const;
  [[nodiscard]] TransitionKind transition_kind(TransitionId t) const;

  [[nodiscard]] Marking initial_marking() const;

  [[nodiscard]] bool is_enabled(TransitionId t, const Marking& m) const;

  /// Enabling degree: how many times t could fire back-to-back from m
  /// (infinite-server semantics multiplies the rate by this).
  [[nodiscard]] int enabling_degree(TransitionId t, const Marking& m) const;

  /// Effective firing rate (timed) or weight (immediate) in marking m;
  /// transition must be enabled.
  [[nodiscard]] double effective_rate(TransitionId t, const Marking& m) const;

  /// Marking after firing t from m (t must be enabled).
  [[nodiscard]] Marking fire(TransitionId t, const Marking& m) const;

  /// Transitions eligible to fire from m: when any immediate transition is
  /// enabled, only immediates are returned (vanishing marking), otherwise
  /// the enabled timed transitions.
  [[nodiscard]] std::vector<TransitionId> eligible_transitions(
      const Marking& m) const;

  /// True when some enabled transition in m is immediate.
  [[nodiscard]] bool is_vanishing(const Marking& m) const;

 private:
  struct Arc {
    PlaceId place;
    int multiplicity;
  };
  struct Transition {
    std::string name;
    TransitionKind kind;
    double rate_or_weight;
    ServerSemantics semantics;
    std::vector<Arc> inputs;
    std::vector<Arc> outputs;
    std::vector<Arc> inhibitors;
  };
  struct Place {
    std::string name;
    int initial;
  };

  void check_place(PlaceId p) const;
  void check_transition(TransitionId t) const;

  std::vector<Place> places_;
  std::vector<Transition> transitions_;
};

}  // namespace upa::spn
