#pragma once
// Markov reward models. The paper's composite performance-availability
// measure (eqs. 5/9: availability = 1 - sum_i pi_i * loss_i - pi_down) is a
// steady-state expected reward with reward(state) = service probability in
// that state; this module provides that evaluation generically.

#include <vector>

#include "upa/markov/ctmc.hpp"

namespace upa::markov {

/// A CTMC plus a per-state reward rate.
class RewardModel {
 public:
  RewardModel(Ctmc chain, std::vector<double> rewards);

  [[nodiscard]] const Ctmc& chain() const noexcept { return chain_; }
  [[nodiscard]] const std::vector<double>& rewards() const noexcept {
    return rewards_;
  }

  /// Steady-state expected reward rate: sum_i pi_i r_i.
  [[nodiscard]] double steady_state_reward() const;

  /// Expected reward rate at time t starting from `initial`.
  [[nodiscard]] double transient_reward(linalg::Vector initial,
                                        double t) const;

  /// Expected accumulated reward over [0, t] divided by t (time-averaged),
  /// the Meyer performability measure for an interval.
  [[nodiscard]] double interval_reward(linalg::Vector initial, double t,
                                       std::size_t steps = 200) const;

 private:
  Ctmc chain_;
  std::vector<double> rewards_;
};

}  // namespace upa::markov
