#pragma once
// Discrete-time Markov chains: stationary distributions and absorbing-chain
// analysis (fundamental matrix, expected visit counts, absorption
// probabilities). The operational-profile module derives the paper's
// Table 1 scenario probabilities from a session DTMC through this API.

#include <cstddef>
#include <string>
#include <vector>

#include "upa/linalg/matrix.hpp"

namespace upa::markov {

/// Immutable row-stochastic DTMC over dense state indices.
class Dtmc {
 public:
  /// Validates row-stochasticity to `tol` (throws ModelError otherwise)
  /// and renormalizes each row exactly.
  explicit Dtmc(linalg::Matrix transition, double tol = 1e-9);

  [[nodiscard]] std::size_t state_count() const noexcept {
    return p_.rows();
  }
  [[nodiscard]] const linalg::Matrix& transition_matrix() const noexcept {
    return p_;
  }
  [[nodiscard]] double probability(std::size_t from, std::size_t to) const {
    return p_.at(from, to);
  }

  /// Stationary pi = pi P (dense LU; requires irreducibility).
  [[nodiscard]] linalg::Vector stationary_distribution() const;

  /// n-step distribution from an initial distribution.
  [[nodiscard]] linalg::Vector distribution_after(
      linalg::Vector initial, std::size_t steps) const;

  /// True when `state` is absorbing (P[s][s] == 1).
  [[nodiscard]] bool is_absorbing(std::size_t state) const;

 private:
  linalg::Matrix p_;
};

/// Analysis of a DTMC with one or more absorbing states.
/// Exposes the textbook quantities built on the fundamental matrix
/// N = (I - Q)^{-1} over transient states.
class AbsorbingChainAnalysis {
 public:
  AbsorbingChainAnalysis(const Dtmc& chain,
                         std::vector<std::size_t> absorbing_states);

  /// Expected number of visits to transient state `to` before absorption,
  /// starting in transient state `from` (entry N[from][to]).
  [[nodiscard]] double expected_visits(std::size_t from, std::size_t to) const;

  /// Expected number of steps before absorption starting from `from`.
  [[nodiscard]] double expected_steps_to_absorption(std::size_t from) const;

  /// Probability of eventually being absorbed in `target` starting from
  /// transient state `from` (entry of B = N R).
  [[nodiscard]] double absorption_probability(std::size_t from,
                                              std::size_t target) const;

  [[nodiscard]] const std::vector<std::size_t>& transient_states() const {
    return transient_states_;
  }

 private:
  [[nodiscard]] std::size_t transient_index(std::size_t state) const;
  [[nodiscard]] std::size_t absorbing_index(std::size_t state) const;

  std::vector<std::size_t> transient_states_;
  std::vector<std::size_t> absorbing_states_;
  std::vector<std::size_t> index_of_state_;  // into whichever list
  std::vector<bool> is_absorbing_;
  linalg::Matrix fundamental_;  // N
  linalg::Matrix absorption_;   // B = N R
};

}  // namespace upa::markov
