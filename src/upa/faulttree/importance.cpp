#include "upa/faulttree/importance.hpp"

#include <algorithm>

#include "upa/common/error.hpp"
#include "upa/faulttree/bdd.hpp"

namespace upa::faulttree {

std::vector<EventImportance> event_importance_ranking(
    const FaultTree& tree) {
  CompiledTree compiled = compile_to_bdd(tree);
  BddManager& mgr = compiled.manager;

  std::vector<double> probabilities;
  probabilities.reserve(tree.basic_event_count());
  for (NodeId e : tree.basic_events()) {
    probabilities.push_back(tree.event_probability(e));
  }
  const double p_top = mgr.probability(compiled.top, probabilities);

  std::vector<EventImportance> result;
  for (std::size_t v = 0; v < tree.basic_event_count(); ++v) {
    const NodeId event = tree.basic_events()[v];
    EventImportance imp;
    imp.event = tree.event_name(event);

    std::vector<double> conditioned = probabilities;
    conditioned[v] = 1.0;
    const double with_event = mgr.probability(compiled.top, conditioned);
    conditioned[v] = 0.0;
    const double without_event = mgr.probability(compiled.top, conditioned);

    imp.birnbaum = with_event - without_event;
    imp.criticality =
        p_top > 0.0 ? imp.birnbaum * probabilities[v] / p_top : 0.0;
    imp.fussell_vesely = p_top > 0.0 ? 1.0 - without_event / p_top : 0.0;
    result.push_back(imp);
  }
  std::sort(result.begin(), result.end(),
            [](const EventImportance& a, const EventImportance& b) {
              return a.birnbaum > b.birnbaum;
            });
  return result;
}

}  // namespace upa::faulttree
