#pragma once
// Hierarchical trace spans mirroring the paper's modeling hierarchy:
// a user session contains function invocations, which contain service
// calls -- plus solver-stage and simulator-event-batch spans for the
// numeric machinery underneath. Spans carry explicit start/end stamps in
// one of two clock domains: model time (simulated hours) for everything
// the discrete-event world does, and wall time (seconds since the tracer
// was created) for solver work. Exporters (see export.hpp) turn the span
// table into JSON-lines or a Chrome trace-event file.

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace upa::obs {

/// What a span models. The first three mirror the paper's user ->
/// function -> service levels; the rest instrument the machinery.
enum class SpanLevel {
  kSession,             ///< one user session through the operational profile
  kFunctionInvocation,  ///< one function invocation (incl. its retries)
  kServiceCall,         ///< one service consulted by an invocation attempt
  kSolverStage,         ///< one stage of a numeric solve (wall domain)
  kSimEventBatch,       ///< one Engine run_until/run_all batch
  kCampaignPlan,        ///< one fault-injection campaign plan (wall domain)
  kCacheLookup,         ///< one EvalCache lookup (wall domain, attr hit=0/1)
  kServeRequest,        ///< one RPC request handled by upa_served (wall)
  kDispatchRequest,     ///< one client request through upa_dispatch (wall)
  kDispatchAttempt,     ///< one upstream forwarding attempt (wall)
  kServePhase,          ///< one phase of a served request (wall)
  kControlDecision,     ///< one admission-controller decision tick (wall)
};

[[nodiscard]] std::string span_level_name(SpanLevel level);

/// Clock domain of a span's start/end stamps.
enum class TimeDomain {
  kModelHours,   ///< simulated time, in hours
  kWallSeconds,  ///< real time, seconds since the tracer's epoch
};

[[nodiscard]] std::string time_domain_name(TimeDomain domain);

/// Handle to a recorded span; 0 means "no span" (dropped or no parent).
using SpanId = std::uint64_t;

/// One key/value span annotation (string or number).
struct SpanAttribute {
  std::string key;
  std::string text;     // valid when !is_number
  double number = 0.0;  // valid when is_number
  bool is_number = false;
};

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = root
  std::string name;
  SpanLevel level = SpanLevel::kSession;
  TimeDomain domain = TimeDomain::kModelHours;
  double start = 0.0;
  double end = 0.0;
  std::vector<SpanAttribute> attributes;
};

/// Append-only span table. begin() admits spans until the cap is hit,
/// after which new spans are counted as dropped and every operation on
/// the returned null id is a no-op -- a long simulation degrades to
/// truncated traces instead of unbounded memory. Ids are never reused.
class Tracer {
 public:
  explicit Tracer(std::size_t max_spans = 1u << 20);

  /// Opens a span; returns 0 (and counts a drop) once the table is full.
  SpanId begin(SpanLevel level, std::string name, double start,
               TimeDomain domain = TimeDomain::kModelHours,
               SpanId parent = 0);

  /// Closes a span at `end` (>= its start). No-op for id 0.
  void end(SpanId id, double end_time);

  /// Attaches an attribute to an open or closed span. No-op for id 0.
  void attr(SpanId id, std::string key, std::string value);
  void attr(SpanId id, std::string key, double value);

  /// All recorded spans in begin() order (open spans have end < start
  /// only if never closed; end() enforces end >= start).
  [[nodiscard]] const std::vector<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const Span& span(SpanId id) const;

  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t max_spans() const noexcept { return max_spans_; }

  /// Seconds since the tracer was constructed (the wall-domain clock).
  [[nodiscard]] double wall_now() const;

  /// An empty tracer with this tracer's span cap AND wall epoch, for one
  /// parallel worker. Wall-domain spans recorded in the shard line up on
  /// this tracer's timeline when the shard is absorbed back.
  [[nodiscard]] Tracer make_shard() const;

  /// Deterministic merge of a worker shard: shard spans are renumbered
  /// and appended in their original begin() order, parent links remapped,
  /// and capacity accounting behaves exactly as if the shard's begin()
  /// calls had been issued on this tracer directly -- spans past the cap
  /// are counted as dropped, and the shard's own dropped count carries
  /// over. Absorbing shards in a fixed order (replication index, plan
  /// index) therefore reproduces the serial span table bit for bit.
  void absorb(Tracer&& shard);

  void clear();

 private:
  std::size_t max_spans_;
  SpanId next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::vector<Span> spans_;
  std::unordered_map<SpanId, std::size_t> index_;
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII wall-domain span: begins at construction, ends at destruction.
/// Used around solver stages and campaign plans. Safe on a null tracer
/// (all operations become no-ops).
class ScopedWallSpan {
 public:
  ScopedWallSpan(Tracer* tracer, SpanLevel level, std::string name,
                 SpanId parent = 0);
  ~ScopedWallSpan();
  ScopedWallSpan(const ScopedWallSpan&) = delete;
  ScopedWallSpan& operator=(const ScopedWallSpan&) = delete;

  [[nodiscard]] SpanId id() const noexcept { return id_; }
  /// Seconds elapsed since this span began.
  [[nodiscard]] double elapsed_seconds() const;

  void attr(std::string key, std::string value);
  void attr(std::string key, double value);

 private:
  Tracer* tracer_;
  SpanId id_ = 0;
  double start_ = 0.0;
};

}  // namespace upa::obs
