// Tests for upa::queueing: M/M/1, M/M/1/K, M/M/c/K, Erlang B/C, and the
// generic birth-death queue, with parameterized cross-checks tying all of
// them together.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "upa/common/error.hpp"
#include "upa/queueing/birth_death_queue.hpp"
#include "upa/queueing/erlang.hpp"
#include "upa/queueing/mm1.hpp"
#include "upa/queueing/mmck.hpp"

namespace uq = upa::queueing;
using upa::common::ModelError;

TEST(Mm1, TextbookMetrics) {
  // rho = 0.5: L = 1, Lq = 0.5, W = 1/(nu - alpha).
  const auto m = uq::mm1_metrics(5.0, 10.0);
  EXPECT_NEAR(m.rho, 0.5, 1e-15);
  EXPECT_NEAR(m.mean_in_system, 1.0, 1e-12);
  EXPECT_NEAR(m.mean_in_queue, 0.5, 1e-12);
  EXPECT_NEAR(m.mean_response, 0.2, 1e-12);
  EXPECT_NEAR(m.mean_wait, 0.1, 1e-12);
}

TEST(Mm1, RejectsUnstableLoad) {
  EXPECT_THROW((void)uq::mm1_metrics(10.0, 10.0), ModelError);
  EXPECT_THROW((void)uq::mm1_metrics(11.0, 10.0), ModelError);
}

TEST(Mm1k, LossProbabilityPaperEquationOne) {
  // rho = 1 limit: p_K = 1 / (K + 1); the paper uses K = 10.
  EXPECT_NEAR(uq::mm1k_loss_probability(100.0, 100.0, 10), 1.0 / 11.0,
              1e-12);
  // Explicit small case rho = 0.5, K = 2: p = rho^2(1-rho)/(1-rho^3).
  EXPECT_NEAR(uq::mm1k_loss_probability(1.0, 2.0, 2),
              0.25 * 0.5 / (1.0 - 0.125), 1e-12);
}

TEST(Mm1k, MetricsInternallyConsistent) {
  const auto m = uq::mm1k_metrics(3.0, 4.0, 5);
  double sum = 0.0;
  for (double p : m.state_probabilities) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(m.blocking, m.state_probabilities.back(), 1e-15);
  EXPECT_NEAR(m.throughput, 3.0 * (1.0 - m.blocking), 1e-12);
  // Little's law: L = throughput * W.
  EXPECT_NEAR(m.mean_in_system, m.throughput * m.mean_response, 1e-12);
}

TEST(Mm1k, ApproachesMm1ForLargeBuffers) {
  const auto finite = uq::mm1k_metrics(5.0, 10.0, 200);
  const auto infinite = uq::mm1_metrics(5.0, 10.0);
  EXPECT_NEAR(finite.mean_in_system, infinite.mean_in_system, 1e-9);
  EXPECT_LT(finite.blocking, 1e-30);
}

TEST(Mmck, ReducesToMm1kForOneServer) {
  for (double alpha : {20.0, 100.0, 170.0}) {
    EXPECT_NEAR(uq::mmck_loss_probability(alpha, 100.0, 1, 10),
                uq::mm1k_loss_probability(alpha, 100.0, 10), 1e-13)
        << "alpha = " << alpha;
  }
}

TEST(Mmck, PaperEquationThreeAtRhoOne) {
  // Values computed independently (Python, exact formula) for rho = 1,
  // K = 10 -- the Fig. 11/12 configuration at alpha = nu = 100/s.
  EXPECT_NEAR(uq::mmck_loss_probability(100.0, 100.0, 1, 10), 0.0909090909,
              1e-9);
  EXPECT_NEAR(uq::mmck_loss_probability(100.0, 100.0, 2, 10),
              6.5146580e-4, 1e-9);
  EXPECT_NEAR(uq::mmck_loss_probability(100.0, 100.0, 3, 10),
              2.7712346e-5, 1e-10);
  EXPECT_NEAR(uq::mmck_loss_probability(100.0, 100.0, 4, 10),
              3.7368510e-6, 1e-11);
}

TEST(Mmck, ErlangBWhenCapacityEqualsServers) {
  // M/M/c/c: blocking equals Erlang B.
  const double alpha = 30.0;
  const double nu = 10.0;
  for (std::size_t c : {1u, 2u, 4u, 8u}) {
    EXPECT_NEAR(uq::mmck_loss_probability(alpha, nu, c, c),
                uq::erlang_b(alpha / nu, c), 1e-12)
        << "c = " << c;
  }
}

TEST(Mmck, MetricsConsistency) {
  const auto m = uq::mmck_metrics(150.0, 100.0, 3, 12);
  double sum = 0.0;
  for (double p : m.state_probabilities) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  EXPECT_NEAR(m.mean_in_system, m.mean_in_queue + m.mean_busy_servers,
              1e-12);
  EXPECT_NEAR(m.mean_in_system, m.throughput * m.mean_response, 1e-12);
  // Flow balance: accepted work equals served work.
  EXPECT_NEAR(m.throughput, 100.0 * m.mean_busy_servers, 1e-9);
}

TEST(Mmck, RejectsCapacityBelowServers) {
  EXPECT_THROW((void)uq::mmck_loss_probability(1.0, 1.0, 4, 3), ModelError);
}

TEST(Mmck, MoreServersNeverIncreaseLoss) {
  for (std::size_t i = 1; i < 10; ++i) {
    EXPECT_GE(uq::mmck_loss_probability(120.0, 100.0, i, 10),
              uq::mmck_loss_probability(120.0, 100.0, i + 1, 10));
  }
}

TEST(Mmck, ExtremeOverloadStaysFinite) {
  // rho = 1e5/100 = 1000 with K = 10000: the raw product-form weight
  // (rho/c)^j overflows double around j ~ 128 without the in-loop
  // rescale. The loss probability must come back finite and close to the
  // heavy-traffic limit 1 - c*nu/alpha (nearly every arrival is lost).
  const double pk = uq::mmck_loss_probability(1e5, 100.0, 4, 10000);
  EXPECT_TRUE(std::isfinite(pk));
  EXPECT_GT(pk, 0.0);
  EXPECT_LT(pk, 1.0);
  EXPECT_NEAR(pk, 1.0 - 4.0 * 100.0 / 1e5, 1e-6);

  const auto m = uq::mmck_metrics(1e5, 100.0, 4, 10000);
  EXPECT_TRUE(std::isfinite(m.blocking));
  EXPECT_NEAR(m.blocking, pk, 1e-15);
  // All mass piles up at the capacity boundary; every server is busy.
  EXPECT_NEAR(m.mean_busy_servers, 4.0, 1e-6);
  EXPECT_TRUE(std::isfinite(m.mean_in_system));
}

TEST(Mmck, RescaleLeavesModerateCasesUntouched) {
  // The rescale only triggers when a weight crosses 2^512; the paper's
  // operating range never gets there, so historical values must be
  // reproduced exactly (guards the bit-for-bit cache contract).
  EXPECT_EQ(uq::mmck_loss_probability(100.0, 100.0, 4, 10),
            uq::mmck_loss_probability(100.0, 100.0, 4, 10));
  // A mildly large case that does trigger rescaling still normalizes.
  const double pk = uq::mmck_loss_probability(5000.0, 100.0, 2, 500);
  EXPECT_TRUE(std::isfinite(pk));
  EXPECT_NEAR(pk, 1.0 - 2.0 * 100.0 / 5000.0, 1e-9);
}

TEST(Erlang, KnownTableValues) {
  // Classic telephony values: B(a=2, c=2) = 0.4, B(a=1, c=1) = 0.5.
  EXPECT_NEAR(uq::erlang_b(1.0, 1), 0.5, 1e-12);
  EXPECT_NEAR(uq::erlang_b(2.0, 2), 0.4, 1e-12);
  // Erlang C at a=2, c=3: known ~0.44444.
  EXPECT_NEAR(uq::erlang_c(2.0, 3), 4.0 / 9.0, 1e-9);
}

TEST(Erlang, CRequiresStability) {
  EXPECT_THROW((void)uq::erlang_c(3.0, 3), ModelError);
}

TEST(Erlang, MmcMetricsSatisfyLittle) {
  const auto m = uq::mmc_metrics(25.0, 10.0, 4);
  EXPECT_NEAR(m.mean_in_queue, 25.0 * m.mean_wait, 1e-12);
  EXPECT_NEAR(m.mean_in_system, 25.0 * m.mean_response, 1e-12);
  EXPECT_NEAR(m.mean_in_system - m.mean_in_queue, 2.5, 1e-12);
}

TEST(BirthDeathQueue, ReproducesMm1k) {
  const double alpha = 3.0;
  const double nu = 4.0;
  const auto generic = uq::solve_birth_death_queue(
      6, [&](std::size_t) { return alpha; }, [&](std::size_t) { return nu; });
  const auto closed = uq::mm1k_metrics(alpha, nu, 6);
  for (std::size_t j = 0; j <= 6; ++j) {
    EXPECT_NEAR(generic.state_probabilities[j],
                closed.state_probabilities[j], 1e-12);
  }
  EXPECT_NEAR(generic.blocking, closed.blocking, 1e-12);
  EXPECT_NEAR(generic.throughput, closed.throughput, 1e-12);
}

TEST(BirthDeathQueue, ReproducesMmck) {
  const double alpha = 180.0;
  const double nu = 100.0;
  const std::size_t c = 3;
  const auto generic = uq::solve_birth_death_queue(
      10, [&](std::size_t) { return alpha; },
      [&](std::size_t j) {
        return nu * static_cast<double>(std::min(j, c));
      });
  EXPECT_NEAR(generic.blocking, uq::mmck_loss_probability(alpha, nu, c, 10),
              1e-12);
}

TEST(BirthDeathQueue, DiscouragedArrivalsExample) {
  // lambda(j) = 2/(j+1), mu = 1, capacity 3: balking queue sanity checks.
  const auto m = uq::solve_birth_death_queue(
      3, [](std::size_t j) { return 2.0 / static_cast<double>(j + 1); },
      [](std::size_t) { return 1.0; });
  double sum = 0.0;
  for (double p : m.state_probabilities) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
  // w = {1, 2, 2, 4/3} -> p0 = 3/19.
  EXPECT_NEAR(m.state_probabilities[0], 3.0 / 19.0, 1e-12);
}

// ---------------------------------------------------------------------
// Property sweep: for every (rho, c) combination, M/M/c/K must agree with
// the generic birth-death solver, and the loss probability must decrease
// monotonically in the buffer size.
class MmckConsistency
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(MmckConsistency, AgreesWithGenericBirthDeath) {
  const auto [rho, servers] = GetParam();
  const double nu = 100.0;
  const double alpha = rho * nu;
  const std::size_t capacity = 12;
  const double closed =
      uq::mmck_loss_probability(alpha, nu, servers, capacity);
  const auto generic = uq::solve_birth_death_queue(
      capacity, [&](std::size_t) { return alpha; },
      [&](std::size_t j) {
        return nu * static_cast<double>(std::min(j, servers));
      });
  EXPECT_NEAR(closed, generic.blocking, 1e-12);
}

TEST_P(MmckConsistency, LossDecreasesWithBuffer) {
  const auto [rho, servers] = GetParam();
  const double nu = 100.0;
  const double alpha = rho * nu;
  double previous = 1.0;
  for (std::size_t k = servers; k <= servers + 8; ++k) {
    const double loss = uq::mmck_loss_probability(alpha, nu, servers, k);
    EXPECT_LE(loss, previous + 1e-15);
    previous = loss;
  }
}

INSTANTIATE_TEST_SUITE_P(
    LoadAndServers, MmckConsistency,
    ::testing::Combine(::testing::Values(0.25, 0.5, 0.9, 1.0, 1.1, 1.5, 2.5),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{4}, std::size_t{8})));
