// upa_cli: command-line front end to the travel-agency models.
//
//   upa_cli services [overrides]         service-level availabilities
//   upa_cli user     [overrides]         user-perceived availability
//   upa_cli farm     [overrides]         web-farm analysis
//   upa_cli profile  --class A|B         operational-profile statistics
//   upa_cli design   [overrides]         min servers per requirement
//   upa_cli inject   [overrides]         fault-injection campaign
//   upa_cli trace    [overrides]         instrumented run + trace/metric dumps
//   upa_cli help
//
// Common overrides (defaults = the paper's Table 7):
//   --class A|B        user class                (user/profile)
//   --n N              reservation systems per trip item
//   --nw N             web servers
//   --lambda X         web-server failure rate [1/h]
//   --mu X             repair rate [1/h]
//   --coverage X       fault coverage c
//   --beta X           manual reconfiguration rate [1/h]
//   --alpha X          request arrival rate [1/s]
//   --nu X             per-server service rate [1/s]
//   --buffer K         request buffer size
//   --deadline T       response-time threshold [s] (farm)
//   --basic            basic architecture (Figure 7)
//   --perfect          perfect fault coverage
//   --target-minutes M design target downtime minutes/year (design)
//   --cache on|off     content-addressed evaluation cache (default off)

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cli/args.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/common/table.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/markov/updown.hpp"
#include "upa/obs/export.hpp"
#include "upa/obs/observer.hpp"
#include "upa/profile/visit_distribution.hpp"
#include "upa/sim/availability_sim.hpp"
#include "upa/queueing/response_time.hpp"
#include "upa/sensitivity/threshold.hpp"
#include "upa/ta/revenue.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/symbolic.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace ta = upa::ta;
namespace cm = upa::common;

ta::TaParameters params_from(const upa::cli::Args& args) {
  ta::TaParameters p = ta::TaParameters::paper_defaults();
  p = p.with_reservation_systems(args.get_size("n", 1));
  p.n_web = args.get_size("nw", p.n_web);
  p.lambda_web = args.get_double("lambda", p.lambda_web);
  p.mu_web = args.get_double("mu", p.mu_web);
  p.coverage = args.get_double("coverage", p.coverage);
  p.beta = args.get_double("beta", p.beta);
  p.alpha = args.get_double("alpha", p.alpha);
  p.nu = args.get_double("nu", p.nu);
  p.buffer = args.get_size("buffer", p.buffer);
  if (args.has("basic")) p.architecture = ta::Architecture::kBasic;
  if (args.has("perfect")) p.coverage_model = ta::CoverageModel::kPerfect;
  p.validate();
  return p;
}

ta::UserClass class_from(const upa::cli::Args& args) {
  const std::string name = args.get("class", "B");
  if (name == "A" || name == "a") return ta::UserClass::kA;
  if (name == "B" || name == "b") return ta::UserClass::kB;
  throw upa::common::ModelError("--class must be A or B, got " + name);
}

int cmd_services(const upa::cli::Args& args) {
  const auto p = params_from(args);
  const auto s = ta::compute_services(p);
  cm::Table t({"service", "availability", "downtime h/yr"});
  t.set_align(0, cm::Align::kLeft);
  auto row = [&](const char* name, double a) {
    t.add_row({name, cm::fmt(a, 9),
               cm::fmt_fixed(cm::downtime_hours_per_year(a), 2)});
  };
  row("Internet access", s.net);
  row("LAN", s.lan);
  row("Web service", s.web);
  row("Application service", s.application);
  row("Database service", s.database);
  row("Flight reservation", s.flight);
  row("Hotel reservation", s.hotel);
  row("Car reservation", s.car);
  row("Payment", s.payment);
  std::cout << t;
  return 0;
}

int cmd_user(const upa::cli::Args& args) {
  const auto p = params_from(args);
  const auto uclass = class_from(args);
  const double a = ta::user_availability_eq10(uclass, p);
  std::cout << "user-perceived availability (" << ta::user_class_name(uclass)
            << ") = " << cm::fmt(a, 8) << "\n"
            << "downtime: " << cm::fmt_fixed(cm::downtime_hours_per_year(a), 2)
            << " hours/year\n\n";
  const auto breakdown = ta::category_breakdown(uclass, p);
  cm::Table t({"scenario category", "UA contribution", "hours/yr"});
  t.set_align(0, cm::Align::kLeft);
  for (const auto& [category, ua] : breakdown.unavailability) {
    t.add_row({ta::category_name(category), cm::fmt_sci(ua, 3),
               cm::fmt_fixed(ua * 8760.0, 1)});
  }
  std::cout << t << "\n";
  const auto grad = ta::user_availability_gradient(uclass, p);
  cm::Table g({"service", "dA(user)/dA(service)"});
  g.set_align(0, cm::Align::kLeft);
  for (const auto& [name, value] : grad) g.add_row({name, cm::fmt(value, 5)});
  std::cout << g;
  return 0;
}

int cmd_farm(const upa::cli::Args& args) {
  const auto p = params_from(args);
  const auto farm = ta::web_farm_params(p);
  const auto queue = ta::web_queue_params(p);
  const bool perfect = p.coverage_model == ta::CoverageModel::kPerfect ||
                       p.architecture == ta::Architecture::kBasic;
  const double a = perfect
                       ? upa::core::web_service_availability_perfect(farm,
                                                                     queue)
                       : upa::core::web_service_availability_imperfect(
                             farm, queue);
  std::cout << "web service availability = " << cm::fmt(a, 10) << "  ("
            << cm::fmt_fixed(cm::downtime_minutes_per_year(a), 2)
            << " min downtime/yr)\n";
  if (args.has("deadline")) {
    const double tau = args.get_double("deadline", 0.1);
    const double ad =
        perfect ? upa::core::web_service_availability_perfect_with_deadline(
                      farm, queue, tau)
                : upa::core::web_service_availability_imperfect_with_deadline(
                      farm, queue, tau);
    std::cout << "with " << cm::fmt(tau * 1000.0, 4)
              << " ms deadline          = " << cm::fmt(ad, 10) << "\n"
              << "P(T > deadline | served)   = "
              << cm::fmt_sci(upa::queueing::mmck_response_time_tail(
                                 p.alpha, p.nu, farm.servers, p.buffer, tau),
                             3)
              << "\n";
  }
  if (!perfect) {
    const auto chain = upa::core::imperfect_coverage_chain(farm);
    std::vector<std::size_t> up;
    for (std::size_t i = 1; i <= farm.servers; ++i) up.push_back(i);
    const auto eq = upa::markov::up_down_measures(chain.chain, up);
    std::cout << "equivalent component: MUT = " << cm::fmt_sci(eq.mean_up_time, 3)
              << " h, MDT = " << cm::fmt(eq.mean_down_time, 4) << " h\n";
  }
  return 0;
}

int cmd_profile(const upa::cli::Args& args) {
  const auto uclass = class_from(args);
  const auto profile = ta::fitted_session_graph(uclass);
  std::cout << "fitted session graph, " << ta::user_class_name(uclass)
            << " (dot below)\n\n";
  cm::Table t({"function", "E[visits]", "P(invoked)", "P(revisit)"});
  t.set_align(0, cm::Align::kLeft);
  for (std::size_t f = 0; f < profile.function_count(); ++f) {
    const auto law = upa::profile::visit_law(profile, f);
    t.add_row({profile.function_name(f),
               cm::fmt(profile.expected_visits(f), 4),
               cm::fmt(law.reach_probability, 4),
               cm::fmt(law.return_probability, 4)});
  }
  std::cout << t << "\nmean session length = "
            << cm::fmt(profile.mean_session_length(), 4) << " functions\n\n"
            << profile.to_dot();
  return 0;
}

int cmd_design(const upa::cli::Args& args) {
  const auto base = params_from(args);
  const double minutes = args.get_double("target-minutes", 5.0);
  const double target_a =
      upa::sensitivity::availability_for_downtime_minutes_per_year(minutes);
  const auto region =
      upa::sensitivity::satisfying_set(1, 16, [&](std::size_t n) {
        auto p = base;
        p.n_web = n;
        p.buffer = std::max(p.buffer, n);
        return ta::web_service_availability(p) >= target_a;
      });
  std::cout << "target: <= " << cm::fmt(minutes, 4)
            << " min downtime/yr (A >= " << cm::fmt(target_a, 8) << ")\n";
  if (region.empty()) {
    std::cout << "infeasible with 1..16 web servers; reduce lambda or the "
                 "load.\n";
    return 1;
  }
  std::cout << "feasible web-server counts:";
  for (std::size_t n : region) std::cout << " " << n;
  std::cout << "\nminimum: " << region.front() << " servers\n";
  return 0;
}

int cmd_inject(const upa::cli::Args& args) {
  namespace inj = upa::inject;
  const auto p = params_from(args);
  const auto uclass = class_from(args);

  upa::ta::EndToEndOptions options;
  options.horizon_hours = args.get_double("horizon", 20000.0);
  options.think_time_hours = args.get_double("think", 0.0);
  options.sessions_per_replication = args.get_size("sessions", 20000);
  options.replications = args.get_size("reps", 4);
  options.seed = args.get_size("seed", 42);
  options.threads = args.get_size("threads", 0);
  options.retry.max_retries = args.get_size("retries", 0);
  options.retry.backoff_base_hours = args.get_double("backoff", 0.25);
  options.retry.backoff_multiplier = args.get_double("backoff-mult", 2.0);
  options.retry.response_timeout_seconds =
      args.get_double("timeout-ms", 0.0) / 1000.0;
  options.retry.abandonment_probability = args.get_double("abandon", 0.0);

  const auto target =
      inj::fault_target_from_name(args.get("target", "web-farm"));
  const double start = args.get_double("outage-start", 1000.0);
  const double duration = args.get_double("outage-hours", 2.0);

  std::vector<inj::CampaignPlan> plans;
  plans.push_back({inj::fault_target_name(target) + " outage " +
                       cm::fmt(duration, 4) + " h",
                   inj::scripted_outage(target, start, duration,
                                        options.horizon_hours)});

  inj::CampaignOptions campaign_options;
  campaign_options.end_to_end = options;
  campaign_options.threads = options.threads;
  const auto campaign = inj::run_campaign(uclass, p, campaign_options, plans);

  std::cout << "fault-injection campaign, "
            << upa::ta::user_class_name(uclass) << ", R = "
            << options.retry.max_retries << " retries\n"
            << "analytic eq. (10)          = "
            << cm::fmt(upa::ta::user_availability_eq10(uclass, p), 8) << "\n"
            << "retry-adjusted (indep.)    = "
            << cm::fmt(upa::ta::user_availability_with_retries(
                           uclass, p, options.retry),
                       8)
            << "\n\n";
  cm::Table t({"plan", "A(user)", "95% CI +/-", "delta", "A(WS) observed",
               "retries/session", "abandoned"});
  t.set_align(0, cm::Align::kLeft);
  for (const auto& e : campaign.entries) {
    t.add_row({e.name, cm::fmt(e.perceived_availability.mean, 6),
               cm::fmt(e.perceived_availability.half_width, 4),
               cm::fmt(e.delta_vs_baseline, 5),
               cm::fmt(e.observed_web_service_availability, 8),
               cm::fmt(e.mean_retries_per_session, 4),
               cm::fmt(e.abandonment_fraction, 4)});
  }
  std::cout << t;
  if (args.has("csv")) {
    const std::string path = args.get("csv", "campaign.csv");
    campaign.write_csv(path);
    std::cout << "\ncampaign CSV written to " << path << "\n";
  }
  return 0;
}

int cmd_trace(const upa::cli::Args& args) {
  const auto p = params_from(args);
  const auto uclass = class_from(args);

  upa::obs::Observer observer;
  observer.trace_level =
      upa::obs::trace_level_from_name(args.get("trace-level", "service"));

  // 1. End-to-end sessions: model-time spans (session > function
  // invocation > service call) plus session/retry/deadline counters.
  upa::ta::EndToEndOptions options;
  options.horizon_hours = args.get_double("horizon", 2000.0);
  options.think_time_hours = args.get_double("think", 0.05);
  options.sessions_per_replication = args.get_size("sessions", 500);
  options.replications = args.get_size("reps", 2);
  options.seed = args.get_size("seed", 42);
  options.threads = args.get_size("threads", 0);
  options.retry.max_retries = args.get_size("retries", 2);
  options.retry.backoff_base_hours = args.get_double("backoff", 0.01);
  options.retry.response_timeout_seconds =
      args.get_double("timeout-ms", 500.0) / 1000.0;
  options.obs = &observer;
  const auto result = upa::ta::simulate_end_to_end(uclass, p, options);

  // 2. Solver stages: wall-time spans with per-stage iteration counts and
  // residuals. Solve the web-farm coverage chain both directly and with
  // the dense stage disabled, so the metrics include the iterative
  // solvers' iteration counts.
  const auto chain =
      upa::core::imperfect_coverage_chain(ta::web_farm_params(p));
  upa::markov::StationaryOptions solve;
  solve.obs = &observer;
  const auto direct = chain.chain.steady_state_robust(solve);
  solve.max_dense_states = 0;
  const auto iterative = chain.chain.steady_state_robust(solve);

  // 3. Event-engine batches: a small Monte-Carlo run so the trace also
  // shows the discrete-event engine's sim_event_batch spans.
  upa::sim::MonteCarloOptions mc;
  mc.horizon = args.get_double("horizon", 2000.0);
  mc.replications = 4;
  mc.seed = options.seed;
  mc.obs = &observer;
  const auto mc_estimate = upa::sim::simulate_system_availability(
      {{"web", p.lambda_web, p.mu_web}, {"lan", 0.001, 1.0}},
      [](const std::vector<bool>& up) { return up[0] && up[1]; }, mc);

  std::cout << "instrumented run, " << upa::ta::user_class_name(uclass)
            << ", trace level "
            << upa::obs::trace_level_name(observer.trace_level) << "\n"
            << "perceived availability     = "
            << cm::fmt(result.perceived_availability.mean, 6) << " +/- "
            << cm::fmt(result.perceived_availability.half_width, 4) << "\n"
            << "monte-carlo availability   = "
            << cm::fmt(mc_estimate.interval.mean, 6) << "\n"
            << "stationary solve           = "
            << upa::markov::stationary_method_name(direct.method) << " then "
            << upa::markov::stationary_method_name(iterative.method)
            << " (dense stage disabled)\n"
            << "spans recorded             = " << observer.tracer.spans().size()
            << " (dropped " << observer.tracer.dropped() << ")\n"
            << "metrics recorded           = "
            << observer.metrics.counters().size() << " counters, "
            << observer.metrics.gauges().size() << " gauges, "
            << observer.metrics.histograms().size() << " histograms\n";

  if (args.has("trace-out")) {
    const std::string path = args.get("trace-out", "trace.json");
    upa::obs::write_chrome_trace(observer.tracer, path);
    std::cout << "chrome trace written to    " << path
              << " (load in chrome://tracing or ui.perfetto.dev)\n";
  }
  if (args.has("spans-out")) {
    const std::string path = args.get("spans-out", "spans.jsonl");
    upa::obs::write_spans_jsonl(observer.tracer, path);
    std::cout << "span JSONL written to      " << path << "\n";
  }
  if (args.has("metrics-out")) {
    const std::string path = args.get("metrics-out", "metrics.csv");
    upa::obs::write_metrics_csv(observer.metrics, path);
    std::cout << "metrics CSV written to     " << path << "\n";
  }
  if (args.has("metrics-jsonl")) {
    const std::string path = args.get("metrics-jsonl", "metrics.jsonl");
    upa::obs::write_metrics_jsonl(observer.metrics, path);
    std::cout << "metrics JSONL written to   " << path << "\n";
  }
  return 0;
}

int cmd_help() {
  std::cout <<
      R"(upa_cli -- user-perceived availability models of the DSN'03 travel agency

usage: upa_cli <command> [--option value ...]

commands:
  services   service-level availabilities (Tables 3-5)
  user       user-perceived availability + category breakdown + gradient
  farm       web-farm composite availability (+ --deadline tau)
  profile    operational-profile statistics and dot graph
  design     minimum web servers for a downtime target
  inject     fault-injection campaign against the end-to-end simulator
  trace      instrumented end-to-end + solver run with trace/metric dumps
  help       this text

common options (defaults = paper Table 7):
  --class A|B  --n N  --nw N  --lambda X  --mu X  --coverage X  --beta X
  --alpha X  --nu X  --buffer K  --deadline T  --basic  --perfect
  --target-minutes M
  --cache on|off     content-addressed evaluation cache (default off);
                     repeated subsolves replay bit-for-bit and a hit/miss
                     summary prints after the run

inject options:
  --target NAME      fault target: internet lan web-farm application
                     database disks flight hotel car payment
  --outage-start S   outage start [h]        --outage-hours D  duration [h]
  --retries R        retry attempts          --backoff B       base wait [h]
  --backoff-mult M   backoff growth          --timeout-ms T    response deadline
  --abandon P        per-retry abandonment   --think T         think time [h]
  --threads N        worker threads (0 = hardware, 1 = serial; results are
                     bit-for-bit identical at every setting)
  --horizon H  --sessions N  --reps K  --seed S  --csv PATH
  --cache-dir DIR    persistent cache tier (inject and trace): pre-warm
                     from DIR's segments, write-behind new results, and
                     print a persistence summary; implies --cache on

trace options (plus --horizon --sessions --reps --seed --think --retries
--backoff --timeout-ms --threads as for inject):
  --trace-level L    off | session | invocation | service (default service)
  --trace-out PATH   Chrome trace-event JSON (chrome://tracing, Perfetto)
  --spans-out PATH   span JSON-lines
  --metrics-out PATH metric snapshot CSV
  --metrics-jsonl P  metric snapshot JSON-lines

companion tools (built alongside upa_cli):
  upa_served         evaluation service daemon: the models behind this CLI
                     as newline-delimited JSON RPC over TCP, with M/M/i/K
                     admission control (--workers i, --capacity K)
  upa_loadgen        load generator / client for upa_served: smoke probe,
                     open-loop Poisson loss workload vs the analytic
                     p_K(i), Table 1 session replay, BENCH_serve.json
                     design sweep (each prints --help)
)";
  return 0;
}

/// Applies --cache on|off (default: off, matching the library). Returns
/// true when the evaluation cache was turned on, so main can print the
/// hit/miss summary after the command runs.
bool apply_cache_flag(const upa::cli::Args& args) {
  if (!args.has("cache")) return false;
  const std::string mode = args.get("cache", "on");
  if (mode == "on") {
    upa::cache::set_enabled(true);
    return true;
  }
  if (mode == "off") {
    upa::cache::set_enabled(false);
    return false;
  }
  throw upa::common::ModelError("--cache must be on or off, got " + mode);
}

/// Applies --cache-dir DIR (inject/trace): attaches the persistent tier
/// to the global cache and turns caching on (a disk tier with the cache
/// off would never be read). Returns true when persistence is active,
/// so main prints the persistence exit summary.
bool apply_cache_dir_flag(const upa::cli::Args& args) {
  if (!args.has("cache-dir")) return false;
  const std::string dir = args.get("cache-dir", "");
  if (dir.empty()) {
    throw upa::common::ModelError("--cache-dir needs a directory path");
  }
  if (args.get("cache", "on") == "off") {
    throw upa::common::ModelError("--cache-dir requires --cache on");
  }
  upa::cache::set_enabled(true);
  upa::cache::attach_global_persistence(dir);
  return true;
}

/// Each subcommand's option vocabulary, used with cli::unknown_options
/// to reject a typo'd flag BEFORE the command runs. Args marks options
/// used lazily as commands read them, so an after-the-fact `unused()`
/// check would do all the work (print results, write files) with the
/// misspelled flag silently ignored and only then report failure. Must
/// track what each cmd_* actually reads.
std::vector<std::string> allowed_options_for(const std::string& command) {
  static const std::vector<std::string> kModel = {
      "n",     "nw", "lambda", "mu",     "coverage", "beta",
      "alpha", "nu", "buffer", "basic",  "perfect"};
  static const std::vector<std::string> kSim = {
      "horizon", "think",   "sessions", "reps",      "seed",
      "threads", "retries", "backoff",  "timeout-ms"};
  std::vector<std::string> allowed = {"cache"};  // global, pre-dispatch
  const auto extend = [&allowed](const std::vector<std::string>& more) {
    allowed.insert(allowed.end(), more.begin(), more.end());
  };
  if (command == "services") {
    extend(kModel);
  } else if (command == "user") {
    extend(kModel);
    allowed.emplace_back("class");
  } else if (command == "farm") {
    extend(kModel);
    allowed.emplace_back("deadline");
  } else if (command == "profile") {
    allowed.emplace_back("class");
  } else if (command == "design") {
    extend(kModel);
    allowed.emplace_back("target-minutes");
  } else if (command == "inject") {
    extend(kModel);
    extend(kSim);
    extend({"class", "backoff-mult", "abandon", "target", "outage-start",
            "outage-hours", "csv", "cache-dir"});
  } else if (command == "trace") {
    extend(kModel);
    extend(kSim);
    extend({"class", "trace-level", "trace-out", "spans-out",
            "metrics-out", "metrics-jsonl", "cache-dir"});
  }
  return allowed;  // help / no command: only --cache
}

void print_cache_summary() {
  const upa::cache::CacheStats s = upa::cache::global().stats();
  std::cout << "\nevaluation cache: " << s.hits << " hits / " << s.misses
            << " misses (hit rate " << cm::fmt_fixed(100.0 * s.hit_rate(), 1)
            << "%), " << s.inserts << " inserts, " << s.evictions
            << " evictions\n";
  for (const auto& [solver, stats] : upa::cache::global().per_solver_stats()) {
    std::cout << "  " << solver << ": " << stats.hits << " hits / "
              << stats.misses << " misses\n";
  }
}

void print_persist_summary() {
  const upa::cache::PersistentCache* p = upa::cache::global_persistence();
  if (p == nullptr) return;
  const upa::cache::PersistStats s = p->stats();
  std::cout << "cache persistence (" << p->directory()
            << "): " << s.segments_loaded << " segments loaded, "
            << s.records_replayed << " records replayed, "
            << s.records_appended << " records appended, "
            << s.records_skipped_crc << " crc-skipped\n";
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const upa::cli::Args args(argc, argv);
    static const std::vector<std::string> kCommands = {
        "",     "help",   "services", "user",  "farm",
        "profile", "design", "inject",   "trace"};
    if (std::find(kCommands.begin(), kCommands.end(), args.command()) ==
        kCommands.end()) {
      std::cerr << "unknown command '" << args.command() << "'\n\n"
                << "usage: upa_cli <command> [--option value ...]\n"
                << "commands: services user farm profile design inject "
                   "trace help\n"
                << "(run `upa_cli help` for details)\n";
      return 2;
    }
    const std::vector<std::string> unknown = upa::cli::unknown_options(
        args, allowed_options_for(args.command()));
    if (!unknown.empty()) {
      std::cerr << "unknown option --" << unknown.front()
                << " for command '" << args.command() << "'\n\n"
                << "usage: upa_cli <command> [--option value ...]\n"
                << "(run `upa_cli help` for the option list)\n";
      return 2;
    }
    const bool cache_on = apply_cache_flag(args);
    const bool persist_on = apply_cache_dir_flag(args);
    int status = 0;
    if (args.command().empty() || args.command() == "help") {
      status = cmd_help();
    } else if (args.command() == "services") {
      status = cmd_services(args);
    } else if (args.command() == "user") {
      status = cmd_user(args);
    } else if (args.command() == "farm") {
      status = cmd_farm(args);
    } else if (args.command() == "profile") {
      status = cmd_profile(args);
    } else if (args.command() == "design") {
      status = cmd_design(args);
    } else if (args.command() == "inject") {
      status = cmd_inject(args);
    } else if (args.command() == "trace") {
      status = cmd_trace(args);
    }
    if (cache_on || persist_on) print_cache_summary();
    if (persist_on) print_persist_summary();
    return status;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
