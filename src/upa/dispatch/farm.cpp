#include "upa/dispatch/farm.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <map>
#include <thread>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/obs/observer.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/json.hpp"

namespace upa::dispatch {

namespace {

/// How long to wait for a freshly spawned replica to print its
/// listening line before declaring the spawn failed.
constexpr int kSpawnTimeoutMillis = 10000;

/// Extracts "host:port" from upa_served's startup line
/// ("upa_served listening on 127.0.0.1:7077 (workers=i=...").
bool parse_listening_line(const std::string& line, UpstreamAddress& out) {
  const std::string marker = "listening on ";
  const std::size_t at = line.find(marker);
  if (at == std::string::npos) return false;
  std::size_t end = at + marker.size();
  while (end < line.size() && line[end] != ' ') ++end;
  try {
    out = parse_upstream_address(
        line.substr(at + marker.size(), end - (at + marker.size())));
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

FarmOrchestrator::FarmOrchestrator(ReplicaConfig config, std::size_t replicas)
    : config_(std::move(config)), replicas_(replicas) {
  UPA_REQUIRE(!config_.served_binary.empty(),
              "ReplicaConfig.served_binary must be set");
  UPA_REQUIRE(replicas >= 1, "farm needs at least one replica");
  UPA_REQUIRE(config_.workers >= 1 && config_.capacity >= config_.workers,
              "replica needs workers >= 1 and capacity >= workers");
}

FarmOrchestrator::~FarmOrchestrator() { stop_all(); }

void FarmOrchestrator::spawn(std::size_t index, std::uint16_t port) {
  Replica& replica = replicas_.at(index);
  UPA_REQUIRE(replica.pid < 0, "replica is already running");

  int pipe_fds[2];
  UPA_REQUIRE(::pipe2(pipe_fds, O_CLOEXEC) == 0,
              std::string("pipe2() failed: ") + std::strerror(errno));

  std::vector<std::string> argv_storage = {
      config_.served_binary,
      "--bind", config_.host,
      "--port", std::to_string(port),
      "--workers", std::to_string(config_.workers),
      "--capacity", std::to_string(config_.capacity),
      "--read-timeout", std::to_string(config_.read_timeout_seconds),
  };
  argv_storage.insert(argv_storage.end(), replica.extra_args.begin(),
                      replica.extra_args.end());
  std::vector<char*> argv;
  argv.reserve(argv_storage.size() + 1);
  for (std::string& arg : argv_storage) argv.push_back(arg.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  UPA_REQUIRE(pid >= 0, std::string("fork() failed: ") +
                            std::strerror(errno));
  if (pid == 0) {
    // Child: only async-signal-safe calls between fork and exec (the
    // parent is multithreaded). dup2 clears O_CLOEXEC on the stdout
    // copy; everything above stderr is then closed explicitly. Replica
    // RESTARTS fork while the experiment has live loopback connections
    // (loadgen <-> front <-> replicas); an inherited duplicate of any
    // of those sockets would outlive the original's close, so peers
    // would never see EOF and their workers would block out the read
    // timeout holding admission slots -- poisoning the whole farm
    // after the first restart. CLOEXEC on every socket plus this sweep
    // keeps the child's fd table down to stdin/stdout/stderr.
    ::dup2(pipe_fds[1], STDOUT_FILENO);
#ifdef SYS_close_range
    ::syscall(SYS_close_range, 3u, ~0u, 0u);
#else
    for (int fd = 3; fd < 4096; ++fd) ::close(fd);
#endif
    ::execv(argv[0], argv.data());
    _exit(127);
  }
  ::close(pipe_fds[1]);

  // Read the child's stdout until the listening line appears; the pipe
  // stays open afterwards (upa_served prints a short drain summary on
  // exit, far below the pipe buffer, so the child never blocks on it).
  std::string buffer;
  UpstreamAddress address;
  bool found = false;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(kSpawnTimeoutMillis);
  while (!found) {
    const auto remaining = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline -
                                   std::chrono::steady_clock::now());
    if (remaining.count() <= 0) break;
    pollfd pfd{};
    pfd.fd = pipe_fds[0];
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready <= 0) {
      if (ready < 0 && errno == EINTR) continue;
      break;
    }
    char chunk[512];
    const ssize_t n = ::read(pipe_fds[0], chunk, sizeof chunk);
    if (n <= 0) break;  // child died before printing
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start);
         nl != std::string::npos; nl = buffer.find('\n', start)) {
      if (parse_listening_line(buffer.substr(start, nl - start), address)) {
        found = true;
        break;
      }
      start = nl + 1;
    }
    buffer.erase(0, start);
  }
  if (!found) {
    ::close(pipe_fds[0]);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);
    throw common::ModelError(
        "replica " + std::to_string(index) + " (" + config_.served_binary +
        ") never printed its listening line");
  }
  replica.pid = pid;
  replica.stdout_fd = pipe_fds[0];
  replica.address = address;
}

void FarmOrchestrator::start_all() {
  for (std::size_t i = 0; i < replicas_.size(); ++i) spawn(i, 0);
}

void FarmOrchestrator::kill_replica(std::size_t index) {
  Replica& replica = replicas_.at(index);
  UPA_REQUIRE(replica.pid >= 0, "replica is not running");
  ::kill(replica.pid, SIGKILL);
  int status = 0;
  ::waitpid(replica.pid, &status, 0);
  ::close(replica.stdout_fd);
  replica.pid = -1;
  replica.stdout_fd = -1;
}

void FarmOrchestrator::set_restart_extra_args(
    std::size_t index, std::vector<std::string> extra_args) {
  replicas_.at(index).extra_args = std::move(extra_args);
}

void FarmOrchestrator::restart_replica(std::size_t index) {
  const Replica& replica = replicas_.at(index);
  UPA_REQUIRE(replica.pid < 0, "replica is still running");
  UPA_REQUIRE(replica.address.port != 0,
              "replica was never started; call start_all first");
  spawn(index, replica.address.port);
}

void FarmOrchestrator::stop_all() {
  for (Replica& replica : replicas_) {
    if (replica.pid < 0) continue;
    ::kill(replica.pid, SIGKILL);
    int status = 0;
    ::waitpid(replica.pid, &status, 0);
    ::close(replica.stdout_fd);
    replica.pid = -1;
    replica.stdout_fd = -1;
  }
}

bool FarmOrchestrator::alive(std::size_t index) const {
  return replicas_.at(index).pid >= 0;
}

std::vector<UpstreamAddress> FarmOrchestrator::addresses() const {
  std::vector<UpstreamAddress> out;
  out.reserve(replicas_.size());
  for (const Replica& replica : replicas_) {
    UPA_REQUIRE(replica.address.port != 0,
                "replica addresses are known only after start_all");
    out.push_back(replica.address);
  }
  return out;
}

std::vector<KillEvent> kill_schedule_from_fault_plan(
    const inject::FaultPlan& plan, std::size_t replicas,
    double seconds_per_hour) {
  UPA_REQUIRE(replicas >= 1, "kill schedule needs at least one replica");
  UPA_REQUIRE(seconds_per_hour > 0.0 && std::isfinite(seconds_per_hour),
              "seconds_per_hour must be positive and finite");
  const auto windows = plan.merged_windows(inject::FaultTarget::kWebFarm);
  UPA_REQUIRE(!windows.empty(),
              "FaultPlan has no web-farm windows to replay");
  std::vector<KillEvent> out;
  out.reserve(windows.size());
  double previous_end = -1.0;
  for (std::size_t j = 0; j < windows.size(); ++j) {
    KillEvent event;
    event.replica = j % replicas;
    event.down_at_seconds = windows[j].first * seconds_per_hour;
    event.up_at_seconds = windows[j].second * seconds_per_hour;
    UPA_REQUIRE(event.down_at_seconds > previous_end,
                "scaled kill windows overlap; the analytic mapping "
                "assumes one replica down at a time");
    previous_end = event.up_at_seconds;
    out.push_back(event);
  }
  return out;
}

namespace {

/// Farm-level loss with i of N replicas operational: the retrying
/// dispatcher makes i replicas of w workers / K_r capacity behave as
/// the pooled M/M/(i*w)/(i*K_r) queue (a rejected attempt retries on a
/// sibling, which is exactly the pooled-buffer approximation). Zero
/// operational replicas lose everything.
double pooled_loss(const FarmExperimentConfig& config, std::size_t i) {
  if (i == 0) return 1.0;
  return queueing::mmck_loss_probability(
      config.lambda, config.nu, i * config.replica.workers,
      i * config.replica.capacity);
}

/// The k-th warm design point: a distinct M/M/c/K configuration whose
/// mmck_metrics solve populates the replica's evaluation cache (the
/// loss workload itself uses the uncached `sleep` method, so cache
/// contents come only from these).
serve::Json warm_point_params(std::size_t k) {
  serve::Json params = serve::Json::object();
  params.set("alpha", serve::Json(40.0 + static_cast<double>(k)));
  params.set("nu", serve::Json(90.0));
  params.set("servers", serve::Json(std::size_t{4}));
  params.set("capacity", serve::Json(std::size_t{16}));
  return params;
}

/// Evaluates `count` warm design points against one replica; returns
/// how many succeeded. Throws ModelError on connect failure.
std::uint64_t issue_warm_points(const UpstreamAddress& address,
                                std::size_t count, double timeout) {
  serve::Client client;
  client.connect(address.host, address.port, timeout, timeout);
  std::uint64_t ok = 0;
  for (std::size_t k = 0; k < count; ++k) {
    const serve::CallResult result =
        client.call("mmck_metrics", warm_point_params(k), k + 1);
    if (result.ok()) ++ok;
  }
  return ok;
}

/// `cache export` on `from`, `cache import` on `to`; returns (records
/// exported, records seeded). Throws ModelError on any failure.
std::pair<std::uint64_t, std::uint64_t> transfer_cache_once(
    const UpstreamAddress& from, const UpstreamAddress& to,
    double timeout) {
  serve::Client peer;
  peer.connect(from.host, from.port, timeout, timeout);
  serve::Json export_params = serve::Json::object();
  export_params.set("op", serve::Json("export"));
  const serve::CallResult exported =
      peer.call("cache", std::move(export_params), 1);
  UPA_REQUIRE(exported.ok(),
              "cache export failed: " + exported.error_message);
  const serve::Json* export_result = exported.result();
  const serve::Json* hex = export_result != nullptr
                               ? export_result->find("segment_hex")
                               : nullptr;
  const serve::Json* count = export_result != nullptr
                                 ? export_result->find("exported_records")
                                 : nullptr;
  UPA_REQUIRE(hex != nullptr && count != nullptr,
              "cache export response lacks segment_hex/exported_records");

  serve::Client fresh;
  fresh.connect(to.host, to.port, timeout, timeout);
  serve::Json import_params = serve::Json::object();
  import_params.set("op", serve::Json("import"));
  import_params.set("segment_hex", *hex);
  const serve::CallResult imported =
      fresh.call("cache", std::move(import_params), 2);
  UPA_REQUIRE(imported.ok(),
              "cache import failed: " + imported.error_message);
  const serve::Json* import_result = imported.result();
  const serve::Json* seeded = import_result != nullptr
                                  ? import_result->find("imported_records")
                                  : nullptr;
  UPA_REQUIRE(seeded != nullptr,
              "cache import response lacks imported_records");
  return {static_cast<std::uint64_t>(count->as_number()),
          static_cast<std::uint64_t>(seeded->as_number())};
}

/// Retrying wrapper: both RPCs race the open-loop workload for the
/// replicas' bounded admission queues (a 503 mid-run is expected, the
/// same transient the front's retry layer absorbs), and the freshly
/// restarted importer may still be binding its port. Each attempt
/// reconnects from scratch. Retry count and spacing come from the
/// experiment config (historically hard-coded to 40 x 250 ms).
std::pair<std::uint64_t, std::uint64_t> transfer_cache(
    const UpstreamAddress& from, const UpstreamAddress& to, double timeout,
    int attempts, int interval_ms) {
  std::string last_error;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    try {
      return transfer_cache_once(from, to, timeout);
    } catch (const std::exception& error) {
      last_error = error.what();
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  throw common::ModelError("cache transfer failed after " +
                           std::to_string(attempts) +
                           " attempts: " + last_error);
}

/// Anti-entropy convergence probe: polls the restarted replica's
/// `cache stats` until its agent reports nonzero records_pulled (the
/// gossip pull replaced the orchestrator's transfer). Returns
/// {rounds, records_pulled}; throws after the retry budget.
std::pair<std::uint64_t, std::uint64_t> await_anti_entropy_pull(
    const UpstreamAddress& replica, double timeout, int attempts,
    int interval_ms) {
  std::string last_error = "never connected";
  for (int attempt = 0; attempt < attempts; ++attempt) {
    try {
      serve::Client client;
      client.connect(replica.host, replica.port, timeout, timeout);
      serve::Json params = serve::Json::object();
      params.set("op", serve::Json("stats"));
      const serve::CallResult reply =
          client.call("cache", std::move(params), 1);
      UPA_REQUIRE(reply.ok(), "cache stats failed: " + reply.error_message);
      const serve::Json* result = reply.result();
      const serve::Json* anti =
          result != nullptr ? result->find("anti_entropy") : nullptr;
      UPA_REQUIRE(anti != nullptr,
                  "replica reports no anti_entropy block (agent not "
                  "running?)");
      const serve::Json* pulled = anti->find("records_pulled");
      const serve::Json* rounds = anti->find("rounds");
      UPA_REQUIRE(pulled != nullptr && rounds != nullptr,
                  "anti_entropy block lacks records_pulled/rounds");
      if (pulled->as_number() > 0.0) {
        return {static_cast<std::uint64_t>(rounds->as_number()),
                static_cast<std::uint64_t>(pulled->as_number())};
      }
      last_error = "agent running, no records pulled yet";
    } catch (const std::exception& error) {
      last_error = error.what();
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  throw common::ModelError("anti-entropy never converged after " +
                           std::to_string(attempts) +
                           " probes: " + last_error);
}

}  // namespace

FarmExperimentResult run_farm_experiment(const FarmExperimentConfig& config) {
  UPA_REQUIRE(config.requests > 0, "experiment needs requests > 0");
  UPA_REQUIRE(config.lambda > 0.0 && config.nu > 0.0,
              "experiment rates must be positive");
  for (const KillEvent& kill : config.kills) {
    UPA_REQUIRE(kill.replica < config.replicas,
                "kill event targets a replica outside the farm");
    UPA_REQUIRE(kill.up_at_seconds > kill.down_at_seconds &&
                    kill.down_at_seconds >= 0.0,
                "kill window must have positive duration");
  }

  // Warm transfer needs one replica the schedule never kills: it is the
  // export source, so it must be alive whenever a restart imports.
  const bool warm = config.warm_transfer && !config.kills.empty();
  const bool anti_entropy = warm && config.anti_entropy_ms > 0;
  UPA_REQUIRE(config.anti_entropy_ms == 0 || config.warm_transfer,
              "anti_entropy_ms requires warm_transfer");
  UPA_REQUIRE(config.warm_transfer_retries >= 1 &&
                  config.warm_transfer_interval_ms >= 1,
              "warm transfer retry budget must be positive");
  std::size_t warm_peer = 0;
  if (warm) {
    UPA_REQUIRE(config.warm_points >= 1,
                "warm transfer needs warm_points >= 1");
    std::vector<bool> killed(config.replicas, false);
    for (const KillEvent& kill : config.kills) killed[kill.replica] = true;
    bool found = false;
    for (std::size_t i = 0; i < config.replicas; ++i) {
      if (!killed[i]) {
        warm_peer = i;
        found = true;
        break;
      }
    }
    UPA_REQUIRE(found,
                "warm transfer needs one replica outside the kill schedule");
  }

  FarmOrchestrator farm(config.replica, config.replicas);
  farm.start_all();

  // Ports are fixed after start_all (restarts reuse them), so this
  // snapshot stays valid for the killer thread's transfers.
  const std::vector<UpstreamAddress> addresses = farm.addresses();
  const double warm_timeout = std::max(config.call_timeout_seconds, 1.0);

  // Anti-entropy mode: every replica that restarts comes back with the
  // sibling port map and a gossip interval -- it re-warms ITSELF. The
  // peer list can only be built now, after the ephemeral ports are
  // known, which is why it rides on restart args instead of the first
  // spawn.
  if (anti_entropy) {
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      std::string peers;
      for (std::size_t j = 0; j < addresses.size(); ++j) {
        if (j == i) continue;
        if (!peers.empty()) peers += ',';
        peers += addresses[j].host + ':' + std::to_string(addresses[j].port);
      }
      farm.set_restart_extra_args(
          i, {"--peers", peers, "--anti-entropy-ms",
              std::to_string(config.anti_entropy_ms)});
    }
  }

  // Warm-transfer state shared with the killer thread; it is only read
  // back after the thread is joined.
  std::string warm_error;
  std::uint64_t warm_points_computed = 0;
  std::uint64_t warm_export_last = 0;
  std::uint64_t warm_import_total = 0;
  std::uint64_t orchestrator_transfers = 0;
  std::uint64_t anti_rounds = 0;
  std::uint64_t anti_pulled = 0;
  if (warm) {
    try {
      warm_points_computed = issue_warm_points(
          addresses[warm_peer], config.warm_points, warm_timeout);
    } catch (const std::exception& e) {
      warm_error = std::string("pre-warm failed: ") + e.what();
    }
  }

  // Must outlive the front: the front records spans into it.
  obs::Observer observer;

  FrontConfig front_config;
  front_config.upstreams = farm.addresses();
  front_config.policy = config.policy;
  front_config.retry = config.retry;
  front_config.health = config.health;
  front_config.upstream_call_timeout_seconds =
      std::max(config.call_timeout_seconds, 1.0);
  if (config.trace) {
    front_config.trace = true;
    front_config.obs = &observer;
  }
  Front front(std::move(front_config));
  front.start();

  // The kill scheduler shares the workload's epoch: it starts with the
  // first arrival (both threads anchor on `epoch` below).
  const auto epoch = std::chrono::steady_clock::now();
  std::thread killer([&] {
    for (const KillEvent& kill : config.kills) {
      std::this_thread::sleep_until(
          epoch + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(kill.down_at_seconds)));
      farm.kill_replica(kill.replica);
      std::this_thread::sleep_until(
          epoch + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(kill.up_at_seconds)));
      farm.restart_replica(kill.replica);
      // Warm restart: the fresh process imports the peer's cache before
      // (well, while) the front routes traffic back to it. In
      // anti-entropy mode the orchestrator drives NOTHING -- the
      // restarted replica gossips the warm set in itself; we only poll
      // until its pull counter moves.
      if (warm && warm_error.empty()) {
        try {
          if (anti_entropy) {
            const auto [rounds, pulled] = await_anti_entropy_pull(
                addresses[kill.replica], warm_timeout,
                config.warm_transfer_retries,
                config.warm_transfer_interval_ms);
            anti_rounds = rounds;
            anti_pulled += pulled;
          } else {
            const auto [exported, seeded] = transfer_cache(
                addresses[warm_peer], addresses[kill.replica], warm_timeout,
                config.warm_transfer_retries,
                config.warm_transfer_interval_ms);
            ++orchestrator_transfers;
            warm_export_last = exported;
            warm_import_total += seeded;
          }
        } catch (const std::exception& e) {
          warm_error = std::string("warm transfer failed: ") + e.what();
        }
      }
    }
  });

  FarmExperimentResult result;
  try {
    serve::LossConfig loss_config;
    loss_config.host = front.config().bind_address;
    loss_config.port = front.port();
    loss_config.lambda = config.lambda;
    loss_config.nu = config.nu;
    loss_config.requests = config.requests;
    loss_config.seed = config.seed;
    loss_config.call_timeout_seconds = config.call_timeout_seconds;
    loss_config.trace = config.trace;
    result.loss = serve::run_loss_workload(loss_config);
  } catch (...) {
    killer.join();
    front.stop();
    farm.stop_all();
    throw;
  }
  killer.join();
  if (warm) {
    result.warm_peer = warm_peer;
    result.warm_points_computed = warm_points_computed;
    result.warm_export_records = warm_export_last;
    result.warm_import_records = warm_import_total;
    if (warm_error.empty()) {
      // Re-issue the warm design points against the restarted replica:
      // with the import in place they replay as pure cache hits (its
      // own stats window is reset first, and the loss workload's
      // `sleep` calls never touch the cache).
      try {
        const std::size_t restarted = config.kills.front().replica;
        serve::Client client;
        client.connect(addresses[restarted].host,
                       addresses[restarted].port, warm_timeout,
                       warm_timeout);
        serve::Json reset = serve::Json::object();
        reset.set("op", serve::Json("reset_stats"));
        const serve::CallResult r = client.call("cache", std::move(reset), 1);
        UPA_REQUIRE(r.ok(), "cache reset_stats failed: " + r.error_message);
        for (std::size_t k = 0; k < config.warm_points; ++k) {
          const serve::CallResult point =
              client.call("mmck_metrics", warm_point_params(k), k + 2);
          UPA_REQUIRE(point.ok(), "post-run design point failed: " +
                                      point.error_message);
        }
        serve::Json stats_params = serve::Json::object();
        stats_params.set("op", serve::Json("stats"));
        const serve::CallResult stats =
            client.call("cache", std::move(stats_params),
                        config.warm_points + 2);
        UPA_REQUIRE(stats.ok(),
                    "cache stats failed: " + stats.error_message);
        const serve::Json* stats_result = stats.result();
        const serve::Json* hits = stats_result != nullptr
                                      ? stats_result->find("hits")
                                      : nullptr;
        UPA_REQUIRE(hits != nullptr, "cache stats response lacks hits");
        result.warmed_hits =
            static_cast<std::uint64_t>(hits->as_number());
      } catch (const std::exception& e) {
        warm_error = std::string("warm verification failed: ") + e.what();
      }
    }
    result.warm_transfer_error = warm_error;
    result.warm_transfer_ok = warm_error.empty() && result.warmed_hits > 0;
    result.anti_entropy_rounds = anti_rounds;
    result.anti_entropy_records_pulled = anti_pulled;
    result.orchestrator_transfers = orchestrator_transfers;
    if (anti_entropy) {
      result.anti_entropy_ok = warm_error.empty() && anti_pulled > 0 &&
                               orchestrator_transfers == 0 &&
                               result.warmed_hits > 0;
    }
  }
  result.front = front.stats();
  result.upstreams = front.upstreams();
  front.stop();
  farm.stop_all();

  if (config.trace) {
    result.trace_dropped_spans = observer.tracer.dropped();
    const auto text_attr = [](const obs::Span& span,
                              const std::string& key) -> std::string {
      for (const obs::SpanAttribute& a : span.attributes) {
        if (a.key == key && !a.is_number) return a.text;
      }
      return {};
    };
    const auto number_attr = [](const obs::Span& span,
                                const std::string& key) -> double {
      for (const obs::SpanAttribute& a : span.attributes) {
        if (a.key == key && a.is_number) return a.number;
      }
      return -1.0;
    };
    std::map<obs::SpanId, std::size_t> children;
    std::vector<const obs::Span*> roots;
    for (const obs::Span& span : observer.tracer.spans()) {
      if (span.level == obs::SpanLevel::kDispatchRequest) {
        roots.push_back(&span);
      } else if (span.level == obs::SpanLevel::kDispatchAttempt) {
        ++children[span.parent];
        ++result.traced_attempts;
      }
    }
    result.traced_requests = roots.size();

    std::string error;
    if (result.trace_dropped_spans != 0) {
      error = "front tracer dropped spans";
    } else if (roots.size() != result.loss.sent) {
      error = "dispatch_request root count != requests sent";
    }
    std::map<std::string, std::int64_t> id_balance;
    for (const obs::Span* root : roots) {
      const double declared = number_attr(*root, "attempts");
      const std::size_t recorded = children[root->id];
      if (error.empty() &&
          declared != static_cast<double>(recorded)) {
        error = "root `attempts` attribute != recorded attempt spans";
      }
      ++id_balance[text_attr(*root, "trace_id")];
    }
    for (const serve::LossRequestLog& log : result.loss.request_log) {
      --id_balance[log.trace_id];
    }
    if (error.empty()) {
      for (const auto& [trace_id, balance] : id_balance) {
        if (balance != 0) {
          error = "root trace_ids do not match the loadgen request log";
          break;
        }
      }
    }
    result.trace_accounting_error = error;
    result.trace_accounted = error.empty();
  }

  result.measured_loss_fraction =
      static_cast<double>(result.loss.rejected +
                          result.loss.deadline_missed +
                          result.loss.transport_errors +
                          result.loss.other_errors) /
      static_cast<double>(result.loss.sent);

  // --- Analytic composite prediction (see farm.hpp header comment) ---
  const double wall = result.loss.wall_seconds;
  double total_down = 0.0;
  std::size_t kills = 0;
  for (const KillEvent& kill : config.kills) {
    const double down = std::min(kill.down_at_seconds, wall);
    const double up = std::min(kill.up_at_seconds, wall);
    if (up > down) {
      total_down += up - down;
      ++kills;
    }
  }
  result.kills_executed = kills;
  result.total_down_seconds = total_down;
  result.time_all_up_seconds = wall - total_down;

  const double n = static_cast<double>(config.replicas);
  if (kills == 0) {
    // No injected failures: the farm sits in the all-up state and the
    // composite prediction collapses to the pooled loss.
    result.predicted_loss_perfect = pooled_loss(config, config.replicas);
    result.predicted_loss_imperfect = result.predicted_loss_perfect;
  } else {
    result.failure_rate =
        static_cast<double>(kills) / (n * result.time_all_up_seconds);
    result.repair_rate = static_cast<double>(kills) / total_down;
    const double mean_down = total_down / static_cast<double>(kills);
    result.detection_delay_seconds =
        config.health.probe_interval_seconds *
        static_cast<double>(config.health.unhealthy_threshold);
    result.coverage = std::clamp(
        1.0 - result.detection_delay_seconds / mean_down, 0.0, 1.0);
    result.reconfiguration_rate =
        1.0 / result.detection_delay_seconds;

    core::WebFarmParams params;
    params.servers = config.replicas;
    params.failure_rate = result.failure_rate;
    params.repair_rate = result.repair_rate;
    params.coverage = result.coverage;
    params.reconfiguration_rate = result.reconfiguration_rate;

    const std::vector<double> pi =
        core::perfect_coverage_distribution(params);
    double perfect = pi[0];
    for (std::size_t i = 1; i <= config.replicas; ++i) {
      perfect += pi[i] * pooled_loss(config, i);
    }
    result.predicted_loss_perfect = perfect;

    const core::ImperfectDistribution dist =
        core::imperfect_coverage_distribution(params);
    double imperfect = dist.operational[0];
    for (std::size_t i = 1; i <= config.replicas; ++i) {
      imperfect += dist.operational[i] * pooled_loss(config, i);
      // Manual state y_i: i replicas nominally up, one dead and not yet
      // ejected. The share of traffic routed to the dead replica (1/i)
      // is at risk, the rest faces an (i-1)-replica farm -- the paper's
      // uncovered-failure loss, an upper bound the retry layer beats.
      imperfect += dist.manual[i] *
                   (1.0 / static_cast<double>(i) +
                    (1.0 - 1.0 / static_cast<double>(i)) *
                        pooled_loss(config, i - 1));
    }
    result.predicted_loss_imperfect = imperfect;
  }

  const double p = result.predicted_loss_imperfect;
  result.sigma = std::sqrt(std::max(p * (1.0 - p), 0.0) /
                           static_cast<double>(result.loss.sent));
  // 4-sigma binomial half-width plus an allowance for the transient
  // schedule (the composite model is stationary) and scheduling jitter.
  result.tolerance = 4.0 * result.sigma + 0.03;
  result.within_tolerance =
      std::abs(result.measured_loss_fraction - p) <= result.tolerance;
  return result;
}

}  // namespace upa::dispatch
