#include "upa/common/numeric.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "upa/common/error.hpp"

namespace upa::common {

bool close(double a, double b, double rtol, double atol) noexcept {
  return std::abs(a - b) <= atol + rtol * std::max(std::abs(a), std::abs(b));
}

bool is_probability(double p, double tol) noexcept {
  return std::isfinite(p) && p >= -tol && p <= 1.0 + tol;
}

double clamp_probability(double p, double tol) {
  UPA_REQUIRE(is_probability(p, tol),
              "value " + std::to_string(p) + " is not a probability");
  return std::clamp(p, 0.0, 1.0);
}

double kahan_sum(std::span<const double> values) noexcept {
  double sum = 0.0;
  double carry = 0.0;
  for (double v : values) {
    const double y = v - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  return sum;
}

double log_factorial(unsigned n) noexcept {
  return std::lgamma(static_cast<double>(n) + 1.0);
}

double factorial(unsigned n) {
  UPA_REQUIRE(n <= 170, "factorial(" + std::to_string(n) +
                            ") overflows double; use log_factorial");
  double result = 1.0;
  for (unsigned i = 2; i <= n; ++i) result *= static_cast<double>(i);
  return result;
}

double binomial(unsigned n, unsigned k) noexcept {
  if (k > n) return 0.0;
  return std::exp(log_factorial(n) - log_factorial(k) -
                  log_factorial(n - k));
}

double k_out_of_n(unsigned k, unsigned n, double p) {
  UPA_REQUIRE(k >= 1 && k <= n, "k-out-of-n requires 1 <= k <= n");
  const double q = 1.0 - clamp_probability(p);
  double sum = 0.0;
  for (unsigned i = k; i <= n; ++i) {
    sum += binomial(n, i) * std::pow(p, static_cast<double>(i)) *
           std::pow(q, static_cast<double>(n - i));
  }
  return std::clamp(sum, 0.0, 1.0);
}

void normalize(std::vector<double>& weights) {
  const double total = kahan_sum(weights);
  UPA_REQUIRE(std::isfinite(total) && total > 0.0,
              "cannot normalize: weight sum " + std::to_string(total));
  for (double& w : weights) w /= total;
}

}  // namespace upa::common
