#include "upa/serve/protocol.hpp"

#include <chrono>
#include <cmath>
#include <thread>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/inject/campaign.hpp"
#include "upa/inject/injectors.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/serve/anti_entropy.hpp"
#include "upa/ta/end_to_end_sim.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"
#include "upa/ta/user_classes.hpp"

namespace upa::serve {

namespace {

// --- params helpers ------------------------------------------------------

double get_number(const Json& params, const std::string& key,
                  double fallback) {
  const Json* v = params.find(key);
  if (v == nullptr) return fallback;
  return v->as_number();
}

/// Largest integer a double represents exactly (2^53). The default cap
/// for integer params; the double-to-size_t cast below would be
/// undefined behavior for values above SIZE_MAX, and these come straight
/// from untrusted request lines.
constexpr double kMaxSafeInteger = 9007199254740992.0;

std::size_t get_size(const Json& params, const std::string& key,
                     std::size_t fallback,
                     double max_value = kMaxSafeInteger) {
  const Json* v = params.find(key);
  if (v == nullptr) return fallback;
  const double d = v->as_number();
  UPA_REQUIRE(d >= 0.0 && d == std::floor(d),
              "param '" + key + "' must be a non-negative integer");
  UPA_REQUIRE(d <= max_value, "param '" + key + "' must be <= " +
                                  format_number(max_value));
  return static_cast<std::size_t>(d);
}

bool get_bool(const Json& params, const std::string& key, bool fallback) {
  const Json* v = params.find(key);
  if (v == nullptr) return fallback;
  return v->as_bool();
}

std::string get_string(const Json& params, const std::string& key,
                       const std::string& fallback) {
  const Json* v = params.find(key);
  if (v == nullptr) return fallback;
  return v->as_string();
}

/// Model parameters from a params object, mirroring the upa_cli override
/// names; anything absent keeps the paper's Table 7 default.
ta::TaParameters ta_params_from(const Json& params) {
  ta::TaParameters p = ta::TaParameters::paper_defaults();
  p = p.with_reservation_systems(get_size(params, "n", 1, 1e3));
  p.n_web = get_size(params, "nw", p.n_web, 1e3);
  p.lambda_web = get_number(params, "lambda", p.lambda_web);
  p.mu_web = get_number(params, "mu", p.mu_web);
  p.coverage = get_number(params, "coverage", p.coverage);
  p.beta = get_number(params, "beta", p.beta);
  p.alpha = get_number(params, "alpha", p.alpha);
  p.nu = get_number(params, "nu", p.nu);
  p.buffer = get_size(params, "buffer", p.buffer, 1e6);
  if (get_bool(params, "basic", false))
    p.architecture = ta::Architecture::kBasic;
  if (get_bool(params, "perfect", false))
    p.coverage_model = ta::CoverageModel::kPerfect;
  p.validate();
  return p;
}

ta::UserClass user_class_from(const Json& params) {
  const std::string name = get_string(params, "class", "B");
  if (name == "A" || name == "a") return ta::UserClass::kA;
  if (name == "B" || name == "b") return ta::UserClass::kB;
  throw common::ModelError("param 'class' must be A or B, got " + name);
}

/// End-to-end simulator options from params. Defaults are sized for an
/// interactive service (seconds, not minutes, per request); threads
/// default to 1 because each RPC already runs on a server worker --
/// multiplying parallelism per request would oversubscribe the host.
ta::EndToEndOptions end_to_end_options_from(const Json& params) {
  ta::EndToEndOptions o;
  o.horizon_hours = get_number(params, "horizon", 2000.0);
  o.think_time_hours = get_number(params, "think", 0.0);
  o.sessions_per_replication = get_size(params, "sessions", 2000, 1e7);
  o.replications = get_size(params, "reps", 2, 1e5);
  o.seed = get_size(params, "seed", 42);
  o.threads = get_size(params, "threads", 1, 1024);
  o.retry.max_retries = get_size(params, "retries", 0, 1e4);
  o.retry.backoff_base_hours = get_number(params, "backoff", 0.25);
  o.retry.backoff_multiplier = get_number(params, "backoff_mult", 2.0);
  o.retry.response_timeout_seconds =
      get_number(params, "timeout_ms", 0.0) / 1000.0;
  o.retry.abandonment_probability = get_number(params, "abandon", 0.0);
  o.validate();
  return o;
}

Json json_vector(const std::vector<double>& values) {
  Json out = Json::array();
  for (const double v : values) out.push_back(Json(v));
  return out;
}

Json json_interval(const sim::ConfidenceInterval& ci) {
  Json out = Json::object();
  out.set("mean", Json(ci.mean));
  out.set("half_width", Json(ci.half_width));
  out.set("low", Json(ci.low));
  out.set("high", Json(ci.high));
  return out;
}

// --- built-in methods ----------------------------------------------------

Json method_ping(const Json&) {
  Json out = Json::object();
  out.set("pong", Json(true));
  return out;
}

Json method_sleep(const Json& params) {
  const double seconds = get_number(params, "seconds", 0.0);
  UPA_REQUIRE(seconds >= 0.0 && seconds <= 60.0,
              "param 'seconds' must be in [0, 60]");
  if (seconds > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
  Json out = Json::object();
  out.set("slept_seconds", Json(seconds));
  return out;
}

Json method_steady_state(const Json& params) {
  const ta::TaParameters p = ta_params_from(params);
  const auto farm = ta::web_farm_params(p);
  const std::string model = get_string(params, "model", "imperfect");
  markov::Ctmc chain = [&] {
    if (model == "perfect") return core::perfect_coverage_chain(farm);
    if (model == "imperfect")
      return core::imperfect_coverage_chain(farm).chain;
    throw common::ModelError("param 'model' must be perfect or imperfect, got " +
                             model);
  }();
  const auto report = chain.steady_state_robust();
  Json out = Json::object();
  out.set("model", Json(model));
  out.set("states", Json(chain.state_count()));
  out.set("method", Json(markov::stationary_method_name(report.method)));
  out.set("residual", Json(report.residual));
  out.set("distribution", json_vector(report.distribution));
  return out;
}

Json method_mmck_metrics(const Json& params) {
  const double alpha = get_number(params, "alpha", 100.0);
  const double nu = get_number(params, "nu", 100.0);
  const std::size_t servers = get_size(params, "servers", 4, 1e4);
  const std::size_t capacity = get_size(params, "capacity", 10, 1e6);
  const auto m = queueing::mmck_metrics(alpha, nu, servers, capacity);
  Json out = Json::object();
  out.set("rho", Json(m.rho));
  out.set("loss_probability", Json(m.blocking));
  out.set("mean_in_system", Json(m.mean_in_system));
  out.set("mean_in_queue", Json(m.mean_in_queue));
  out.set("throughput", Json(m.throughput));
  out.set("mean_response", Json(m.mean_response));
  out.set("mean_busy_servers", Json(m.mean_busy_servers));
  out.set("state_probabilities", json_vector(m.state_probabilities));
  return out;
}

Json method_web_farm_availability(const Json& params) {
  const ta::TaParameters p = ta_params_from(params);
  const auto farm = ta::web_farm_params(p);
  const auto queue = ta::web_queue_params(p);
  const bool perfect = p.coverage_model == ta::CoverageModel::kPerfect ||
                       p.architecture == ta::Architecture::kBasic;
  const double a =
      perfect ? core::web_service_availability_perfect(farm, queue)
              : core::web_service_availability_imperfect(farm, queue);
  Json out = Json::object();
  out.set("coverage_model", Json(perfect ? "perfect" : "imperfect"));
  out.set("availability", Json(a));
  out.set("downtime_minutes_per_year",
          Json(common::downtime_minutes_per_year(a)));
  if (const Json* deadline = params.find("deadline"); deadline != nullptr) {
    const double tau = deadline->as_number();
    const double ad =
        perfect ? core::web_service_availability_perfect_with_deadline(
                      farm, queue, tau)
                : core::web_service_availability_imperfect_with_deadline(
                      farm, queue, tau);
    out.set("deadline_seconds", Json(tau));
    out.set("availability_with_deadline", Json(ad));
  }
  return out;
}

Json method_composite_availability(const Json& params) {
  const ta::TaParameters p = ta_params_from(params);
  const auto farm = ta::web_farm_params(p);
  const auto queue = ta::web_queue_params(p);
  const bool perfect = p.coverage_model == ta::CoverageModel::kPerfect ||
                       p.architecture == ta::Architecture::kBasic;
  const auto composite = perfect ? core::composite_perfect(farm, queue)
                                 : core::composite_imperfect(farm, queue);
  const auto breakdown = composite.breakdown();
  Json out = Json::object();
  out.set("coverage_model", Json(perfect ? "perfect" : "imperfect"));
  out.set("availability", Json(breakdown.availability));
  out.set("performance_loss", Json(breakdown.performance_loss));
  out.set("downtime_loss", Json(breakdown.downtime_loss));
  out.set("states", Json(composite.chain().state_count()));
  return out;
}

Json method_user_availability(const Json& params) {
  const ta::TaParameters p = ta_params_from(params);
  const ta::UserClass uclass = user_class_from(params);
  const double a = ta::user_availability_eq10(uclass, p);
  Json out = Json::object();
  out.set("class", Json(ta::user_class_name(uclass)));
  out.set("availability", Json(a));
  out.set("downtime_hours_per_year",
          Json(common::downtime_hours_per_year(a)));
  Json categories = Json::object();
  for (const auto& [category, ua] :
       ta::category_breakdown(uclass, p).unavailability) {
    categories.set(ta::category_name(category), Json(ua));
  }
  out.set("category_unavailability", categories);
  return out;
}

Json method_run_campaign(const Json& params) {
  const ta::TaParameters p = ta_params_from(params);
  const ta::UserClass uclass = user_class_from(params);

  inject::CampaignOptions options;
  options.end_to_end = end_to_end_options_from(params);
  options.threads = 1;

  const auto target = inject::fault_target_from_name(
      get_string(params, "target", "web-farm"));
  const double start = get_number(params, "outage_start", 100.0);
  const double duration = get_number(params, "outage_hours", 2.0);
  std::vector<inject::CampaignPlan> plans;
  plans.push_back(
      {inject::fault_target_name(target) + " outage",
       inject::scripted_outage(target, start, duration,
                               options.end_to_end.horizon_hours)});

  const auto campaign = inject::run_campaign(uclass, p, options, plans);
  Json entries = Json::array();
  for (const auto& e : campaign.entries) {
    Json entry = Json::object();
    entry.set("name", Json(e.name));
    entry.set("perceived_availability",
              json_interval(e.perceived_availability));
    entry.set("delta_vs_baseline", Json(e.delta_vs_baseline));
    entry.set("observed_web_service_availability",
              Json(e.observed_web_service_availability));
    entry.set("mean_retries_per_session", Json(e.mean_retries_per_session));
    entry.set("abandonment_fraction", Json(e.abandonment_fraction));
    entries.push_back(std::move(entry));
  }
  Json out = Json::object();
  out.set("class", Json(ta::user_class_name(uclass)));
  out.set("entries", std::move(entries));
  return out;
}

Json method_simulate_end_to_end(const Json& params) {
  const ta::TaParameters p = ta_params_from(params);
  const ta::UserClass uclass = user_class_from(params);
  const ta::EndToEndOptions options = end_to_end_options_from(params);
  const auto result = ta::simulate_end_to_end(uclass, p, options);
  Json out = Json::object();
  out.set("class", Json(ta::user_class_name(uclass)));
  out.set("perceived_availability",
          json_interval(result.perceived_availability));
  out.set("observed_web_service_availability",
          Json(result.observed_web_service_availability));
  out.set("mean_session_duration_hours",
          Json(result.mean_session_duration_hours));
  out.set("mean_retries_per_session", Json(result.mean_retries_per_session));
  out.set("abandonment_fraction", Json(result.abandonment_fraction));
  return out;
}

Json cache_stats_json() {
  const cache::CacheStats s = cache::global().stats();
  Json out = Json::object();
  out.set("enabled", Json(cache::enabled()));
  out.set("entries", Json(cache::global().size()));
  out.set("hits", Json(static_cast<double>(s.hits)));
  out.set("misses", Json(static_cast<double>(s.misses)));
  out.set("inserts", Json(static_cast<double>(s.inserts)));
  out.set("evictions", Json(static_cast<double>(s.evictions)));
  out.set("hit_rate", Json(s.hit_rate()));
  out.set("disk_hits", Json(static_cast<double>(s.disk_hits)));
  if (const cache::PersistentCache* p = cache::global_persistence()) {
    const cache::PersistStats ps = p->stats();
    Json persist = Json::object();
    persist.set("directory", Json(p->directory()));
    persist.set("segments_loaded",
                Json(static_cast<double>(ps.segments_loaded)));
    persist.set("segments_rejected",
                Json(static_cast<double>(ps.segments_rejected)));
    persist.set("indexes_loaded",
                Json(static_cast<double>(ps.indexes_loaded)));
    persist.set("indexes_rebuilt",
                Json(static_cast<double>(ps.indexes_rebuilt)));
    persist.set("records_indexed",
                Json(static_cast<double>(ps.records_indexed)));
    persist.set("bytes_mapped", Json(static_cast<double>(ps.bytes_mapped)));
    persist.set("records_replayed",
                Json(static_cast<double>(ps.records_replayed)));
    persist.set("disk_hits", Json(static_cast<double>(ps.disk_hits)));
    persist.set("records_skipped_crc",
                Json(static_cast<double>(ps.records_skipped_crc)));
    persist.set("records_skipped_decode",
                Json(static_cast<double>(ps.records_skipped_decode)));
    persist.set("records_appended",
                Json(static_cast<double>(ps.records_appended)));
    persist.set("write_errors",
                Json(static_cast<double>(ps.write_errors)));
    persist.set("compactions", Json(static_cast<double>(ps.compactions)));
    persist.set("compact_records_dropped",
                Json(static_cast<double>(ps.compact_records_dropped)));
    out.set("persist", std::move(persist));
  }
  if (const AntiEntropyAgent* agent = global_anti_entropy()) {
    const AntiEntropyStats as = agent->stats();
    Json anti = Json::object();
    anti.set("rounds", Json(static_cast<double>(as.rounds)));
    anti.set("pulls_ok", Json(static_cast<double>(as.pulls_ok)));
    anti.set("pull_errors", Json(static_cast<double>(as.pull_errors)));
    anti.set("records_pulled",
             Json(static_cast<double>(as.records_pulled)));
    anti.set("rounds_converged",
             Json(static_cast<double>(as.rounds_converged)));
    anti.set("pages_pulled",
             Json(static_cast<double>(as.pages_pulled)));
    out.set("anti_entropy", std::move(anti));
  }
  return out;
}

/// `cache` method: lets a long-lived server flush or re-enable the
/// process-wide evaluation cache between reconfigurations without a
/// restart, and -- via export/import -- ship its contents to a peer as a
/// hex-encoded segment blob (the farm's warm-transfer path). Every op
/// returns the post-op stats snapshot.
Json method_cache(const Json& params) {
  const std::string op = get_string(params, "op", "stats");
  Json extra = Json::object();
  if (op == "clear") {
    cache::global().clear();
  } else if (op == "reset_stats") {
    cache::global().reset_stats();
  } else if (op == "enable") {
    cache::set_enabled(true);
  } else if (op == "disable") {
    cache::set_enabled(false);
  } else if (op == "export") {
    cache::ExportStats ex;
    const std::string blob =
        cache::export_segment_blob(cache::global(), &ex);
    extra.set("exported_records", Json(static_cast<double>(ex.records)));
    extra.set("skipped_no_codec",
              Json(static_cast<double>(ex.skipped_no_codec)));
    extra.set("segment_hex", Json(cache::to_hex(blob)));
  } else if (op == "import") {
    const std::string hex = get_string(params, "segment_hex", "");
    UPA_REQUIRE(!hex.empty(),
                "param 'segment_hex' must be a non-empty hex string");
    const std::string blob = cache::from_hex(hex);
    cache::ImportStats im;
    if (cache::PersistentCache* p = cache::global_persistence()) {
      im = p->import_blob(blob);
    } else {
      im = cache::import_segment_blob(cache::global(), blob);
    }
    UPA_REQUIRE(!im.segment_rejected,
                "segment rejected: format-version or solver-version tag "
                "mismatch");
    extra.set("imported_records",
              Json(static_cast<double>(im.records_seeded)));
    extra.set("duplicate_records",
              Json(static_cast<double>(im.records_duplicate)));
    extra.set("skipped_records",
              Json(static_cast<double>(im.records_skipped)));
    extra.set("appended_records",
              Json(static_cast<double>(im.records_appended)));
  } else if (op == "digest") {
    // Anti-entropy step 1: the compact summary of what this replica
    // holds -- sorted key digests, 8 bytes per entry.
    const std::vector<std::uint64_t> digests =
        cache::digest_summary(cache::global());
    extra.set("digest_count", Json(static_cast<double>(digests.size())));
    extra.set("digests_hex", Json(cache::to_hex(cache::encode_digests(digests))));
  } else if (op == "fingerprint") {
    // Anti-entropy step 0: the O(1) convergence check. Two replicas
    // whose (count, fold) pairs match hold the same warm set, so the
    // round ends here instead of shipping the full digest summary.
    const cache::DigestFingerprint fp =
        cache::digest_fingerprint(cache::global());
    extra.set("digest_count", Json(static_cast<double>(fp.count)));
    extra.set("fingerprint_hex",
              Json(cache::to_hex(cache::encode_digests({fp.fold}))));
  } else if (op == "pull") {
    // Anti-entropy step 2: answer with ONLY the records the caller is
    // missing. An empty/absent have_hex degenerates to a full export.
    // With max_bytes the delta is cut into digest-ordered pages (resume
    // via cursor) so the reply line stays under the protocol's line cap
    // no matter how warm this replica is.
    const std::string have_hex = get_string(params, "have_hex", "");
    const std::vector<std::uint64_t> have =
        cache::decode_digests(cache::from_hex(have_hex));
    const double max_bytes = get_number(params, "max_bytes", 0.0);
    extra.set("have_count", Json(static_cast<double>(have.size())));
    if (max_bytes > 0.0) {
      const std::string cursor_hex = get_string(params, "cursor", "");
      std::uint64_t cursor = 0;
      if (!cursor_hex.empty()) {
        const std::vector<std::uint64_t> decoded =
            cache::decode_digests(cache::from_hex(cursor_hex));
        UPA_REQUIRE(decoded.size() == 1,
                    "param 'cursor' must be 16 hex chars");
        cursor = decoded.front();
      }
      const cache::DeltaPage page = cache::export_delta_page(
          cache::global(), have, cursor,
          static_cast<std::size_t>(max_bytes));
      extra.set("delta_records", Json(static_cast<double>(page.records)));
      extra.set("skipped_no_codec",
                Json(static_cast<double>(page.skipped_no_codec)));
      extra.set("segment_hex", Json(cache::to_hex(page.blob)));
      extra.set("complete", Json(page.complete));
      extra.set("next_cursor", Json(cache::to_hex(cache::encode_digests(
                                  {page.next_cursor}))));
    } else {
      cache::ExportStats ex;
      const std::string blob =
          cache::export_delta_blob(cache::global(), have, &ex);
      extra.set("delta_records", Json(static_cast<double>(ex.records)));
      extra.set("skipped_no_codec",
                Json(static_cast<double>(ex.skipped_no_codec)));
      extra.set("segment_hex", Json(cache::to_hex(blob)));
    }
  } else if (op != "stats") {
    throw common::ModelError(
        "param 'op' must be stats, clear, reset_stats, enable, disable, "
        "export, import, digest, fingerprint, or pull, got " +
        op);
  }
  Json out = cache_stats_json();
  out.set("op", Json(op));
  for (const auto& [key, value] : extra.as_object()) {
    out.set(key, value);
  }
  return out;
}

}  // namespace

std::optional<TraceContext> parse_trace_context(const Json& request) {
  const Json* trace = request.find("trace");
  if (trace == nullptr) return std::nullopt;
  UPA_REQUIRE(trace->is_object(), "'trace' must be an object when present");
  TraceContext context;

  const Json* trace_id = trace->find("trace_id");
  UPA_REQUIRE(trace_id != nullptr && trace_id->is_string(),
              "'trace.trace_id' must be a string");
  context.trace_id = trace_id->as_string();
  UPA_REQUIRE(!context.trace_id.empty() && context.trace_id.size() <= 32,
              "'trace.trace_id' must be 1-32 hex chars");
  for (const char c : context.trace_id) {
    UPA_REQUIRE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'),
                "'trace.trace_id' must be lowercase hex");
  }

  if (const Json* span_id = trace->find("span_id"); span_id != nullptr) {
    UPA_REQUIRE(span_id->is_number(), "'trace.span_id' must be a number");
    const double d = span_id->as_number();
    UPA_REQUIRE(d >= 0.0 && d == std::floor(d) && d <= kMaxSafeInteger,
                "'trace.span_id' must be a non-negative integer");
    context.span_id = static_cast<std::uint64_t>(d);
  }

  if (const Json* sampled = trace->find("sampled"); sampled != nullptr) {
    UPA_REQUIRE(sampled->is_bool(), "'trace.sampled' must be a boolean");
    context.sampled = sampled->as_bool();
  }
  return context;
}

Json trace_context_json(const TraceContext& context) {
  Json trace = Json::object();
  trace.set("trace_id", Json(context.trace_id));
  trace.set("span_id", Json(static_cast<double>(context.span_id)));
  trace.set("sampled", Json(context.sampled));
  return trace;
}

std::string with_trace_context(const Json& request,
                               const TraceContext& context) {
  Json rewritten = request;
  rewritten.set("trace", trace_context_json(context));
  return rewritten.dump();
}

std::string make_trace_id(std::uint64_t seed) {
  // splitmix64 finalizer (Steele et al.): a bijection on uint64, so
  // distinct seeds give distinct ids.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  static constexpr char kHex[] = "0123456789abcdef";
  std::string id(16, '0');
  for (int i = 15; i >= 0; --i) {
    id[static_cast<std::size_t>(i)] = kHex[z & 0xf];
    z >>= 4;
  }
  return id;
}

Json make_result_response(const Json& id, Json result) {
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", Json(true));
  response.set("result", std::move(result));
  return response;
}

Json make_error_response(const Json& id, int code,
                         const std::string& message) {
  Json error = Json::object();
  error.set("code", Json(code));
  error.set("message", Json(message));
  Json response = Json::object();
  response.set("id", id);
  response.set("ok", Json(false));
  response.set("error", std::move(error));
  return response;
}

Dispatcher::Dispatcher() {
  register_method("ping", method_ping);
  register_method("sleep", method_sleep);
  register_method("steady_state", method_steady_state);
  register_method("mmck_metrics", method_mmck_metrics);
  register_method("web_farm_availability", method_web_farm_availability);
  register_method("composite_availability", method_composite_availability);
  register_method("user_availability", method_user_availability);
  register_method("run_campaign", method_run_campaign);
  register_method("simulate_end_to_end", method_simulate_end_to_end);
  register_method("cache", method_cache);
}

void Dispatcher::register_method(const std::string& name, Handler handler) {
  UPA_REQUIRE(!name.empty(), "method name must be non-empty");
  UPA_REQUIRE(handler != nullptr, "method handler must be callable");
  methods_[name] = std::move(handler);
}

std::vector<std::string> Dispatcher::method_names() const {
  std::vector<std::string> names;
  names.reserve(methods_.size());
  for (const auto& [name, handler] : methods_) names.push_back(name);
  return names;
}

Json Dispatcher::dispatch(const Json& request) const {
  if (!request.is_object()) {
    return make_error_response(Json(), ErrorCode::kBadRequest,
                               "request must be a JSON object");
  }
  const Json* id_member = request.find("id");
  const Json id = id_member != nullptr ? *id_member : Json();
  try {
    // Validate (but do not act on) any trace context: a malformed trace
    // member is a caller bug and must 400 instead of silently riding
    // along. Valid context is consumed by the server's span recording.
    (void)parse_trace_context(request);
  } catch (const common::ModelError& e) {
    return make_error_response(id, ErrorCode::kBadRequest, e.what());
  }
  const Json* method = request.find("method");
  if (method == nullptr || !method->is_string()) {
    return make_error_response(id, ErrorCode::kBadRequest,
                               "request needs a string 'method' member");
  }
  const auto it = methods_.find(method->as_string());
  if (it == methods_.end()) {
    std::string known;
    for (const std::string& name : method_names()) {
      if (!known.empty()) known += ", ";
      known += name;
    }
    return make_error_response(
        id, ErrorCode::kUnknownMethod,
        "unknown method '" + method->as_string() + "' (known: " + known + ")");
  }
  const Json* params = request.find("params");
  if (params != nullptr && !params->is_object() && !params->is_null()) {
    return make_error_response(id, ErrorCode::kBadRequest,
                               "'params' must be an object when present");
  }
  try {
    return make_result_response(
        id, it->second(params != nullptr ? *params : Json()));
  } catch (const common::ModelError& e) {
    return make_error_response(id, ErrorCode::kBadRequest, e.what());
  } catch (const std::exception& e) {
    return make_error_response(id, ErrorCode::kInternal, e.what());
  }
}

std::string Dispatcher::dispatch_line(const std::string& line) const {
  Json request;
  try {
    request = parse_json(line);
  } catch (const std::exception& e) {
    return make_error_response(Json(), ErrorCode::kBadRequest, e.what())
        .dump();
  }
  return dispatch(request).dump();
}

}  // namespace upa::serve
