// Custom operational profile: model your own application's session graph
// and compute the user-perceived availability for it -- the framework is
// not tied to the paper's travel agency.
//
//   $ ./custom_profile
//
// Scenario: a video-streaming service with functions Landing, Search,
// Play and Rate. Two profiles ("lean-back" vs "binger") share one
// infrastructure; the perceived availability differs because they
// exercise different services.

#include <iostream>

#include "upa/common/numeric.hpp"
#include "upa/common/table.hpp"
#include "upa/core/hierarchy.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/profile/session_graph.hpp"

namespace {

namespace up = upa::profile;
namespace uc = upa::core;
namespace cm = upa::common;

up::OperationalProfile lean_back_profile() {
  return up::SessionGraphBuilder()
      .add_function("Landing")
      .add_function("Search")
      .add_function("Play")
      .add_function("Rate")
      .transition("Start", "Landing", 1.0)
      .transition("Landing", "Play", 0.55)   // autoplay row
      .transition("Landing", "Search", 0.25)
      .transition("Landing", "Exit", 0.20)
      .transition("Search", "Play", 0.70)
      .transition("Search", "Exit", 0.30)
      .transition("Play", "Play", 0.45)      // next episode
      .transition("Play", "Rate", 0.05)
      .transition("Play", "Exit", 0.50)
      .transition("Rate", "Play", 0.60)
      .transition("Rate", "Exit", 0.40)
      .build();
}

up::OperationalProfile binger_profile() {
  return up::SessionGraphBuilder()
      .add_function("Landing")
      .add_function("Search")
      .add_function("Play")
      .add_function("Rate")
      .transition("Start", "Landing", 1.0)
      .transition("Landing", "Play", 0.30)
      .transition("Landing", "Search", 0.60)
      .transition("Landing", "Exit", 0.10)
      .transition("Search", "Play", 0.85)
      .transition("Search", "Exit", 0.15)
      .transition("Play", "Play", 0.75)
      .transition("Play", "Rate", 0.10)
      .transition("Play", "Exit", 0.15)
      .transition("Rate", "Play", 0.80)
      .transition("Rate", "Exit", 0.20)
      .build();
}

/// Shared infrastructure: CDN edge, catalog service, playback backend,
/// ratings store -- each used by different functions.
uc::UserLevelModel build_model(const up::OperationalProfile& profile) {
  uc::ServiceCatalog catalog;
  const auto edge = catalog.add("cdn-edge", 0.9995);
  const auto catalog_svc = catalog.add("catalog", 0.999);
  const auto playback = catalog.add("playback", 0.998);
  const auto ratings = catalog.add("ratings", 0.99);

  std::vector<uc::FunctionModel> functions;
  functions.push_back(uc::FunctionModel::all_of("Landing", {edge}));
  functions.push_back(
      uc::FunctionModel::all_of("Search", {edge, catalog_svc}));
  // Play has a degraded path: 90% of plays go through the catalog for
  // recommendations, 10% are direct-URL plays that skip it.
  functions.push_back(uc::FunctionModel(
      "Play", {uc::ExecutionPath{0.9, {edge, catalog_svc, playback}},
               uc::ExecutionPath{0.1, {edge, playback}}}));
  functions.push_back(
      uc::FunctionModel::all_of("Rate", {edge, ratings}));

  // Scenario classes straight from the graph: exact visited-set analysis.
  up::ScenarioSet scenarios(
      {"Landing", "Search", "Play", "Rate"});
  for (const auto& sc : up::scenario_classes(profile, 1e-9)) {
    scenarios.add(sc.label, sc.functions, sc.probability);
  }
  return uc::UserLevelModel(std::move(catalog), std::move(functions),
                            std::move(scenarios));
}

void report(const char* name, const up::OperationalProfile& profile) {
  const auto model = build_model(profile);
  std::cout << "--- " << name << " ---\n";
  cm::Table t({"scenario class", "probability", "availability"});
  t.set_align(0, cm::Align::kLeft);
  for (const auto& sc : model.scenarios().scenarios()) {
    if (sc.probability < 0.01) continue;  // print the head of the list
    t.add_row({sc.label, cm::fmt_fixed(sc.probability, 4),
               cm::fmt(model.scenario_availability(sc), 6)});
  }
  std::cout << t;
  const double a = model.user_availability();
  std::cout << "user-perceived availability = " << cm::fmt(a, 6) << "  ("
            << cm::fmt_fixed(cm::downtime_hours_per_year(a), 1)
            << " h downtime/yr)\n"
            << "mean functions invoked/session (analytic) = "
            << cm::fmt(profile.mean_session_length(), 4) << "\n\n";
}

}  // namespace

int main() {
  std::cout << "User-perceived availability of a streaming service under\n"
               "two operational profiles sharing one infrastructure.\n\n";
  report("lean-back profile", lean_back_profile());
  report("binger profile", binger_profile());
  std::cout
      << "The binger profile chains many Play invocations through the\n"
         "catalog and ratings services, so the same infrastructure looks\n"
         "less available to it -- the paper's core observation, on a\n"
         "different domain.\n";
  return 0;
}
