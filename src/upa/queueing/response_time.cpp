#include "upa/queueing/response_time.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"
#include "upa/queueing/mmck.hpp"

namespace upa::queueing {
namespace {

/// Regularized upper incomplete gamma of integer shape:
/// Q(m, x) = P(Poisson(x) < m) = e^{-x} sum_{k<m} x^k / k!.
double upper_gamma_q(std::size_t m, double x) {
  UPA_ASSERT(m >= 1);
  if (x <= 0.0) return 1.0;
  double term = std::exp(-x);
  double sum = term;
  for (std::size_t k = 1; k < m; ++k) {
    term *= x / static_cast<double>(k);
    sum += term;
  }
  return std::min(sum, 1.0);
}

/// Tail of Erlang(m, a) + Exp(nu), for a = c*nu >= nu (m >= 1):
///   a == nu : Erlang(m+1, nu) tail;
///   a >  nu : Q(m, a tau) + e^{-nu tau} (a/(a-nu))^m P(m, (a-nu) tau).
double wait_plus_service_tail(std::size_t m, double a, double nu,
                              double tau) {
  if (tau <= 0.0) return 1.0;
  const double b = a - nu;
  if (b <= 1e-12 * nu) {
    return upper_gamma_q(m + 1, nu * tau);
  }
  const double ratio_pow =
      std::pow(a / b, static_cast<double>(m));
  const double lower_p = 1.0 - upper_gamma_q(m, b * tau);
  const double tail =
      upper_gamma_q(m, a * tau) + std::exp(-nu * tau) * ratio_pow * lower_p;
  // ratio_pow can be large while lower_p is tiny; clamp round-off.
  return std::clamp(tail, 0.0, 1.0);
}

void check(double alpha, double nu, std::size_t servers,
           std::size_t capacity, double tau) {
  UPA_REQUIRE(std::isfinite(tau) && tau >= 0.0,
              "deadline must be non-negative");
  UPA_REQUIRE(std::isfinite(alpha) && alpha > 0.0 && std::isfinite(nu) &&
                  nu > 0.0,
              "rates must be positive");
  UPA_REQUIRE(servers >= 1 && capacity >= servers,
              "need 1 <= servers <= capacity");
}

}  // namespace

double mmck_response_time_tail(double alpha, double nu, std::size_t servers,
                               std::size_t capacity, double tau) {
  check(alpha, nu, servers, capacity, tau);
  const MmckMetrics m = mmck_metrics(alpha, nu, servers, capacity);
  const double accepted = 1.0 - m.blocking;
  UPA_ASSERT(accepted > 0.0);

  double tail = 0.0;
  for (std::size_t j = 0; j < capacity; ++j) {  // j = K would be blocked
    const double weight = m.state_probabilities[j] / accepted;
    if (j < servers) {
      tail += weight * std::exp(-nu * tau);
    } else {
      tail += weight * wait_plus_service_tail(
                           j - servers + 1,
                           static_cast<double>(servers) * nu, nu, tau);
    }
  }
  return std::clamp(tail, 0.0, 1.0);
}

double mmck_mean_response_time(double alpha, double nu, std::size_t servers,
                               std::size_t capacity) {
  check(alpha, nu, servers, capacity, 0.0);
  const MmckMetrics m = mmck_metrics(alpha, nu, servers, capacity);
  const double accepted = 1.0 - m.blocking;
  double mean = 0.0;
  for (std::size_t j = 0; j < capacity; ++j) {
    const double weight = m.state_probabilities[j] / accepted;
    double t = 1.0 / nu;  // own service
    if (j >= servers) {
      t += static_cast<double>(j - servers + 1) /
           (static_cast<double>(servers) * nu);
    }
    mean += weight * t;
  }
  return mean;
}

double mmck_response_time_quantile(double alpha, double nu,
                                   std::size_t servers, std::size_t capacity,
                                   double epsilon) {
  check(alpha, nu, servers, capacity, 0.0);
  UPA_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
              "epsilon must lie strictly in (0, 1)");
  // Bracket: the tail at tau = 0 is 1; grow until below epsilon.
  double hi = 1.0 / nu;
  while (mmck_response_time_tail(alpha, nu, servers, capacity, hi) >
         epsilon) {
    hi *= 2.0;
    UPA_REQUIRE(hi < 1e12 / nu, "quantile bracket failed to close");
  }
  double lo = 0.0;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (mmck_response_time_tail(alpha, nu, servers, capacity, mid) >
        epsilon) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo <= 1e-12 * hi) break;
  }
  return hi;
}

double mmck_served_within(double alpha, double nu, std::size_t servers,
                          std::size_t capacity, double tau) {
  const double blocking =
      mmck_loss_probability(alpha, nu, servers, capacity);
  const double on_time =
      1.0 - mmck_response_time_tail(alpha, nu, servers, capacity, tau);
  return (1.0 - blocking) * on_time;
}

}  // namespace upa::queueing
