// Tests for the end-to-end system simulation: trajectory sampler
// correctness and agreement of the instantaneous-session regime with the
// analytic eq. (10).

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/sim/trajectory.hpp"
#include "upa/ta/end_to_end_sim.hpp"
#include "upa/ta/user_availability.hpp"

namespace usim = upa::sim;
namespace ut = upa::ta;
namespace um = upa::markov;
using upa::common::ModelError;

TEST(Trajectory, TwoStateOccupancyApproachesAvailability) {
  const double lambda = 0.2;
  const double mu = 1.0;
  usim::Xoshiro256 rng(7);
  double total = 0.0;
  const int reps = 40;
  for (int r = 0; r < reps; ++r) {
    const auto traj =
        usim::sample_component_trajectory(lambda, mu, 5000.0, rng);
    total += traj.occupancy({0});
  }
  EXPECT_NEAR(total / reps, mu / (lambda + mu), 0.01);
}

TEST(Trajectory, StateAtIsPiecewiseConstant) {
  usim::Xoshiro256 rng(3);
  const auto traj = usim::sample_component_trajectory(0.5, 0.5, 100.0, rng);
  EXPECT_EQ(traj.state_at(0.0), 0u);  // starts up
  // Occupancies of the two states partition the horizon.
  EXPECT_NEAR(traj.occupancy({0}) + traj.occupancy({1}), 1.0, 1e-12);
  EXPECT_THROW((void)traj.state_at(101.0), ModelError);
}

TEST(Trajectory, AbsorbingStatePersists) {
  um::Ctmc chain(2);
  chain.add_rate(0, 1, 10.0);  // state 1 absorbing
  usim::Xoshiro256 rng(5);
  const usim::CtmcTrajectory traj(chain, 0, 50.0, rng);
  EXPECT_EQ(traj.state_at(49.9), 1u);
  EXPECT_GT(traj.occupancy({1}), 0.9);
}

TEST(Trajectory, FailureRateForAvailability) {
  EXPECT_NEAR(usim::failure_rate_for_availability(0.9, 1.0), 1.0 / 9.0,
              1e-12);
  const double lambda = usim::failure_rate_for_availability(0.9966, 1.0);
  EXPECT_NEAR(um::two_state_steady_availability(lambda, 1.0), 0.9966,
              1e-12);
  EXPECT_THROW((void)usim::failure_rate_for_availability(1.0, 1.0),
               ModelError);
}

TEST(EndToEnd, InstantSessionsReproduceEq10) {
  // think = 0: every invocation sees one resource snapshot, which is
  // exactly eq. (10)'s regime. Moderate external replication so the
  // availabilities are far from 1 (more sensitive test).
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(2);
  ut::EndToEndOptions options;
  options.horizon_hours = 20000.0;
  options.think_time_hours = 0.0;
  options.sessions_per_replication = 30000;
  options.replications = 6;
  options.seed = 2026;
  const auto result =
      ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  const double analytic = ut::user_availability_eq10(ut::UserClass::kB, p);
  // Finite-horizon resource sampling adds bias beyond the CI; allow a
  // small extra band.
  EXPECT_NEAR(result.perceived_availability.mean, analytic,
              result.perceived_availability.half_width + 0.01);
  EXPECT_GT(result.observed_web_service_availability, 0.999);
  EXPECT_DOUBLE_EQ(result.mean_session_duration_hours, 0.0);
}

TEST(EndToEnd, ThinkTimeLowersPerceivedAvailability) {
  // Long think times decorrelate the invocations: a session must now
  // survive several independent-ish snapshots, so fewer sessions see
  // every function available (failures are positively correlated within
  // a snapshot, which HELPS joint success).
  const auto p =
      ut::TaParameters::paper_defaults().with_reservation_systems(1);
  ut::EndToEndOptions options;
  options.horizon_hours = 30000.0;
  options.sessions_per_replication = 30000;
  options.replications = 6;
  options.seed = 99;

  options.think_time_hours = 0.0;
  const auto instant = ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  options.think_time_hours = 2.0;  // extreme, to force decorrelation
  const auto slow = ut::simulate_end_to_end(ut::UserClass::kB, p, options);
  EXPECT_LT(slow.perceived_availability.mean,
            instant.perceived_availability.mean);
  EXPECT_GT(slow.mean_session_duration_hours, 0.5);
}

TEST(EndToEnd, RejectsBadOptions) {
  const auto p = ut::TaParameters::paper_defaults();
  ut::EndToEndOptions options;
  options.horizon_hours = -1.0;
  EXPECT_THROW((void)ut::simulate_end_to_end(ut::UserClass::kA, p, options),
               ModelError);
  options.horizon_hours = 100.0;
  options.replications = 1;
  EXPECT_THROW((void)ut::simulate_end_to_end(ut::UserClass::kA, p, options),
               ModelError);
}
