#include "upa/obs/collect.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/linalg/matrix.hpp"
#include "upa/obs/export.hpp"
#include "upa/serve/json.hpp"
#include "upa/serve/loadgen.hpp"
#include "upa/ta/functions.hpp"
#include "upa/ta/user_availability.hpp"

namespace upa::obs {

namespace {

/// Key for per-process span lookup (span ids are per-process).
using SpanKey = std::pair<std::string, std::uint64_t>;

/// Attempt outcomes that imply the replica accepted and handled the
/// request, so a matching server-side span must exist. An acceptor
/// rejection (503 written without reading) and a transport failure
/// legitimately leave no server span.
bool outcome_needs_server_span(const std::string& outcome) {
  return outcome == "ok" || outcome == "deadline" || outcome == "error";
}

std::string outcome_for_code(double code) {
  const int c = static_cast<int>(code);
  if (c == 200) return "ok";
  if (c == 503) return "rejected";
  if (c == 504) return "deadline";
  return "error";
}

serve::Json span_to_json(const CollectedSpan& span) {
  serve::Json line = serve::Json::object();
  line.set("telemetry", serve::Json("span"));
  line.set("process", serve::Json(span.process));
  line.set("id", serve::Json(static_cast<double>(span.id)));
  line.set("parent", serve::Json(static_cast<double>(span.parent)));
  line.set("name", serve::Json(span.name));
  line.set("level", serve::Json(span.level));
  line.set("domain", serve::Json(span.domain));
  line.set("start", serve::Json(span.start));
  line.set("end", serve::Json(span.end));
  serve::Json attrs = serve::Json::object();
  for (const auto& [key, value] : span.text_attrs) {
    attrs.set(key, serve::Json(value));
  }
  for (const auto& [key, value] : span.number_attrs) {
    attrs.set(key, serve::Json(value));
  }
  line.set("attrs", std::move(attrs));
  return line;
}

}  // namespace

bool CollectedSpan::has_number(const std::string& key) const {
  return number_attrs.find(key) != number_attrs.end();
}

double CollectedSpan::number(const std::string& key, double fallback) const {
  const auto it = number_attrs.find(key);
  return it != number_attrs.end() ? it->second : fallback;
}

std::string CollectedSpan::text(const std::string& key) const {
  const auto it = text_attrs.find(key);
  return it != text_attrs.end() ? it->second : std::string();
}

bool TraceCollector::ingest_line(const std::string& line) {
  if (line.find_first_not_of(" \t\r") == std::string::npos) return false;
  serve::Json value;
  try {
    value = serve::parse_json(line);
  } catch (const std::exception&) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++unrecognized_;
    return false;
  }
  const serve::Json* kind =
      value.is_object() ? value.find("telemetry") : nullptr;
  const serve::Json* process =
      value.is_object() ? value.find("process") : nullptr;
  if (kind == nullptr || !kind->is_string() || process == nullptr ||
      !process->is_string()) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++unrecognized_;
    return false;
  }

  std::lock_guard<std::mutex> lock(mutex_);
  ProcessIngest& ingest = processes_[process->as_string()];
  ingest.process = process->as_string();

  if (kind->as_string() == "metrics") {
    const serve::Json* seq = value.find("seq");
    if (seq != nullptr && seq->is_number()) {
      const auto n = static_cast<std::uint64_t>(seq->as_number());
      if (ingest.metrics_lines > 0 && n > ingest.last_seq + 1) {
        ingest.seq_gaps += n - ingest.last_seq - 1;
      }
      ingest.last_seq = n;
    }
    if (const serve::Json* dropped = value.find("dropped_spans");
        dropped != nullptr && dropped->is_number()) {
      ingest.dropped_spans =
          static_cast<std::uint64_t>(dropped->as_number());
    }
    ++ingest.metrics_lines;
    return true;
  }

  if (kind->as_string() != "span") {
    ++unrecognized_;
    return false;
  }
  const serve::Json* id = value.find("id");
  const serve::Json* name = value.find("name");
  const serve::Json* level = value.find("level");
  const serve::Json* start = value.find("start");
  const serve::Json* end = value.find("end");
  if (id == nullptr || !id->is_number() || name == nullptr ||
      !name->is_string() || level == nullptr || !level->is_string() ||
      start == nullptr || !start->is_number() || end == nullptr ||
      !end->is_number()) {
    ++unrecognized_;
    return false;
  }
  CollectedSpan span;
  span.process = process->as_string();
  span.id = static_cast<std::uint64_t>(id->as_number());
  if (const serve::Json* parent = value.find("parent");
      parent != nullptr && parent->is_number()) {
    span.parent = static_cast<std::uint64_t>(parent->as_number());
  }
  span.name = name->as_string();
  span.level = level->as_string();
  if (const serve::Json* domain = value.find("domain");
      domain != nullptr && domain->is_string()) {
    span.domain = domain->as_string();
  }
  span.start = start->as_number();
  span.end = end->as_number();
  if (const serve::Json* attrs = value.find("attrs");
      attrs != nullptr && attrs->is_object()) {
    for (const auto& [key, attr] : attrs->as_object()) {
      if (attr.is_number()) {
        span.number_attrs[key] = attr.as_number();
      } else if (attr.is_string()) {
        span.text_attrs[key] = attr.as_string();
      }
    }
  }
  spans_.push_back(std::move(span));
  ++ingest.span_lines;
  return true;
}

std::size_t TraceCollector::ingest_jsonl(const std::string& text) {
  std::size_t recognized = 0;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find('\n', begin);
    if (end == std::string::npos) end = text.size();
    if (end > begin) {
      if (ingest_line(text.substr(begin, end - begin))) ++recognized;
    }
    begin = end + 1;
  }
  return recognized;
}

std::vector<CollectedSpan> TraceCollector::spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

std::vector<ProcessIngest> TraceCollector::processes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ProcessIngest> out;
  out.reserve(processes_.size());
  for (const auto& [name, ingest] : processes_) out.push_back(ingest);
  return out;
}

std::uint64_t TraceCollector::dropped_spans_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, ingest] : processes_) {
    total += ingest.dropped_spans;
  }
  return total;
}

std::uint64_t TraceCollector::unrecognized_lines() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return unrecognized_;
}

ReassemblyReport TraceCollector::reassemble() const {
  std::lock_guard<std::mutex> lock(mutex_);
  ReassemblyReport report;

  std::map<SpanKey, std::vector<const CollectedSpan*>> children;
  for (const CollectedSpan& span : spans_) {
    if (span.parent != 0) {
      children[{span.process, span.parent}].push_back(&span);
    }
  }

  // Pass 1: dispatch_request roots become requests, their
  // dispatch_attempt children the attempt chain (in begin order --
  // span ids are monotone within a process).
  std::map<std::string, AssembledTrace> traces;
  for (const CollectedSpan& span : spans_) {
    if (span.level != "dispatch_request") continue;
    const std::string trace_id = span.text("trace_id");
    if (trace_id.empty()) continue;
    AssembledTrace& trace = traces[trace_id];
    trace.trace_id = trace_id;
    TraceRequest request;
    request.root = &span;
    request.method = span.name;
    request.outcome = span.text("outcome");
    std::vector<const CollectedSpan*> kids;
    if (const auto it = children.find({span.process, span.id});
        it != children.end()) {
      kids = it->second;
    }
    std::sort(kids.begin(), kids.end(),
              [](const CollectedSpan* a, const CollectedSpan* b) {
                return a->id < b->id;
              });
    for (const CollectedSpan* kid : kids) {
      if (kid->level != "dispatch_attempt") continue;
      TraceAttempt attempt;
      attempt.span = kid;
      attempt.ref = static_cast<std::uint64_t>(kid->number("ref"));
      attempt.upstream = kid->text("upstream");
      attempt.outcome = kid->text("outcome");
      request.attempts.push_back(std::move(attempt));
    }
    trace.requests.push_back(std::move(request));
  }

  // Pass 2: direct (front-less) serve_request roots -- a propagated
  // context with span_id 0 -- are requests in their own right.
  for (const CollectedSpan& span : spans_) {
    if (span.level != "serve_request") continue;
    const std::string trace_id = span.text("trace_id");
    if (trace_id.empty()) continue;
    if (static_cast<std::uint64_t>(span.number("parent_span")) != 0) {
      continue;
    }
    AssembledTrace& trace = traces[trace_id];
    trace.trace_id = trace_id;
    TraceRequest request;
    request.root = &span;
    request.method = span.name;
    request.outcome = outcome_for_code(span.number("code"));
    trace.requests.push_back(std::move(request));
  }

  // Requests are final now; attempt addresses are stable. Index the
  // propagated refs so replica spans can be stitched in.
  std::map<std::pair<std::string, std::uint64_t>, TraceAttempt*> by_ref;
  for (auto& [trace_id, trace] : traces) {
    for (TraceRequest& request : trace.requests) {
      for (TraceAttempt& attempt : request.attempts) {
        if (attempt.ref != 0) {
          by_ref[{trace_id, attempt.ref}] = &attempt;
        }
      }
    }
  }

  // Pass 3: attach serve_request spans to the attempt whose ref they
  // echo as parent_span, plus their serve_phase children.
  for (const CollectedSpan& span : spans_) {
    if (span.level != "serve_request") continue;
    const std::string trace_id = span.text("trace_id");
    if (trace_id.empty()) continue;
    const auto ref = static_cast<std::uint64_t>(span.number("parent_span"));
    if (ref == 0) continue;
    const auto it = by_ref.find({trace_id, ref});
    if (it == by_ref.end()) {
      ++report.orphan_server_roots;
      continue;
    }
    TraceAttempt& attempt = *it->second;
    attempt.server_root = &span;
    if (const auto kids = children.find({span.process, span.id});
        kids != children.end()) {
      for (const CollectedSpan* kid : kids->second) {
        if (kid->level == "serve_phase") {
          attempt.server_phases.push_back(kid);
        }
      }
      std::sort(attempt.server_phases.begin(), attempt.server_phases.end(),
                [](const CollectedSpan* a, const CollectedSpan* b) {
                  return a->id < b->id;
                });
    }
  }

  // Completeness: the root's declared attempt count must match its
  // children, and every attempt the replica actually handled must have
  // its server-side span.
  for (auto& [trace_id, trace] : traces) {
    bool all = !trace.requests.empty();
    for (TraceRequest& request : trace.requests) {
      if (request.root->level == "dispatch_request") {
        const auto declared =
            static_cast<std::size_t>(request.root->number("attempts"));
        if (declared != request.attempts.size()) {
          request.complete = false;
          request.incompleteness =
              "attempt spans missing: declared " +
              std::to_string(declared) + ", found " +
              std::to_string(request.attempts.size());
        }
        for (const TraceAttempt& attempt : request.attempts) {
          if (!request.complete) break;
          if (outcome_needs_server_span(attempt.outcome) &&
              attempt.server_root == nullptr) {
            request.complete = false;
            request.incompleteness =
                "no server span for " + attempt.outcome + " attempt on " +
                attempt.upstream;
          }
        }
      }
      all = all && request.complete;
    }
    trace.complete = all;
    if (all) ++report.complete_traces;
  }

  report.traces.reserve(traces.size());
  for (auto& [trace_id, trace] : traces) {
    report.traces.push_back(std::move(trace));
  }
  return report;
}

double TraceCollector::accounted_fraction(
    const ReassemblyReport& report,
    const std::vector<std::string>& expected_trace_ids) {
  if (expected_trace_ids.empty()) return 1.0;
  std::set<std::string> complete;
  for (const AssembledTrace& trace : report.traces) {
    if (trace.complete) complete.insert(trace.trace_id);
  }
  std::size_t found = 0;
  for (const std::string& id : expected_trace_ids) {
    if (complete.contains(id)) ++found;
  }
  return static_cast<double>(found) /
         static_cast<double>(expected_trace_ids.size());
}

std::string TraceCollector::merged_chrome_trace(
    const ReassemblyReport& report) const {
  std::lock_guard<std::mutex> lock(mutex_);

  // Process table in name order (deterministic pids).
  std::map<std::string, int> pid_of;
  for (const auto& [name, ingest] : processes_) {
    pid_of.emplace(name, static_cast<int>(pid_of.size()) + 1);
  }
  for (const CollectedSpan& span : spans_) {
    pid_of.emplace(span.process, static_cast<int>(pid_of.size()) + 1);
  }

  // Clock alignment: each replica's wall clock starts at its own tracer
  // epoch, so shift every non-reference process onto the front's
  // timeline by matching serve_request spans to the midpoint of their
  // dispatch_attempt window. Reference = the process owning the
  // dispatch spans (first process otherwise).
  std::map<std::string, double> offset;
  std::map<std::string, std::pair<double, std::size_t>> sums;
  for (const AssembledTrace& trace : report.traces) {
    for (const TraceRequest& request : trace.requests) {
      for (const TraceAttempt& attempt : request.attempts) {
        if (attempt.server_root == nullptr || attempt.span == nullptr) {
          continue;
        }
        const double attempt_mid =
            (attempt.span->start + attempt.span->end) / 2.0;
        const double server_mid =
            (attempt.server_root->start + attempt.server_root->end) / 2.0;
        auto& [sum, count] = sums[attempt.server_root->process];
        sum += attempt_mid - server_mid;
        ++count;
      }
    }
  }
  for (const auto& [process, aggregate] : sums) {
    offset[process] = aggregate.first / static_cast<double>(aggregate.second);
  }

  // tid = the span's root within its process, so every request renders
  // as one row per process track.
  std::map<SpanKey, const CollectedSpan*> by_key;
  for (const CollectedSpan& span : spans_) {
    by_key[{span.process, span.id}] = &span;
  }
  const auto root_id = [&](const CollectedSpan& span) {
    const CollectedSpan* cursor = &span;
    for (std::size_t hops = 0; cursor->parent != 0 && hops < 64; ++hops) {
      const auto it = by_key.find({cursor->process, cursor->parent});
      if (it == by_key.end()) break;
      cursor = it->second;
    }
    return cursor->id;
  };

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event) {
    if (!first) out += ',';
    first = false;
    out += "\n" + event;
  };
  for (const auto& [process, pid] : pid_of) {
    emit("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
         std::to_string(pid) + ",\"tid\":0,\"args\":{\"name\":\"" +
         json_escape(process) + "\"}}");
  }
  for (const CollectedSpan& span : spans_) {
    const double shift =
        offset.contains(span.process) ? offset.at(span.process) : 0.0;
    const double ts = (span.start + shift) * 1e6;
    const double dur = (span.end - span.start) * 1e6;
    std::string args = "{\"process\":\"" + json_escape(span.process) + '"';
    for (const auto& [key, text] : span.text_attrs) {
      args += ",\"" + json_escape(key) + "\":\"" + json_escape(text) + '"';
    }
    for (const auto& [key, number] : span.number_attrs) {
      args += ",\"" + json_escape(key) + "\":" + serve::format_number(number);
    }
    args += '}';
    emit("{\"name\":\"" + json_escape(span.name) + "\",\"cat\":\"" +
         json_escape(span.level) + "\",\"ph\":\"X\",\"ts\":" +
         serve::format_number(ts) + ",\"dur\":" +
         serve::format_number(dur) + ",\"pid\":" +
         std::to_string(pid_of.at(span.process)) + ",\"tid\":" +
         std::to_string(root_id(span)) + ",\"args\":" + args + "}");
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

std::string TraceCollector::merged_spans_jsonl() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<const CollectedSpan*> ordered;
  ordered.reserve(spans_.size());
  for (const CollectedSpan& span : spans_) ordered.push_back(&span);
  std::sort(ordered.begin(), ordered.end(),
            [](const CollectedSpan* a, const CollectedSpan* b) {
              return a->process != b->process ? a->process < b->process
                                              : a->id < b->id;
            });
  std::string out;
  for (const CollectedSpan* span : ordered) {
    out += span_to_json(*span).dump() + "\n";
  }
  return out;
}

MinedProfile TraceCollector::mine_profile(const ReassemblyReport& report) {
  // Rebuild each client connection's invocation sequence from the
  // (conn, seq) attributes traced requests carry.
  std::map<std::pair<std::string, std::uint64_t>,
           std::vector<std::pair<std::uint64_t, std::string>>>
      sequences;
  for (const AssembledTrace& trace : report.traces) {
    for (const TraceRequest& request : trace.requests) {
      if (!request.complete) continue;
      if (!request.root->has_number("conn")) continue;
      const auto conn =
          static_cast<std::uint64_t>(request.root->number("conn"));
      const auto seq =
          static_cast<std::uint64_t>(request.root->number("seq"));
      sequences[{request.root->process, conn}].emplace_back(seq,
                                                            request.method);
    }
  }

  std::vector<std::string> names;
  names.reserve(ta::kAllFunctions.size());
  for (const ta::TaFunction f : ta::kAllFunctions) {
    names.push_back(ta::function_name(f));
  }
  const std::size_t n = names.size();
  const auto function_of = [&](const std::string& method) {
    const std::string function = serve::function_for_method(method);
    for (std::size_t i = 0; i < n; ++i) {
      if (names[i] == function) return i;
    }
    return n;  // outside the session mapping
  };

  MinedProfile mined{
      profile::OperationalProfile(names,
                                  [&] {
                                    linalg::Matrix p(n + 2, n + 2);
                                    p(0, n + 1) = 1.0;
                                    p(n + 1, n + 1) = 1.0;
                                    for (std::size_t i = 1; i <= n; ++i) {
                                      p(i, n + 1) = 1.0;
                                    }
                                    return p;
                                  }()),
      profile::ScenarioSet(names)};

  linalg::Matrix counts(n + 2, n + 2);
  std::map<std::set<std::size_t>, std::size_t> visited_sets;
  std::size_t walks = 0;
  for (auto& [key, sequence] : sequences) {
    std::sort(sequence.begin(), sequence.end());
    std::vector<std::size_t> walk;
    for (const auto& [seq, method] : sequence) {
      const std::size_t f = function_of(method);
      if (f == n) {
        ++mined.skipped_invocations;
        continue;
      }
      walk.push_back(f);
    }
    if (walk.empty()) continue;
    ++walks;
    mined.invocations += walk.size();
    std::size_t state = profile::NodeIndex::kStart;
    std::set<std::size_t> visited;
    for (const std::size_t f : walk) {
      counts(state, f + 1) += 1.0;
      state = f + 1;
      visited.insert(f);
    }
    counts(state, n + 1) += 1.0;
    ++visited_sets[visited];
  }
  UPA_REQUIRE(walks > 0,
              "profile mining needs at least one traced session walk "
              "over the Table 1 method mapping");
  mined.walks = walks;

  // Row-normalize the transition counts; a function never visited sends
  // its (unobserved, probability-zero) row straight to Exit to keep the
  // matrix stochastic.
  linalg::Matrix p(n + 2, n + 2);
  for (std::size_t i = 0; i <= n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n + 2; ++j) row_sum += counts(i, j);
    if (row_sum <= 0.0) {
      p(i, n + 1) = 1.0;
      continue;
    }
    for (std::size_t j = 0; j < n + 2; ++j) {
      p(i, j) = counts(i, j) / row_sum;
    }
  }
  p(n + 1, n + 1) = 1.0;
  mined.profile = profile::OperationalProfile(names, std::move(p));

  for (const auto& [functions, count] : visited_sets) {
    std::string label;
    for (const std::size_t f : functions) {
      if (!label.empty()) label += '-';
      label += names[f];
    }
    mined.classes.add(label, functions,
                      static_cast<double>(count) /
                          static_cast<double>(walks));
  }
  return mined;
}

ProfileComparison TraceCollector::compare_with_hand_specified(
    const MinedProfile& mined, ta::UserClass uclass,
    const ta::TaParameters& params) {
  ProfileComparison out;
  out.walks = mined.walks;
  out.hand_availability = ta::user_availability_eq10(uclass, params);

  // The mined availability is the mean over walks of a per-class weight
  // (eq. 10 of the singleton scenario), so its sampling error follows
  // from the weights' empirical variance.
  double mean = 0.0;
  double second_moment = 0.0;
  for (const profile::ScenarioClass& sc : mined.classes.scenarios()) {
    profile::ScenarioSet singleton(mined.classes.function_names());
    singleton.add(sc.label, sc.functions, 1.0);
    const double value =
        ta::user_availability_eq10_scenarios(singleton, params);
    mean += sc.probability * value;
    second_moment += sc.probability * value * value;
  }
  out.mined_availability =
      ta::user_availability_eq10_scenarios(mined.classes, params);
  out.difference = std::abs(out.mined_availability - out.hand_availability);
  const double variance = std::max(0.0, second_moment - mean * mean);
  const double stderr_mean =
      std::sqrt(variance / static_cast<double>(std::max<std::size_t>(
                               mined.walks, 1)));
  out.tolerance = 4.0 * stderr_mean + 0.02;
  out.within_tolerance = out.difference <= out.tolerance;
  return out;
}

}  // namespace upa::obs
