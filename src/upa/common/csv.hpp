#pragma once
// CSV emission so benchmark harness outputs can be post-processed (plots,
// regression dashboards) without re-running the models.

#include <string>
#include <vector>

namespace upa::common {

/// Accumulates rows and writes RFC-4180-ish CSV (quotes cells containing
/// separators/quotes/newlines). Used by bench binaries behind --csv flags.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders the full document (header + rows).
  [[nodiscard]] std::string str() const;

  /// Writes to a file; throws ModelError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace upa::common
