#pragma once
// Model-predictive admission policy: turns a RateEstimate into a target
// (i, K) for the controlled upa_served. The planner is the paper's own
// loss surface -- queueing::mmck_smallest_config searches for the
// smallest configuration whose analytic p_K(i) meets the SLO at the
// planned load (lambda-hat inflated by a headroom factor, sized to a
// fraction of the SLO so normal estimation noise stays inside it).
//
// Hysteresis keeps the pool from flapping:
//  - Grow (the current config would analytically breach the SLO at the
//    planned load) applies almost immediately -- only a short cooldown
//    after the previous change, so an estimate transient cannot fire
//    two resizes in one controller tick-pair.
//  - Shrink (the current config still meets the SLO, just with more
//    capacity than needed) must stand: the policy only trims after the
//    proposal has been continuously cheaper for a full shrink cooldown.
//
// decide() is a pure proposal; the caller reports back with applied()
// once the reconfigure RPC actually succeeded, so a failed apply never
// desynchronizes the policy's view of the server.

#include <cstddef>
#include <string>

#include "upa/control/estimator.hpp"

namespace upa::control {

struct PolicyOptions {
  /// The SLO: measured loss must stay at or under this.
  double target_loss = 0.08;
  /// Plan to this fraction of the SLO (0.5 = size for half the allowed
  /// loss), leaving the rest as margin for estimation error.
  double sizing_fraction = 0.5;
  /// Plan for lambda-hat inflated by this factor.
  double lambda_headroom = 1.3;
  std::size_t min_workers = 1;
  std::size_t max_workers = 8;
  std::size_t max_capacity = 64;
  /// Minimum seconds between an applied change and the next grow.
  double grow_cooldown_seconds = 0.75;
  /// A shrink proposal must stand continuously for this long.
  double shrink_cooldown_seconds = 6.0;
};

/// One policy evaluation. `act` asks the caller to apply (workers,
/// capacity); the remaining fields describe the plan either way.
struct PolicyDecision {
  bool act = false;
  std::size_t workers = 0;
  std::size_t capacity = 0;
  double predicted_loss = 1.0;  ///< analytic p_K at the proposed config
  bool feasible = false;        ///< plan meets the sizing target in-cap
  std::string reason;  ///< "grow", "shrink", or a "hold:<why>" tag
};

class AdmissionPolicy {
 public:
  /// `workers`/`capacity` seed the policy's view of the server's
  /// current configuration (read from its `stats` RPC).
  AdmissionPolicy(PolicyOptions options, std::size_t workers,
                  std::size_t capacity);

  /// Evaluates the plan at `now` (same clock as the estimator samples).
  /// Pure: internal state only tracks shrink candidacy, never the
  /// applied config.
  [[nodiscard]] PolicyDecision decide(const RateEstimate& estimate,
                                      double now);

  /// Confirms a reconfigure was applied; resets cooldowns.
  void applied(std::size_t workers, std::size_t capacity, double now);

  [[nodiscard]] std::size_t current_workers() const noexcept {
    return workers_;
  }
  [[nodiscard]] std::size_t current_capacity() const noexcept {
    return capacity_;
  }

 private:
  PolicyOptions options_;
  std::size_t workers_;
  std::size_t capacity_;
  double last_change_ = -1e300;    ///< time of the last applied change
  double shrink_since_ = -1.0;     ///< first tick of the current shrink
                                   ///< streak; < 0 = no streak
};

}  // namespace upa::control
