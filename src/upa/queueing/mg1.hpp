#pragma once
// M/G/1 queue via the Pollaczek-Khinchine formulas: mean metrics for
// Poisson arrivals and a general service law described by its first two
// moments. Complements bench_assumptions by giving the analytic
// counterpart of the simulated service-variability sweeps (infinite
// buffer, single server).

namespace upa::queueing {

/// Service-time description by moments.
struct ServiceMoments {
  double mean = 0.0;   ///< E[S]
  double scv = 1.0;    ///< squared coefficient of variation Var[S]/E[S]^2
};

/// Mean steady-state metrics of M/G/1 (requires rho = alpha E[S] < 1).
struct Mg1Metrics {
  double rho = 0.0;
  double mean_in_queue = 0.0;   ///< Lq = rho^2 (1 + scv) / (2 (1 - rho))
  double mean_in_system = 0.0;  ///< L = Lq + rho
  double mean_wait = 0.0;       ///< Wq (Little)
  double mean_response = 0.0;   ///< W = Wq + E[S]
};

[[nodiscard]] Mg1Metrics mg1_metrics(double alpha,
                                     const ServiceMoments& service);

/// Convenience service moment constructors.
[[nodiscard]] ServiceMoments exponential_service(double rate);
[[nodiscard]] ServiceMoments deterministic_service(double time);
[[nodiscard]] ServiceMoments erlang_service(unsigned phases, double rate);

}  // namespace upa::queueing
