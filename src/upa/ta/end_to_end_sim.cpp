#include "upa/ta/end_to_end_sim.hpp"

#include <cmath>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/sim/trajectory.hpp"
#include "upa/ta/services.hpp"

namespace upa::ta {
namespace {

using sim::CtmcTrajectory;
using sim::Xoshiro256;

/// All resource trajectories of one replication.
struct World {
  CtmcTrajectory net;
  CtmcTrajectory lan;
  CtmcTrajectory farm;  // imperfect-coverage chain (states 0..N_W, y_i)
  std::vector<CtmcTrajectory> as_hosts;
  std::vector<CtmcTrajectory> ds_hosts;
  std::vector<CtmcTrajectory> disks;
  std::vector<CtmcTrajectory> flights;
  std::vector<CtmcTrajectory> hotels;
  std::vector<CtmcTrajectory> cars;
  CtmcTrajectory payment;
  std::size_t n_web = 0;
};

CtmcTrajectory black_box(double availability, double mu, double horizon,
                         Xoshiro256& rng) {
  return sim::sample_component_trajectory(
      sim::failure_rate_for_availability(availability, mu), mu, horizon,
      rng);
}

World sample_world(const TaParameters& p, const EndToEndOptions& o,
                   Xoshiro256& rng) {
  const double h = o.horizon_hours;
  const double mu = o.black_box_repair_rate;
  const core::WebFarmParams farm_params = web_farm_params(p);
  const auto chain = core::imperfect_coverage_chain(farm_params);

  auto replicate = [&](std::size_t count, double availability) {
    std::vector<CtmcTrajectory> components;
    components.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      components.push_back(black_box(availability, mu, h, rng));
    }
    return components;
  };

  const bool redundant = p.architecture == Architecture::kRedundant;
  World world{
      black_box(p.a_net, mu, h, rng),
      black_box(p.a_lan, mu, h, rng),
      CtmcTrajectory(chain.chain, /*all up*/ farm_params.servers, h, rng),
      replicate(redundant ? 2 : 1, p.a_cas),
      replicate(redundant ? 2 : 1, p.a_cds),
      replicate(redundant ? 2 : 1, p.a_disk),
      replicate(p.n_flight, p.a_reservation),
      replicate(p.n_hotel, p.a_reservation),
      replicate(p.n_car, p.a_reservation),
      black_box(p.a_payment, mu, h, rng),
      farm_params.servers,
  };
  return world;
}

bool any_up(const std::vector<CtmcTrajectory>& components, double t) {
  for (const CtmcTrajectory& c : components) {
    if (c.state_at(t) == 0) return true;  // two-state: 0 = up
  }
  return false;
}

/// Per-session cached randomness, matching eq. (10)'s semantics: the web
/// service is available (or not) once per session -- A(WS) multiplies the
/// whole scenario -- and Browse takes one execution path per session.
struct SessionDraws {
  double web;
  double browse_branch;
};

class FunctionEvaluator {
 public:
  FunctionEvaluator(const World& world, const TaParameters& p)
      : world_(world), p_(p) {
    // 1 - p_K(i) per operational-server count.
    serve_.assign(world.n_web + 1, 0.0);
    for (std::size_t i = 1; i <= world.n_web; ++i) {
      serve_[i] = 1.0 - queueing::mmck_loss_probability(p.alpha, p.nu, i,
                                                        p.buffer);
    }
  }

  [[nodiscard]] bool evaluate(TaFunction f, double t,
                              const SessionDraws& draws) const {
    if (world_.net.state_at(t) != 0 || world_.lan.state_at(t) != 0) {
      return false;
    }
    // Web service: farm must be in an operational state i >= 1 and the
    // request must clear the buffer.
    const std::size_t farm_state = world_.farm.state_at(t);
    if (farm_state == 0 || farm_state > world_.n_web) return false;  // y_i
    if (draws.web >= serve_[farm_state]) return false;
    const bool as_up = any_up(world_.as_hosts, t);
    const bool ds_up = any_up(world_.ds_hosts, t) && any_up(world_.disks, t);
    switch (f) {
      case TaFunction::kHome:
        return true;
      case TaFunction::kBrowse: {
        if (draws.browse_branch < p_.q23) return true;  // cache hit
        if (!as_up) return false;
        if (draws.browse_branch < p_.q23 + p_.q24 * p_.q45) return true;
        return ds_up;
      }
      case TaFunction::kSearch:
      case TaFunction::kBook:
        return as_up && ds_up && any_up(world_.flights, t) &&
               any_up(world_.hotels, t) && any_up(world_.cars, t);
      case TaFunction::kPay:
        return as_up && ds_up && world_.payment.state_at(t) == 0;
    }
    UPA_ASSERT(false);
    return false;
  }

 private:
  const World& world_;
  const TaParameters& p_;
  std::vector<double> serve_;
};

}  // namespace

EndToEndResult simulate_end_to_end(UserClass uclass,
                                   const TaParameters& params,
                                   const EndToEndOptions& options) {
  params.validate();
  UPA_REQUIRE(options.horizon_hours > 0.0 && options.think_time_hours >= 0.0,
              "horizon must be positive, think time non-negative");
  UPA_REQUIRE(options.replications >= 2 &&
                  options.sessions_per_replication > 0,
              "need sessions and at least two replications");

  const auto profile = fitted_session_graph(uclass);
  const auto& transition = profile.transition_matrix();
  const std::size_t exit_state = profile.exit_state();

  Xoshiro256 master(options.seed);
  std::vector<double> replication_availability;
  double web_occupancy_sum = 0.0;
  double duration_sum = 0.0;
  std::uint64_t duration_count = 0;

  for (std::size_t rep = 0; rep < options.replications; ++rep) {
    Xoshiro256 rng = master.split();
    const World world = sample_world(params, options, rng);
    const FunctionEvaluator evaluator(world, params);

    // Diagnostic: time-average web-service "serving probability".
    {
      std::vector<std::size_t> single(1);
      double weighted = 0.0;
      for (std::size_t i = 1; i <= world.n_web; ++i) {
        single[0] = i;
        weighted +=
            world.farm.occupancy(single) *
            (1.0 - queueing::mmck_loss_probability(params.alpha, params.nu,
                                                   i, params.buffer));
      }
      web_occupancy_sum += weighted;
    }

    std::uint64_t successes = 0;
    for (std::uint64_t s = 0; s < options.sessions_per_replication; ++s) {
      // Uniform session start, with headroom so long sessions fit.
      double t = rng.uniform01() * options.horizon_hours * 0.8;
      SessionDraws draws{rng.uniform01(), rng.uniform01()};

      std::size_t state = upa::profile::NodeIndex::kStart;
      bool ok = true;
      double start = t;
      while (state != exit_state) {
        // Next node.
        double u = rng.uniform01();
        std::size_t next = exit_state;
        for (std::size_t c = 0; c < transition.cols(); ++c) {
          const double pr = transition(state, c);
          if (u < pr) {
            next = c;
            break;
          }
          u -= pr;
        }
        state = next;
        if (state == exit_state) break;
        if (options.think_time_hours > 0.0 &&
            state != upa::profile::NodeIndex::kStart) {
          t += -std::log(rng.uniform01_open_left()) *
               options.think_time_hours;
          UPA_REQUIRE(t < options.horizon_hours,
                      "session ran past the horizon; shorten think time "
                      "or lengthen the horizon");
        }
        const auto f = static_cast<TaFunction>(state - 1);
        if (ok && !evaluator.evaluate(f, t, draws)) ok = false;
      }
      if (ok) ++successes;
      duration_sum += t - start;
      ++duration_count;
    }
    replication_availability.push_back(
        static_cast<double>(successes) /
        static_cast<double>(options.sessions_per_replication));
  }

  EndToEndResult result;
  result.perceived_availability = sim::confidence_interval(
      replication_availability, options.confidence_level);
  result.observed_web_service_availability =
      web_occupancy_sum / static_cast<double>(options.replications);
  result.mean_session_duration_hours =
      duration_sum / static_cast<double>(duration_count);
  return result;
}

}  // namespace upa::ta
