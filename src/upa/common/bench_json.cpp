#include "upa/common/bench_json.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

namespace upa::common {

std::vector<std::pair<std::string, std::string>> bench_json_sections(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> sections;
  std::size_t i = text.find('{');
  if (i == std::string::npos) return sections;
  ++i;
  const auto skip_ws = [&] {
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t' || text[i] == '\n' ||
            text[i] == '\r' || text[i] == ','))
      ++i;
  };
  while (true) {
    skip_ws();
    if (i >= text.size() || text[i] == '}') break;
    if (text[i] != '"') break;
    std::string key;
    ++i;
    while (i < text.size() && text[i] != '"') {
      if (text[i] == '\\' && i + 1 < text.size()) key.push_back(text[i++]);
      key.push_back(text[i++]);
    }
    if (i >= text.size()) break;
    ++i;  // closing quote
    skip_ws();
    if (i >= text.size() || text[i] != ':') break;
    ++i;
    skip_ws();
    const std::size_t value_start = i;
    int depth = 0;
    bool in_string = false;
    while (i < text.size()) {
      const char c = text[i];
      if (in_string) {
        if (c == '\\')
          ++i;
        else if (c == '"')
          in_string = false;
      } else if (c == '"') {
        in_string = true;
      } else if (c == '{' || c == '[') {
        ++depth;
      } else if (c == '}' || c == ']') {
        if (depth == 0) break;
        --depth;
      } else if (c == ',' && depth == 0) {
        break;
      }
      ++i;
    }
    std::size_t value_end = i;
    while (value_end > value_start &&
           (text[value_end - 1] == ' ' || text[value_end - 1] == '\n' ||
            text[value_end - 1] == '\t' || text[value_end - 1] == '\r'))
      --value_end;
    sections.emplace_back(std::move(key),
                          text.substr(value_start, value_end - value_start));
  }
  return sections;
}

void write_bench_json(
    const std::string& path, const std::string& section,
    const std::vector<std::pair<std::string, double>>& fields) {
  std::vector<std::pair<std::string, std::string>> sections;
  {
    std::ifstream in(path);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      sections = bench_json_sections(buf.str());
    }
  }

  std::ostringstream body;
  body << "{";
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) body << ",";
    body << "\n    \"" << fields[i].first << "\": "
         << std::setprecision(std::numeric_limits<double>::max_digits10)
         << fields[i].second;
  }
  body << "\n  }";

  bool replaced = false;
  for (auto& [name, raw] : sections) {
    if (name == section) {
      raw = body.str();
      replaced = true;
    }
  }
  if (!replaced) sections.emplace_back(section, body.str());

  std::ofstream out(path);
  out << "{\n";
  for (std::size_t i = 0; i < sections.size(); ++i) {
    out << "  \"" << sections[i].first << "\": " << sections[i].second
        << (i + 1 < sections.size() ? ",\n" : "\n");
  }
  out << "}\n";
}

}  // namespace upa::common
