#include "upa/ta/end_to_end_sim.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/exec/thread_pool.hpp"
#include "upa/obs/observer.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/queueing/response_time.hpp"
#include "upa/sim/trajectory.hpp"
#include "upa/ta/services.hpp"

namespace upa::ta {
namespace {

using inject::FaultTarget;
using sim::CtmcTrajectory;
using sim::Xoshiro256;

/// All resource trajectories of one replication.
struct World {
  CtmcTrajectory net;
  CtmcTrajectory lan;
  CtmcTrajectory farm;  // imperfect-coverage chain (states 0..N_W, y_i)
  std::vector<CtmcTrajectory> as_hosts;
  std::vector<CtmcTrajectory> ds_hosts;
  std::vector<CtmcTrajectory> disks;
  std::vector<CtmcTrajectory> flights;
  std::vector<CtmcTrajectory> hotels;
  std::vector<CtmcTrajectory> cars;
  CtmcTrajectory payment;
  std::size_t n_web = 0;
};

CtmcTrajectory black_box(double availability, double mu, double horizon,
                         Xoshiro256& rng) {
  return sim::sample_component_trajectory(
      sim::failure_rate_for_availability(availability, mu), mu, horizon,
      rng);
}

World sample_world(const TaParameters& p, const EndToEndOptions& o,
                   Xoshiro256& rng) {
  const double h = o.horizon_hours;
  const double mu = o.black_box_repair_rate;
  const core::WebFarmParams farm_params = web_farm_params(p);
  const auto chain = core::imperfect_coverage_chain(farm_params);

  auto replicate = [&](std::size_t count, double availability) {
    std::vector<CtmcTrajectory> components;
    components.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
      components.push_back(black_box(availability, mu, h, rng));
    }
    return components;
  };

  const bool redundant = p.architecture == Architecture::kRedundant;
  World world{
      black_box(p.a_net, mu, h, rng),
      black_box(p.a_lan, mu, h, rng),
      CtmcTrajectory(chain.chain, /*all up*/ farm_params.servers, h, rng),
      replicate(redundant ? 2 : 1, p.a_cas),
      replicate(redundant ? 2 : 1, p.a_cds),
      replicate(redundant ? 2 : 1, p.a_disk),
      replicate(p.n_flight, p.a_reservation),
      replicate(p.n_hotel, p.a_reservation),
      replicate(p.n_car, p.a_reservation),
      black_box(p.a_payment, mu, h, rng),
      farm_params.servers,
  };
  return world;
}

bool any_up(const std::vector<CtmcTrajectory>& components, double t) {
  for (const CtmcTrajectory& c : components) {
    if (c.state_at(t) == 0) return true;  // two-state: 0 = up
  }
  return false;
}

/// Per-session cached randomness, matching eq. (10)'s semantics: the web
/// service is available (or not) once per session -- A(WS) multiplies the
/// whole scenario -- and Browse takes one execution path per session.
/// A retry is a fresh request, so `web` is re-drawn per retry attempt.
struct SessionDraws {
  double web;
  double browse_branch;
};

class FunctionEvaluator {
 public:
  /// `ob` is the observer to record into -- for parallel runs, the
  /// calling replication's private shard, never the shared parent.
  FunctionEvaluator(const World& world, const TaParameters& p,
                    const EndToEndOptions& o, obs::Observer* ob)
      : world_(world), p_(p), faults_(o.faults) {
    if (ob != nullptr) {
      if (ob->wants(obs::TraceLevel::kService)) {
        tracer_ = &ob->tracer;
      }
      deadline_misses_ = &ob->metrics.counter("ta.deadline_misses");
    }
    // 1 - p_K(i) per operational-server count, and -- when a response
    // deadline is set -- P(T > deadline | served) per server count.
    serve_.assign(world.n_web + 1, 0.0);
    slow_.assign(world.n_web + 1, 0.0);
    for (std::size_t i = 1; i <= world.n_web; ++i) {
      serve_[i] = 1.0 - queueing::mmck_loss_probability(p.alpha, p.nu, i,
                                                        p.buffer);
      if (o.retry.response_timeout_seconds > 0.0) {
        slow_[i] = queueing::mmck_response_time_tail(
            p.alpha, p.nu, i, p.buffer, o.retry.response_timeout_seconds);
      }
    }
  }

  /// One invocation attempt at time t. `deadline_draw` is consulted only
  /// when the retry policy sets a response deadline. Span bookkeeping
  /// (parent invocation span, 0-based attempt number) records which
  /// services the attempt consulted; it never draws randomness, so
  /// tracing cannot perturb results.
  [[nodiscard]] bool evaluate(TaFunction f, double t,
                              const SessionDraws& draws, double deadline_draw,
                              obs::SpanId parent = 0,
                              std::size_t attempt = 0) const {
    const bool net_up = world_.net.state_at(t) == 0 &&
                        !forced(FaultTarget::kInternet, t);
    const bool lan_up =
        world_.lan.state_at(t) == 0 && !forced(FaultTarget::kLan, t);
    service_span("internet", net_up, t, parent, attempt);
    service_span("lan", lan_up, t, parent, attempt);
    if (!net_up || !lan_up) return false;
    // Web service: farm must be in an operational state i >= 1 and the
    // request must clear the buffer (and the deadline, when one is set).
    const std::size_t farm_state = world_.farm.state_at(t);
    bool web_up = true;
    bool deadline_missed = false;
    if (farm_state == 0 || farm_state > world_.n_web) {  // y_i
      web_up = false;
    } else if (forced(FaultTarget::kWebFarm, t)) {
      web_up = false;
    } else if (draws.web >= serve_[farm_state]) {
      web_up = false;
    } else if (deadline_draw < slow_[farm_state]) {  // over deadline
      web_up = false;
      deadline_missed = true;
    }
    service_span("web_service", web_up, t, parent, attempt);
    if (deadline_missed && deadline_misses_ != nullptr) {
      deadline_misses_->add();
    }
    if (!web_up) return false;
    const bool as_up =
        any_up(world_.as_hosts, t) && !forced(FaultTarget::kApplication, t);
    const bool ds_up = any_up(world_.ds_hosts, t) &&
                       !forced(FaultTarget::kDatabase, t) &&
                       any_up(world_.disks, t) &&
                       !forced(FaultTarget::kDisks, t);
    switch (f) {
      case TaFunction::kHome:
        return true;
      case TaFunction::kBrowse: {
        if (draws.browse_branch < p_.q23) return true;  // cache hit
        service_span("application", as_up, t, parent, attempt);
        if (!as_up) return false;
        if (draws.browse_branch < p_.q23 + p_.q24 * p_.q45) return true;
        service_span("database", ds_up, t, parent, attempt);
        return ds_up;
      }
      case TaFunction::kSearch:
      case TaFunction::kBook: {
        const bool flight_up =
            any_up(world_.flights, t) && !forced(FaultTarget::kFlight, t);
        const bool hotel_up =
            any_up(world_.hotels, t) && !forced(FaultTarget::kHotel, t);
        const bool car_up =
            any_up(world_.cars, t) && !forced(FaultTarget::kCar, t);
        service_span("application", as_up, t, parent, attempt);
        service_span("database", ds_up, t, parent, attempt);
        service_span("flight_reservation", flight_up, t, parent, attempt);
        service_span("hotel_reservation", hotel_up, t, parent, attempt);
        service_span("car_reservation", car_up, t, parent, attempt);
        return as_up && ds_up && flight_up && hotel_up && car_up;
      }
      case TaFunction::kPay: {
        const bool pay_up = world_.payment.state_at(t) == 0 &&
                            !forced(FaultTarget::kPayment, t);
        service_span("application", as_up, t, parent, attempt);
        service_span("database", ds_up, t, parent, attempt);
        service_span("payment", pay_up, t, parent, attempt);
        return as_up && ds_up && pay_up;
      }
    }
    UPA_ASSERT(false);
    return false;
  }

 private:
  [[nodiscard]] bool forced(FaultTarget target, double t) const {
    return !faults_.empty() && faults_.forced_down(target, t);
  }

  void service_span(const char* service, bool up, double t,
                    obs::SpanId parent, std::size_t attempt) const {
    if (tracer_ == nullptr) return;
    const obs::SpanId span =
        tracer_->begin(obs::SpanLevel::kServiceCall, service, t,
                       obs::TimeDomain::kModelHours, parent);
    tracer_->end(span, t);
    tracer_->attr(span, "up", up ? 1.0 : 0.0);
    if (attempt > 0) {
      tracer_->attr(span, "retry_attempt", static_cast<double>(attempt));
    }
  }

  const World& world_;
  const TaParameters& p_;
  const inject::FaultPlan& faults_;
  obs::Tracer* tracer_ = nullptr;           // null unless service tracing
  obs::Counter* deadline_misses_ = nullptr;  // null unless obs attached
  std::vector<double> serve_;
  std::vector<double> slow_;  // P(T > deadline | served), per server count
};

/// Everything one replication produces, accumulated privately by its
/// worker and merged in replication order after the join. Keeping the
/// partial sums per replication -- at EVERY thread count, including the
/// serial path -- pins one floating-point summation tree, which is what
/// makes results independent of how replications were scheduled.
struct RepOutcome {
  double availability = 0.0;
  double web_occupancy = 0.0;
  double duration_sum = 0.0;
  std::uint64_t duration_count = 0;
  std::uint64_t retries = 0;
  std::uint64_t abandoned = 0;
  /// Per-replication observer shard (null when no observer is attached).
  std::unique_ptr<obs::Observer> shard;
};

/// Counter-based per-replication stream: the RNG for replication `rep` is
/// the (rep + 1)-th split of a fresh master seeded with `seed` -- a pure
/// function of (seed, rep) that any worker derives without shared state,
/// and exactly the stream the legacy serial `master.split()` loop handed
/// replication `rep`, so parallel runs replay the serial draw sequence
/// bit for bit.
Xoshiro256 replication_stream(std::uint64_t seed, std::size_t rep) {
  Xoshiro256 master(seed);
  Xoshiro256 stream = master.split();
  for (std::size_t i = 0; i < rep; ++i) stream = master.split();
  return stream;
}

}  // namespace

void EndToEndOptions::validate() const {
  UPA_REQUIRE(std::isfinite(horizon_hours) && horizon_hours > 0.0,
              "horizon must be positive");
  UPA_REQUIRE(std::isfinite(think_time_hours) && think_time_hours >= 0.0,
              "think time must be non-negative");
  UPA_REQUIRE(std::isfinite(black_box_repair_rate) &&
                  black_box_repair_rate > 0.0,
              "black-box repair rate must be positive");
  UPA_REQUIRE(replications >= 2,
              "need at least two replications for a confidence interval");
  UPA_REQUIRE(sessions_per_replication > 0,
              "need at least one session per replication");
  UPA_REQUIRE(confidence_level > 0.0 && confidence_level < 1.0,
              "confidence level must lie strictly in (0, 1)");
  retry.validate();
  faults.validate(horizon_hours);
}

EndToEndResult simulate_end_to_end(UserClass uclass,
                                   const TaParameters& params,
                                   const EndToEndOptions& options) {
  params.validate();
  options.validate();

  const auto profile = fitted_session_graph(uclass);
  const auto& transition = profile.transition_matrix();
  const std::size_t exit_state = profile.exit_state();
  const inject::RetryPolicy& retry = options.retry;
  const bool deadline_on = retry.response_timeout_seconds > 0.0;
  const double timeout_hours = retry.response_timeout_seconds / 3600.0;

  obs::Observer* const parent_obs = options.obs;
  const bool trace_sessions =
      parent_obs != nullptr && parent_obs->wants(obs::TraceLevel::kSession);
  const std::string class_name = user_class_name(uclass);
  // Merged outage windows of every target, for the per-session
  // outage-overlap attribute (computed once, shared read-only across
  // replication workers; merged_windows allocates).
  std::vector<std::pair<double, double>> outage_windows;
  if (trace_sessions && !options.faults.empty()) {
    for (FaultTarget target : inject::kAllFaultTargets) {
      const auto merged = options.faults.merged_windows(target);
      outage_windows.insert(outage_windows.end(), merged.begin(),
                            merged.end());
    }
  }

  // One replication, self-contained: private RNG stream derived from
  // (seed, rep), private accumulators, private observer shard. Workers
  // share only read-only inputs, so replications may run on any thread
  // in any order without changing a single bit of the merged result.
  const auto run_replication = [&](std::size_t rep) -> RepOutcome {
    RepOutcome out;
    obs::Observer* ob = nullptr;
    if (parent_obs != nullptr) {
      out.shard = std::make_unique<obs::Observer>(parent_obs->make_shard());
      ob = out.shard.get();
    }
    obs::Tracer* const tracer = ob != nullptr ? &ob->tracer : nullptr;
    const bool trace_invocations =
        ob != nullptr && ob->wants(obs::TraceLevel::kInvocation);
    obs::Counter* const c_sessions =
        ob != nullptr ? &ob->metrics.counter("ta.sessions") : nullptr;
    obs::Counter* const c_failed =
        ob != nullptr ? &ob->metrics.counter("ta.sessions_failed") : nullptr;
    obs::Counter* const c_abandoned =
        ob != nullptr ? &ob->metrics.counter("ta.sessions_abandoned")
                      : nullptr;
    obs::Counter* const c_truncated =
        ob != nullptr ? &ob->metrics.counter("ta.sessions_truncated")
                      : nullptr;
    obs::Counter* const c_invocations =
        ob != nullptr ? &ob->metrics.counter("ta.invocations") : nullptr;
    obs::Counter* const c_invocations_failed =
        ob != nullptr ? &ob->metrics.counter("ta.invocations_failed")
                      : nullptr;
    obs::Counter* const c_retries =
        ob != nullptr ? &ob->metrics.counter("ta.retries") : nullptr;
    obs::Histogram* const h_duration =
        ob != nullptr ? &ob->metrics.histogram(
                            "ta.session_duration_hours",
                            obs::geometric_buckets(1e-3, 10.0, 8))
                      : nullptr;
    obs::Histogram* const h_attempts =
        ob != nullptr ? &ob->metrics.histogram(
                            "ta.invocation_attempts",
                            obs::geometric_buckets(1.0, 2.0, 6))
                      : nullptr;

    Xoshiro256 rng = replication_stream(options.seed, rep);
    const World world = sample_world(params, options, rng);
    const FunctionEvaluator evaluator(world, params, options, ob);

    // Diagnostic: time-average web-service "serving probability", with
    // scripted web-farm outage windows integrated out exactly.
    {
      std::vector<std::size_t> single(1);
      double weighted = 0.0;
      for (std::size_t i = 1; i <= world.n_web; ++i) {
        single[0] = i;
        const double serve =
            1.0 - queueing::mmck_loss_probability(params.alpha, params.nu, i,
                                                  params.buffer);
        weighted += world.farm.occupancy(single) * serve;
        if (!options.faults.empty()) {
          for (const auto& [start, end] :
               options.faults.merged_windows(FaultTarget::kWebFarm)) {
            weighted -= world.farm.occupancy_in(single, start, end) *
                        (end - start) / options.horizon_hours * serve;
          }
        }
      }
      out.web_occupancy = weighted;
    }

    std::uint64_t successes = 0;
    for (std::uint64_t s = 0; s < options.sessions_per_replication; ++s) {
      // Uniform session start, with headroom so long sessions fit.
      double t = rng.uniform01() * options.horizon_hours * 0.8;
      SessionDraws draws{rng.uniform01(), rng.uniform01()};

      obs::SpanId session_span = 0;
      if (trace_sessions) {
        session_span =
            tracer->begin(obs::SpanLevel::kSession, "session", t);
        tracer->attr(session_span, "user_class", class_name);
        tracer->attr(session_span, "replication",
                     static_cast<double>(rep));
        tracer->attr(
            session_span, "scenario",
            static_cast<double>(rep * options.sessions_per_replication + s));
      }
      if (c_sessions != nullptr) c_sessions->add();

      std::size_t state = upa::profile::NodeIndex::kStart;
      bool ok = true;
      bool abandoned = false;
      bool truncated = false;  // retries ran past the measurement horizon
      double start = t;
      while (state != exit_state) {
        // Next node.
        double u = rng.uniform01();
        std::size_t next = exit_state;
        for (std::size_t c = 0; c < transition.cols(); ++c) {
          const double pr = transition(state, c);
          if (u < pr) {
            next = c;
            break;
          }
          u -= pr;
        }
        state = next;
        if (state == exit_state) break;
        if (options.think_time_hours > 0.0 &&
            state != upa::profile::NodeIndex::kStart) {
          t += -std::log(rng.uniform01_open_left()) *
               options.think_time_hours;
          UPA_REQUIRE(t < options.horizon_hours,
                      "session ran past the horizon; shorten think time "
                      "or lengthen the horizon");
        }
        const auto f = static_cast<TaFunction>(state - 1);
        if (ok) {
          obs::SpanId invocation_span = 0;
          if (trace_invocations) {
            invocation_span = tracer->begin(
                obs::SpanLevel::kFunctionInvocation, function_name(f), t,
                obs::TimeDomain::kModelHours, session_span);
          }
          if (c_invocations != nullptr) c_invocations->add();
          // The deadline draw is consumed only when a deadline is set, so
          // the default policy replays the fail-fast draw sequence.
          bool success =
              evaluator.evaluate(f, t, draws,
                                 deadline_on ? rng.uniform01() : 1.0,
                                 invocation_span, 0);
          std::size_t attempt = 0;
          while (!success && retry.enabled() &&
                 attempt < retry.max_retries) {
            if (retry.abandonment_probability > 0.0 &&
                rng.uniform01() < retry.abandonment_probability) {
              abandoned = true;
              break;
            }
            // The failed request burns its timeout, then the user backs
            // off exponentially before re-issuing a fresh request.
            t += timeout_hours + retry.backoff_hours(attempt);
            if (t >= options.horizon_hours) {
              truncated = true;
              break;
            }
            draws.web = rng.uniform01();
            ++attempt;
            ++out.retries;
            if (c_retries != nullptr) c_retries->add();
            success =
                evaluator.evaluate(f, t, draws,
                                   deadline_on ? rng.uniform01() : 1.0,
                                   invocation_span, attempt);
          }
          if (!success) {
            ok = false;
            if (c_invocations_failed != nullptr) c_invocations_failed->add();
          }
          if (invocation_span != 0) {
            tracer->end(invocation_span, std::min(t, options.horizon_hours));
            tracer->attr(invocation_span, "function", function_name(f));
            tracer->attr(invocation_span, "attempts",
                         static_cast<double>(attempt + 1));
            tracer->attr(invocation_span, "ok", success ? 1.0 : 0.0);
          }
          if (h_attempts != nullptr) {
            h_attempts->record(static_cast<double>(attempt + 1));
          }
        }
        if (abandoned || truncated) break;
      }
      if (ok && !abandoned) {
        ++successes;
      } else if (c_failed != nullptr) {
        c_failed->add();
      }
      if (abandoned) {
        ++out.abandoned;
        if (c_abandoned != nullptr) c_abandoned->add();
      }
      if (truncated && c_truncated != nullptr) c_truncated->add();
      out.duration_sum += t - start;
      ++out.duration_count;
      if (h_duration != nullptr) h_duration->record(t - start);
      if (session_span != 0) {
        tracer->end(session_span, std::min(t, options.horizon_hours));
        tracer->attr(session_span, "ok", ok && !abandoned ? 1.0 : 0.0);
        tracer->attr(session_span, "abandoned", abandoned ? 1.0 : 0.0);
        bool overlap = false;
        for (const auto& [w_start, w_end] : outage_windows) {
          if (w_start < t && w_end > start) {
            overlap = true;
            break;
          }
        }
        tracer->attr(session_span, "outage_overlap", overlap ? 1.0 : 0.0);
      }
    }
    out.availability = static_cast<double>(successes) /
                       static_cast<double>(options.sessions_per_replication);
    return out;
  };

  // Fan the replications out (threads = 1 degrades to an inline serial
  // loop inside the pool), then merge the partials in replication order.
  exec::ThreadPool pool(
      std::min(exec::resolve_threads(options.threads), options.replications));
  std::vector<RepOutcome> outcomes =
      pool.parallel_map<RepOutcome>(options.replications, run_replication);

  std::vector<double> replication_availability;
  replication_availability.reserve(outcomes.size());
  double web_occupancy_sum = 0.0;
  double duration_sum = 0.0;
  std::uint64_t duration_count = 0;
  std::uint64_t retries_total = 0;
  std::uint64_t abandoned_total = 0;
  for (RepOutcome& out : outcomes) {
    replication_availability.push_back(out.availability);
    web_occupancy_sum += out.web_occupancy;
    duration_sum += out.duration_sum;
    duration_count += out.duration_count;
    retries_total += out.retries;
    abandoned_total += out.abandoned;
    if (parent_obs != nullptr && out.shard != nullptr) {
      parent_obs->absorb(std::move(*out.shard));
    }
  }

  const double total_sessions =
      static_cast<double>(options.replications) *
      static_cast<double>(options.sessions_per_replication);
  EndToEndResult result;
  result.perceived_availability = sim::confidence_interval(
      replication_availability, options.confidence_level);
  result.observed_web_service_availability =
      web_occupancy_sum / static_cast<double>(options.replications);
  result.mean_session_duration_hours =
      duration_sum / static_cast<double>(duration_count);
  result.mean_retries_per_session =
      static_cast<double>(retries_total) / total_sessions;
  result.abandonment_fraction =
      static_cast<double>(abandoned_total) / total_sessions;
  return result;
}

}  // namespace upa::ta
