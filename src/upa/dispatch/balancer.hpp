#pragma once
// Balancing policies for the dispatch front end. All three pick an
// upstream index given the pool's current health/outstanding view and,
// for consistent hashing, the request's affinity key:
//
//   round-robin        equal spread; ignores request identity.
//   least-outstanding  sends to the replica with the fewest forwarded
//                      calls in flight (ties broken round-robin) --
//                      tracks the per-replica M/M/i/K occupancy.
//   consistent-hash    hashes the request's cache key (method + params)
//                      onto a virtual-node ring so repeated evaluations
//                      of the same model land on the same replica and
//                      farm-wide EvalCache hit rates survive balancing.
//
// pick() returns candidates in preference order so the retry layer can
// fail over to "the next best" without re-consulting the policy.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "upa/dispatch/upstream.hpp"

namespace upa::dispatch {

enum class BalancePolicy { kRoundRobin, kLeastOutstanding, kConsistentHash };

/// Parses "round-robin" | "least-outstanding" | "consistent-hash";
/// throws ModelError otherwise.
[[nodiscard]] BalancePolicy parse_balance_policy(const std::string& text);
[[nodiscard]] std::string balance_policy_name(BalancePolicy policy);

/// FNV-1a 64-bit over `text` with a splitmix64-style avalanche
/// finalizer -- the ring hash and the affinity hash.
[[nodiscard]] std::uint64_t fnv1a64(const std::string& text);

/// Extracts the affinity key from a raw request line: method + the
/// params object's canonical dump (the same identity EvalCache keys
/// on). Unparseable lines hash as the whole line, so even malformed
/// requests balance deterministically.
[[nodiscard]] std::string affinity_key(const std::string& request_line);

/// Thread-safe picker. Construction builds the consistent-hash ring
/// (virtual nodes per upstream); the pool reference must outlive the
/// balancer.
class Balancer {
 public:
  Balancer(const UpstreamPool& pool, BalancePolicy policy,
           std::size_t virtual_nodes = 64);

  [[nodiscard]] BalancePolicy policy() const noexcept { return policy_; }

  /// Returns every upstream index, most-preferred first. Healthy
  /// upstreams always precede unhealthy ones (fail open: when nothing
  /// is healthy the unhealthy tail is still tried). Consistent-hash
  /// preference is the ring walk from the key's position; the other
  /// policies order by their own criterion.
  [[nodiscard]] std::vector<std::size_t> pick(const std::string& key);

 private:
  struct RingEntry {
    std::uint64_t hash;
    std::size_t index;
  };

  [[nodiscard]] std::vector<std::size_t> ring_walk(
      const std::string& key) const;

  const UpstreamPool& pool_;
  BalancePolicy policy_;
  std::vector<RingEntry> ring_;           ///< sorted by hash
  std::atomic<std::uint64_t> cursor_{0};  ///< round-robin position
};

}  // namespace upa::dispatch
