// Tests for transient CTMC solutions (uniformization) and reward models,
// including the quasi-steady-state behaviour the paper's composite
// performance-availability approach relies on.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/markov/reward.hpp"
#include "upa/markov/transient.hpp"

namespace um = upa::markov;
namespace ul = upa::linalg;

namespace {

um::Ctmc two_state(double lambda, double mu) {
  return um::two_state_availability(lambda, mu);
}

/// Closed-form point availability of the two-state model.
double two_state_point_availability(double lambda, double mu, double t) {
  const double s = lambda + mu;
  return mu / s + (lambda / s) * std::exp(-s * t);
}

}  // namespace

TEST(Transient, TimeZeroReturnsInitial) {
  const um::Ctmc chain = two_state(0.2, 1.0);
  const ul::Vector pi =
      um::transient_distribution(chain, {0.3, 0.7}, 0.0);
  EXPECT_DOUBLE_EQ(pi[0], 0.3);
  EXPECT_DOUBLE_EQ(pi[1], 0.7);
}

TEST(Transient, MatchesTwoStateClosedForm) {
  const double lambda = 0.2;
  const double mu = 1.0;
  const um::Ctmc chain = two_state(lambda, mu);
  for (double t : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    const double numeric =
        um::point_availability(chain, {1.0, 0.0}, t, {0});
    const double exact = two_state_point_availability(lambda, mu, t);
    EXPECT_NEAR(numeric, exact, 1e-10) << "t = " << t;
  }
}

TEST(Transient, ConvergesToSteadyState) {
  um::Ctmc chain(3);
  chain.add_rate(0, 1, 1.0);
  chain.add_rate(1, 2, 0.5);
  chain.add_rate(2, 0, 0.25);
  const ul::Vector steady = chain.steady_state();
  const ul::Vector late =
      um::transient_distribution(chain, {1.0, 0.0, 0.0}, 500.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(late[i], steady[i], 1e-8);
  }
}

TEST(Transient, DistributionStaysNormalized) {
  um::Ctmc chain(4);
  chain.add_rate(0, 1, 3.0);
  chain.add_rate(1, 2, 2.0);
  chain.add_rate(2, 3, 1.0);
  chain.add_rate(3, 0, 0.5);
  const ul::Vector pi =
      um::transient_distribution(chain, {0.25, 0.25, 0.25, 0.25}, 7.0);
  double sum = 0.0;
  for (double p : pi) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Transient, RejectsBadInitialDistribution) {
  const um::Ctmc chain = two_state(1.0, 1.0);
  EXPECT_THROW(
      (void)um::transient_distribution(chain, {0.6, 0.6}, 1.0),
      upa::common::ModelError);
  EXPECT_THROW((void)um::transient_distribution(chain, {1.0}, 1.0),
               upa::common::ModelError);
}

TEST(Transient, IntervalAvailabilityBetweenPointExtremes) {
  const double lambda = 0.5;
  const double mu = 2.0;
  const um::Ctmc chain = two_state(lambda, mu);
  const double t = 2.0;
  const double interval =
      um::interval_availability(chain, {1.0, 0.0}, t, {0}, 400);
  const double at_end = two_state_point_availability(lambda, mu, t);
  // Starting up, availability decays monotonically: the time average lies
  // between the end-point and the initial value 1.
  EXPECT_GT(interval, at_end);
  EXPECT_LT(interval, 1.0);
  // Exact integral: A_I(t) = mu/s + lambda/s^2 (1 - e^{-s t}) / t.
  const double s = lambda + mu;
  const double exact =
      mu / s + lambda / (s * s) * (1.0 - std::exp(-s * t)) / t;
  EXPECT_NEAR(interval, exact, 1e-6);
}

TEST(Reward, SteadyStateRewardIsWeightedAverage) {
  um::RewardModel model(two_state(1.0, 3.0), {1.0, 0.25});
  // pi = (0.75, 0.25): reward = 0.75 + 0.25 * 0.25.
  EXPECT_NEAR(model.steady_state_reward(), 0.8125, 1e-12);
}

TEST(Reward, TransientRewardMatchesAvailabilityWhenIndicator) {
  const double lambda = 0.3;
  const double mu = 1.5;
  um::RewardModel model(two_state(lambda, mu), {1.0, 0.0});
  const double t = 0.8;
  EXPECT_NEAR(model.transient_reward({1.0, 0.0}, t),
              two_state_point_availability(lambda, mu, t), 1e-10);
}

TEST(Reward, IntervalRewardApproachesSteadyForLongHorizons) {
  um::RewardModel model(two_state(0.4, 2.0), {1.0, 0.0});
  const double steady = model.steady_state_reward();
  EXPECT_NEAR(model.interval_reward({1.0, 0.0}, 400.0, 400), steady, 1e-3);
}

TEST(Reward, RejectsMismatchedRewardVector) {
  EXPECT_THROW(um::RewardModel(two_state(1.0, 1.0), {1.0}),
               upa::common::ModelError);
}

TEST(QuasiSteadyState, WebFarmTimescaleSeparationHolds) {
  // Failure/repair rates are per hour; request service is 100/s =
  // 360000/h. The composite approach needs exit_rate << service rate.
  um::Ctmc chain(2);
  chain.add_rate(0, 1, 4e-4);  // 4 servers failing at 1e-4/h
  chain.add_rate(1, 0, 1.0);   // repair 1/h
  const double service_rate_per_hour = 100.0 * 3600.0;
  EXPECT_LT(chain.max_exit_rate() / service_rate_per_hour, 1e-5);
}
