#pragma once
// `upa_served` core: a multi-threaded loopback/TCP evaluation service
// whose own request handling IS the paper's M/M/i/K model. `workers`
// threads (the paper's i operational servers) drain one bounded queue;
// `capacity` (the paper's K) bounds the total number of admitted
// connections in the system -- queued plus in service. Admission
// control is explicit and non-blocking: when the system is full the
// acceptor writes a one-line 503 envelope to the new connection and
// closes it without ever reading the request, so the accept loop can
// never stall behind a slow client or a full queue. The measured
// rejection fraction under an open-loop Poisson load is therefore
// directly comparable to `queueing::mmck_loss_probability` -- the
// dogfood check run by `upa_loadgen` and pinned in tests/test_serve.cpp.
//
// Both knobs are runtime-elastic: reconfigure() (also exposed as the
// `reconfigure` RPC, the actuator of the upa_ctl control loop) retargets
// the worker pool and swaps the admission bound atomically. Grow spawns
// threads at once; shrink retires excess workers only between requests,
// so an in-flight request always completes.
//
// Lifecycle: start() binds, listens, and spawns the acceptor plus the
// workers; stop() (idempotent, also run by the destructor) closes the
// listen socket so no new connection is admitted, lets the workers
// drain every admitted connection, and joins all threads. In-flight
// requests always complete, but a kept-alive connection gets no
// further requests once the drain begins, and both socket directions
// carry `read_timeout_seconds`, so stop() always terminates even
// against a client that keeps sending or stops reading. Post-stop
// connects are refused by the OS.
//
// Deadlines: a server-wide `deadline_seconds` budget (0 = off) applies
// per request -- anchored at connection admission for a connection's
// first request and at the line read for every later request on the
// same kept-alive connection (so long-lived connections are not
// penalized for their age). A request may tighten (never extend) the
// budget with a `deadline_ms` envelope member measured from when its
// line was read. An over-deadline request gets a 504 envelope --
// including when the result was computed but missed the budget.

#include <atomic>
#include <condition_variable>
#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "upa/obs/metrics.hpp"
#include "upa/obs/observer.hpp"
#include "upa/serve/protocol.hpp"
#include "upa/serve/telemetry.hpp"

namespace upa::serve {

struct ServerConfig {
  /// Bind address; the default confines the service to loopback.
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  std::uint16_t port = 0;
  /// Worker threads draining the request queue -- the model's i.
  std::size_t workers = 2;
  /// Total admitted connections in the system (queued + in service) --
  /// the model's K. Must be >= workers.
  std::size_t capacity = 8;
  /// Per-request deadline in seconds (0 disables), anchored at
  /// admission for a connection's first request and at the line read
  /// for each later request on the same connection.
  double deadline_seconds = 0.0;
  /// Socket I/O timeout (both directions): a worker never waits longer
  /// than this for the next request line, nor for a stalled client to
  /// drain a response, before closing the connection.
  double read_timeout_seconds = 10.0;
  /// Optional observability sink (non-owning). Records one wall-domain
  /// `serve_request` span per request (attrs: method, code, queue-wait)
  /// plus serve.* counters. The observer is mutex-guarded inside the
  /// server (Tracer/MetricsRegistry are single-threaded by design).
  obs::Observer* obs = nullptr;
  /// Distributed tracing mode (needs `obs`). Per sampled request the
  /// single serve_request span grows trace-linkage attrs (trace_id,
  /// parent_span, conn, seq) plus serve_phase child spans
  /// (admission_wait / queue_wait, handler, serialize). Off by default:
  /// the hot path stays the legacy single-span recording and responses
  /// are byte-identical to a trace-enabled server's.
  bool trace = false;
  /// Label stamped on telemetry lines; empty = "upa_served:<port>".
  std::string telemetry_process;
};

/// Point-in-time counter snapshot (all values since start()).
struct ServerStats {
  std::uint64_t accepted = 0;    ///< connections admitted into the queue
  std::uint64_t rejected = 0;    ///< connections refused with 503 (full)
  std::uint64_t completed = 0;   ///< admitted connections fully handled
  std::uint64_t requests = 0;    ///< request lines answered (any code)
  std::uint64_t deadline_missed = 0;  ///< requests answered with 504
  std::uint64_t protocol_errors = 0;  ///< unparseable request lines
  std::size_t in_system = 0;       ///< current queued + in-service
  std::size_t max_in_system = 0;   ///< high-water mark of in_system
  std::size_t workers = 0;     ///< current worker target (the model's i)
  std::size_t capacity = 0;    ///< current admission bound (the model's K)
  std::size_t retiring = 0;    ///< workers past the target, still draining
  std::uint64_t reconfigures = 0;  ///< applied reconfigure() calls
  /// Wall seconds workers spent inside request handlers, summed over
  /// `handled_requests` -- handled / busy_seconds estimates the
  /// per-server service rate nu without the queue-wait bias of the
  /// end-to-end latency histogram (a controller's nu-hat input).
  double busy_seconds = 0.0;
  std::uint64_t handled_requests = 0;
};

/// What one applied reconfigure() changed (returned to the caller and
/// echoed by the `reconfigure` RPC).
struct ReconfigureResult {
  std::size_t workers = 0;
  std::size_t capacity = 0;
  std::size_t previous_workers = 0;
  std::size_t previous_capacity = 0;
  /// Workers above the new target that will retire as soon as they
  /// finish their current request (drain-aware shrink: never mid-flight).
  std::size_t retiring = 0;
};

class Server {
 public:
  /// Validates the config; the dispatcher gains a server-bound `stats`
  /// method on top of the built-in evaluator methods.
  explicit Server(ServerConfig config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns acceptor + workers. Throws ModelError on
  /// socket failures (port in use, no permission) and if already started.
  void start();

  /// Graceful drain: stops accepting, serves everything already
  /// admitted, joins all threads. Idempotent; safe to call from a signal
  /// watcher thread. Returns once every worker has exited.
  void stop();

  [[nodiscard]] bool running() const noexcept { return running_.load(); }

  /// The bound TCP port (resolved after start() for port 0 configs).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] const ServerConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] ServerStats stats() const;

  /// Online elastic resize -- the `reconfigure` RPC verb. Atomically
  /// swaps the admission bound (K) and retargets the worker pool (i);
  /// 0 keeps the current value of either knob. Grow spawns threads
  /// immediately; shrink is drain-aware: excess workers retire before
  /// taking their NEXT job, so an in-flight request is never killed and
  /// no client ever sees a transport error from a resize. Lowering K
  /// below the current occupancy evicts nothing -- the new bound applies
  /// at admission only. Concurrent calls serialize; throws ModelError on
  /// invalid targets (workers < 1, capacity < workers), while the
  /// server is draining, or before start().
  ReconfigureResult reconfigure(std::size_t workers, std::size_t capacity);

  /// Snapshots the counters into `metrics` as serve.* gauges and merges
  /// the request-latency histogram (serve.request_latency_seconds).
  /// Intended for a fresh registry per snapshot -- merging twice
  /// double-counts the histogram.
  void publish_metrics(obs::MetricsRegistry& metrics) const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Job {
    int fd = -1;
    Clock::time_point admitted;
  };

  /// Everything observe_request() needs about one finished request.
  /// Phase stamps are offsets from the request anchor, in seconds.
  struct RequestObservation {
    std::string method = "?";
    int code = 200;
    bool first_request = true;
    double queue_wait_seconds = 0.0;
    double latency_seconds = 0.0;
    double handler_begin = 0.0;
    double handler_end = 0.0;
    double serialize_begin = 0.0;
    double serialize_end = 0.0;
    bool has_handler = false;
    bool has_serialize = false;
    bool has_trace = false;       ///< request carried a valid trace member
    std::string trace_id;
    std::uint64_t parent_span = 0;
    bool sampled = true;
    std::uint64_t conn = 0;       ///< connection serial
    std::uint64_t seq = 0;        ///< request index on the connection
  };

  void acceptor_loop();
  void worker_loop();
  void handle_connection(const Job& job);
  /// Intercepts a `subscribe` request line before normal dispatch.
  /// Returns 0 when the line is not a subscribe (caller proceeds),
  /// 1 when the fd was handed to the telemetry streamer (caller must
  /// return without closing it), 2 when an error envelope was already
  /// sent (caller continues the connection loop).
  [[nodiscard]] int maybe_subscribe(int fd, const std::string& line);
  /// Registers a kept-alive connection about to block in recv for its
  /// next request; stop() shutdown(SHUT_RD)s every parked fd so the
  /// drain ends immediately instead of waiting out the read timeout.
  /// Returns false (without parking) once the drain has begun, which is
  /// also what keeps an endlessly-requesting client from holding the
  /// drain open: the request in flight finishes, no further ones start.
  [[nodiscard]] bool park_for_next_request(int fd);
  void unpark(int fd);
  /// One request line -> one response line (counters + deadline checks).
  /// `anchor` starts the deadline budget and the latency/queue-wait
  /// clocks: admission time for a connection's first request, the line
  /// read time for every later request on the same connection.
  [[nodiscard]] std::string respond_line(const std::string& line,
                                         Clock::time_point anchor,
                                         Clock::time_point line_read,
                                         bool first_request,
                                         std::uint64_t conn,
                                         std::uint64_t seq);
  void observe_request(const RequestObservation& observation);

  ServerConfig config_;
  Dispatcher dispatcher_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> accept_stop_{false};
  std::mutex stop_mutex_;  // serializes start/stop callers
  bool started_ = false;   // guarded by stop_mutex_

  std::thread acceptor_;
  // workers_mutex_ guards the workers_ thread handles and serializes
  // reconfigure() callers. Never held while joining a RUNNING worker
  // (a worker executing the reconfigure RPC needs it) -- stop() moves
  // handles out before joining, and reap_exited_workers() only joins
  // threads that already left worker_loop().
  std::mutex workers_mutex_;
  std::vector<std::thread> workers_;

  /// Joins and erases worker threads that retired from a previous
  /// shrink (their ids are in exited_worker_ids_). Caller holds
  /// workers_mutex_.
  void reap_exited_workers();

  // mutex_ guards queue_, in_system_, stopping_, parked_fds_, the
  // dynamic pool/admission state (workers_target_, capacity_limit_,
  // active_workers_, reject_line_), and exited_worker_ids_.
  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::deque<Job> queue_;
  std::size_t in_system_ = 0;
  bool stopping_ = false;
  std::vector<int> parked_fds_;  // connections idle between requests
  std::size_t workers_target_ = 0;   ///< the model's i, reconfigurable
  std::size_t capacity_limit_ = 0;   ///< the model's K, reconfigurable
  std::size_t active_workers_ = 0;   ///< live worker loops (incl. retiring)
  std::string reject_line_;  ///< 503 envelope, rebuilt when K changes
  std::vector<std::thread::id> exited_worker_ids_;  ///< retired, joinable

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> deadline_missed_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::size_t> max_in_system_{0};
  std::atomic<std::uint64_t> reconfigures_{0};

  std::atomic<std::uint64_t> conn_serial_{0};

  // latency_mutex_ guards latency_, latency_by_method_, busy_seconds_,
  // handled_requests_, and config_.obs.
  // Traced requests record their whole span batch (root + phase
  // children) under one hold of this mutex, so the telemetry streamer's
  // span cursor -- advanced under the same mutex -- only ever observes
  // complete batches.
  mutable std::mutex latency_mutex_;
  obs::Histogram latency_;
  std::map<std::string, obs::Histogram> latency_by_method_;
  double busy_seconds_ = 0.0;          ///< handler wall time, summed
  std::uint64_t handled_requests_ = 0;  ///< requests that ran a handler
  std::unique_ptr<TelemetryStreamer> telemetry_;
  Clock::time_point started_at_;
};

}  // namespace upa::serve
