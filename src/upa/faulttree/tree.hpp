#pragma once
// Static fault trees: basic events combined through AND / OR / k-of-n
// gates. Top-event probability is evaluated exactly through the BDD engine
// (correct under shared subtrees / repeated events), with a structural
// evaluator as a cross-check for trees without repetition.

#include <cstddef>
#include <string>
#include <vector>

namespace upa::faulttree {

/// Identifier of a node (basic event or gate) within one FaultTree.
using NodeId = std::size_t;

enum class GateKind { kAnd, kOr, kKofN };

/// A fault tree under construction. Nodes are added bottom-up; the last
/// added node is the default top event (override with set_top).
class FaultTree {
 public:
  /// Adds a basic event with the given failure probability.
  NodeId add_basic_event(std::string name, double probability);

  /// Adds a gate over existing nodes. For k-of-n gates the output fails
  /// when at least k children fail.
  NodeId add_gate(GateKind kind, std::vector<NodeId> children,
                  std::size_t k = 0);

  NodeId add_and(std::vector<NodeId> children) {
    return add_gate(GateKind::kAnd, std::move(children));
  }
  NodeId add_or(std::vector<NodeId> children) {
    return add_gate(GateKind::kOr, std::move(children));
  }
  NodeId add_k_of_n(std::size_t k, std::vector<NodeId> children) {
    return add_gate(GateKind::kKofN, std::move(children), k);
  }

  void set_top(NodeId node);
  [[nodiscard]] NodeId top() const;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] std::size_t basic_event_count() const noexcept {
    return basic_events_.size();
  }

  [[nodiscard]] bool is_basic(NodeId node) const;
  [[nodiscard]] const std::string& event_name(NodeId node) const;
  [[nodiscard]] double event_probability(NodeId node) const;
  [[nodiscard]] GateKind gate_kind(NodeId node) const;
  [[nodiscard]] std::size_t gate_threshold(NodeId node) const;
  [[nodiscard]] const std::vector<NodeId>& gate_children(NodeId node) const;

  /// Basic events in creation order (the BDD variable order).
  [[nodiscard]] const std::vector<NodeId>& basic_events() const noexcept {
    return basic_events_;
  }

  /// Updates a basic event's probability (for sensitivity sweeps).
  void set_event_probability(NodeId node, double probability);

  /// Evaluates the structure function for given basic-event failure states
  /// (indexed in creation order of basic events).
  [[nodiscard]] bool evaluate(const std::vector<bool>& event_failed,
                              NodeId node) const;
  [[nodiscard]] bool evaluate_top(const std::vector<bool>& event_failed) const {
    return evaluate(event_failed, top());
  }

 private:
  struct Node {
    bool basic = false;
    std::string name;        // basic only
    double probability = 0;  // basic only
    std::size_t event_index = 0;  // basic only: index among basic events
    GateKind kind = GateKind::kAnd;
    std::size_t k = 0;
    std::vector<NodeId> children;
  };

  void check_node(NodeId node) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> basic_events_;
  NodeId top_ = 0;
  bool top_set_ = false;
};

/// Exact top-event probability via the BDD engine.
[[nodiscard]] double top_event_probability(const FaultTree& tree);

/// Structural bottom-up evaluation assuming all basic events are distinct
/// and appear exactly once. Throws ModelError when events are shared.
[[nodiscard]] double top_event_probability_structural(const FaultTree& tree);

}  // namespace upa::faulttree
