#include "upa/profile/operational_profile.hpp"

#include <sstream>

#include "upa/common/error.hpp"

namespace upa::profile {
namespace {

markov::Dtmc validate_and_build(const std::vector<std::string>& names,
                                const linalg::Matrix& p) {
  const std::size_t n = names.size();
  UPA_REQUIRE(n >= 1, "profile needs at least one function");
  UPA_REQUIRE(p.rows() == n + 2 && p.cols() == n + 2,
              "transition matrix must be (n+2)x(n+2) over "
              "[Start, functions..., Exit]");
  const std::size_t exit = n + 1;
  UPA_REQUIRE(p(exit, exit) == 1.0, "Exit must be absorbing");
  for (std::size_t r = 0; r < n + 2; ++r) {
    UPA_REQUIRE(p(r, NodeIndex::kStart) == 0.0,
                "sessions must never return to Start");
  }
  for (const std::string& name : names) {
    UPA_REQUIRE(!name.empty(), "function names must not be empty");
  }
  return markov::Dtmc(p);
}

}  // namespace

OperationalProfile::OperationalProfile(std::vector<std::string> function_names,
                                       linalg::Matrix transition)
    : names_(std::move(function_names)),
      p_(std::move(transition)),
      dtmc_(validate_and_build(names_, p_)) {}

const std::string& OperationalProfile::function_name(std::size_t i) const {
  UPA_REQUIRE(i < names_.size(), "function index out of range");
  return names_[i];
}

std::size_t OperationalProfile::function_index(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw upa::common::ModelError("unknown function " + name);
}

double OperationalProfile::expected_visits(std::size_t function) const {
  UPA_REQUIRE(function < names_.size(), "function index out of range");
  const markov::AbsorbingChainAnalysis analysis(dtmc_, {exit_state()});
  return analysis.expected_visits(NodeIndex::kStart,
                                  NodeIndex::function(function));
}

double OperationalProfile::mean_session_length() const {
  const markov::AbsorbingChainAnalysis analysis(dtmc_, {exit_state()});
  // Steps before absorption minus the visit to Start itself.
  return analysis.expected_steps_to_absorption(NodeIndex::kStart) - 1.0;
}

double OperationalProfile::invocation_probability(std::size_t function) const {
  UPA_REQUIRE(function < names_.size(), "function index out of range");
  // Make the function absorbing; probability of hitting it before Exit.
  linalg::Matrix p = p_;
  const std::size_t f = NodeIndex::function(function);
  for (std::size_t c = 0; c < p.cols(); ++c) p(f, c) = 0.0;
  p(f, f) = 1.0;
  const markov::Dtmc chain(p);
  const markov::AbsorbingChainAnalysis analysis(chain, {f, exit_state()});
  return analysis.absorption_probability(NodeIndex::kStart, f);
}

std::string OperationalProfile::to_dot() const {
  std::ostringstream os;
  os << "digraph profile {\n  rankdir=LR;\n";
  auto name_of = [&](std::size_t s) -> std::string {
    if (s == NodeIndex::kStart) return "Start";
    if (s == exit_state()) return "Exit";
    return names_[s - 1];
  };
  for (std::size_t r = 0; r < state_count(); ++r) {
    for (std::size_t c = 0; c < state_count(); ++c) {
      if (r == exit_state()) continue;
      if (p_(r, c) > 0.0) {
        os << "  \"" << name_of(r) << "\" -> \"" << name_of(c)
           << "\" [label=\"" << p_(r, c) << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

}  // namespace upa::profile
