// Ablations over the design choices the paper holds fixed: fault
// coverage c, buffer size K, repair rate mu, reconfiguration rate beta,
// and the basic-vs-redundant architecture gap at the user level. These
// quantify how sensitive the paper's conclusions are to its assumptions.

#include "bench_util.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/sensitivity/tornado.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace uc = upa::core;
namespace ut = upa::ta;
namespace cm = upa::common;

double farm_ua(std::size_t n, double lambda, double coverage, double beta,
               double mu, std::size_t buffer, double alpha) {
  uc::WebFarmParams farm{n, lambda, mu, coverage, beta};
  uc::WebQueueParams queue{alpha, 100.0, buffer};
  return 1.0 - uc::web_service_availability_imperfect(farm, queue);
}

void print_coverage_ablation() {
  cm::Table t({"coverage c", "UA(N_W=4)", "UA(N_W=10)",
               "valley N_W (1..10)"});
  t.set_title(
      "Ablation 1 -- fault coverage c (lambda=1e-4/h, alpha=100/s):\n"
      "poorer coverage moves the optimal farm size down and raises the "
      "floor");
  for (double c : {1.0, 0.999, 0.99, 0.98, 0.9, 0.5}) {
    std::size_t best = 1;
    double best_ua = 2.0;
    for (std::size_t n = 1; n <= 10; ++n) {
      const double u = farm_ua(n, 1e-4, c, 12.0, 1.0, 10, 100.0);
      if (u < best_ua) {
        best_ua = u;
        best = n;
      }
    }
    t.add_row({cm::fmt(c, 4),
               cm::fmt_sci(farm_ua(4, 1e-4, c, 12.0, 1.0, 10, 100.0), 3),
               cm::fmt_sci(farm_ua(10, 1e-4, c, 12.0, 1.0, 10, 100.0), 3),
               std::to_string(best)});
  }
  std::cout << t << "\n";
}

void print_buffer_ablation() {
  cm::Table t({"buffer K", "UA alpha=50", "UA alpha=100", "UA alpha=150"});
  t.set_title(
      "Ablation 2 -- buffer size K (N_W=4, lambda=1e-4/h): the buffer\n"
      "only matters while queue loss dominates (rho >= 1)");
  for (std::size_t k : {4u, 6u, 10u, 20u, 40u}) {
    t.add_row({std::to_string(k),
               cm::fmt_sci(farm_ua(4, 1e-4, 0.98, 12.0, 1.0, k, 50.0), 3),
               cm::fmt_sci(farm_ua(4, 1e-4, 0.98, 12.0, 1.0, k, 100.0), 3),
               cm::fmt_sci(farm_ua(4, 1e-4, 0.98, 12.0, 1.0, k, 150.0), 3)});
  }
  std::cout << t << "\n";
}

void print_repair_ablation() {
  cm::Table t({"mu [1/h]", "beta [1/h]", "UA(N_W=4)", "h/yr"});
  t.set_title(
      "Ablation 3 -- repair (mu) and manual reconfiguration (beta) rates\n"
      "(lambda=1e-4/h, alpha=100/s): beta dominates once coverage leaks");
  for (double mu : {0.25, 1.0, 4.0}) {
    for (double beta : {2.0, 12.0, 60.0}) {
      const double u = farm_ua(4, 1e-4, 0.98, beta, mu, 10, 100.0);
      t.add_row({cm::fmt(mu, 3), cm::fmt(beta, 3), cm::fmt_sci(u, 3),
                 cm::fmt_fixed(u * 8760.0, 3)});
    }
  }
  std::cout << t << "\n";
}

void print_architecture_ablation() {
  cm::Table t({"configuration", "A(user, class A)", "A(user, class B)",
               "downtime B h/yr"});
  t.set_align(0, cm::Align::kLeft);
  t.set_title(
      "Ablation 4 -- architecture & coverage at the USER level (N=5\n"
      "reservation systems)");
  struct Config {
    const char* name;
    ut::Architecture arch;
    ut::CoverageModel cov;
  };
  for (const Config& cfg :
       {Config{"basic (Fig. 7)", ut::Architecture::kBasic,
               ut::CoverageModel::kPerfect},
        Config{"redundant, perfect coverage", ut::Architecture::kRedundant,
               ut::CoverageModel::kPerfect},
        Config{"redundant, imperfect coverage (paper)",
               ut::Architecture::kRedundant,
               ut::CoverageModel::kImperfect}}) {
    auto p = upa::bench::paper_params(5);
    p.architecture = cfg.arch;
    p.coverage_model = cfg.cov;
    const double a = ut::user_availability_eq10(ut::UserClass::kA, p);
    const double b = ut::user_availability_eq10(ut::UserClass::kB, p);
    t.add_row({cfg.name, cm::fmt_fixed(a, 5), cm::fmt_fixed(b, 5),
               cm::fmt_fixed((1.0 - b) * 8760.0, 1)});
  }
  std::cout << t << "\n";
}

void print_tornado() {
  // One-at-a-time resource-availability swing on the class-B user measure.
  const std::map<std::string, double> base{
      {"a_net", 0.9966},  {"a_lan", 0.9966},     {"a_cas", 0.996},
      {"a_cds", 0.996},   {"a_disk", 0.9},       {"a_payment", 0.9},
      {"a_reservation", 0.9}};
  std::map<std::string, upa::sensitivity::ParameterRange> ranges;
  for (const auto& [name, value] : base) {
    ranges[name] = {value - 0.05 * (1 - value) - 0.01, value + (1 - value) / 2};
  }
  const auto entries = upa::sensitivity::tornado(
      base, ranges, [](const std::map<std::string, double>& point) {
        auto p = upa::bench::paper_params(5);
        p.a_net = point.at("a_net");
        p.a_lan = point.at("a_lan");
        p.a_cas = point.at("a_cas");
        p.a_cds = point.at("a_cds");
        p.a_disk = point.at("a_disk");
        p.a_payment = point.at("a_payment");
        p.a_reservation = point.at("a_reservation");
        return ut::user_availability_eq10(ut::UserClass::kB, p);
      });
  cm::Table t({"parameter", "A at low", "A at high", "swing"});
  t.set_align(0, cm::Align::kLeft);
  t.set_title(
      "Ablation 5 -- tornado of resource availabilities on A(user, B):\n"
      "confirms the paper's first-order ranking (net/LAN dominate)");
  for (const auto& e : entries) {
    t.add_row({e.parameter, cm::fmt_fixed(e.measure_at_low, 5),
               cm::fmt_fixed(e.measure_at_high, 5),
               cm::fmt_fixed(e.swing, 5)});
  }
  std::cout << t << "\n";
}

void print_all() {
  upa::bench::print_header(
      "Ablation studies",
      "Design-choice sensitivity beyond the paper's fixed assumptions.");
  print_coverage_ablation();
  print_buffer_ablation();
  print_repair_ablation();
  print_architecture_ablation();
  print_tornado();
}

void bm_user_availability_eq10(benchmark::State& state) {
  const auto p = upa::bench::paper_params(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ut::user_availability_eq10(ut::UserClass::kB, p));
  }
}
BENCHMARK(bm_user_availability_eq10);

void bm_coverage_valley_scan(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (std::size_t n = 1; n <= 10; ++n) {
      acc += farm_ua(n, 1e-4, 0.9, 12.0, 1.0, 10, 100.0);
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_coverage_valley_scan);

}  // namespace

UPA_BENCH_MAIN(print_all)
