#pragma once
// Minimal cut sets of a fault tree (MOCUS-style top-down expansion with
// absorption) and rare-event / inclusion-exclusion bounds computed from
// them. Cut sets are reported as sets of basic-event names.

#include <set>
#include <string>
#include <vector>

#include "upa/faulttree/tree.hpp"

namespace upa::faulttree {

using CutSet = std::set<std::string>;

/// All minimal cut sets of the tree's top event.
[[nodiscard]] std::vector<CutSet> minimal_cut_sets(const FaultTree& tree);

/// Rare-event upper bound: sum over cut sets of their probability.
[[nodiscard]] double rare_event_bound(const FaultTree& tree,
                                      const std::vector<CutSet>& cut_sets);

/// Exact top probability from cut sets via inclusion-exclusion (small
/// numbers of cut sets only); cross-checks the BDD engine.
[[nodiscard]] double probability_from_cut_sets(
    const FaultTree& tree, const std::vector<CutSet>& cut_sets);

}  // namespace upa::faulttree
