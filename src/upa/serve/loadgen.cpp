#include "upa/serve/loadgen.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "upa/common/error.hpp"
#include "upa/profile/operational_profile.hpp"
#include "upa/serve/client.hpp"
#include "upa/sim/rng.hpp"

namespace upa::serve {

namespace {

using Clock = std::chrono::steady_clock;

double exponential(sim::Xoshiro256& rng, double rate) {
  return -std::log(rng.uniform01_open_left()) / rate;
}

struct RequestRecord {
  CallOutcome outcome = CallOutcome::kTransportError;
  int code = 0;
  double latency_seconds = 0.0;
};

/// Trace id for the k-th originated request of a run: seed plus an odd
/// multiple of the golden-ratio constant, so distinct indices map to
/// distinct ids (odd multiplication is a bijection mod 2^64) and a
/// rerun with the same seed regenerates the same join keys.
std::string trace_id_for(std::uint64_t seed, std::uint64_t index) {
  return make_trace_id(seed + 0x9e3779b97f4a7c15ULL * (index + 1));
}

}  // namespace

std::string method_for_function(const std::string& function_name) {
  if (function_name == "Home") return "ping";
  if (function_name == "Browse") return "mmck_metrics";
  if (function_name == "Search") return "web_farm_availability";
  if (function_name == "Book") return "user_availability";
  if (function_name == "Pay") return "composite_availability";
  return "ping";
}

std::string function_for_method(const std::string& method) {
  if (method == "ping") return "Home";
  if (method == "mmck_metrics") return "Browse";
  if (method == "web_farm_availability") return "Search";
  if (method == "user_availability") return "Book";
  if (method == "composite_availability") return "Pay";
  return "";
}

LossResult run_loss_workload(const LossConfig& config) {
  UPA_REQUIRE(config.lambda > 0.0, "LossConfig.lambda must be > 0");
  UPA_REQUIRE(config.nu > 0.0, "LossConfig.nu must be > 0");
  UPA_REQUIRE(config.requests > 0, "LossConfig.requests must be > 0");

  // Pre-draw the whole schedule so the request sequence is a pure
  // function of the seed: absolute arrival offsets (cumulative Exp(
  // lambda) gaps) and per-request Exp(nu) service holds.
  sim::Xoshiro256 rng(config.seed);
  std::vector<double> arrival_offsets(config.requests);
  std::vector<double> service_seconds(config.requests);
  double t = 0.0;
  for (std::size_t k = 0; k < config.requests; ++k) {
    t += exponential(rng, config.lambda);
    arrival_offsets[k] = t;
    service_seconds[k] = exponential(rng, config.nu);
  }

  std::vector<std::string> trace_ids(config.trace ? config.requests : 0);
  for (std::size_t k = 0; k < trace_ids.size(); ++k) {
    trace_ids[k] = trace_id_for(config.seed, k);
  }

  std::vector<RequestRecord> records(config.requests);
  std::vector<std::thread> in_flight;
  in_flight.reserve(config.requests);

  const Clock::time_point epoch = Clock::now();
  for (std::size_t k = 0; k < config.requests; ++k) {
    std::this_thread::sleep_until(
        epoch + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival_offsets[k])));
    in_flight.emplace_back([&, k] {
      const Clock::time_point start = Clock::now();
      Client client;
      try {
        client.connect(config.host, config.port,
                       config.connect_timeout_seconds,
                       config.call_timeout_seconds);
      } catch (const std::exception&) {
        records[k].outcome = CallOutcome::kTransportError;
        return;
      }
      Json params = Json::object();
      params.set("seconds", Json(service_seconds[k]));
      TraceContext trace;
      if (config.trace) {
        trace.trace_id = trace_ids[k];
        trace.span_id = 0;
        trace.sampled = true;
      }
      const CallResult r = client.call("sleep", std::move(params), k,
                                       config.trace ? &trace : nullptr);
      records[k].outcome = r.outcome;
      records[k].code = r.code;
      records[k].latency_seconds =
          std::chrono::duration<double>(Clock::now() - start).count();
    });
  }
  for (std::thread& th : in_flight) th.join();
  const double wall =
      std::chrono::duration<double>(Clock::now() - epoch).count();

  LossResult out;
  out.sent = config.requests;
  double latency_sum = 0.0;
  std::size_t latency_count = 0;
  for (const RequestRecord& r : records) {
    switch (r.outcome) {
      case CallOutcome::kOk: ++out.ok; break;
      case CallOutcome::kRejected: ++out.rejected; break;
      case CallOutcome::kDeadline: ++out.deadline_missed; break;
      case CallOutcome::kTransportError: ++out.transport_errors; break;
      case CallOutcome::kError: ++out.other_errors; break;
    }
    if (r.outcome == CallOutcome::kOk) {
      latency_sum += r.latency_seconds;
      ++latency_count;
      out.max_latency_seconds =
          std::max(out.max_latency_seconds, r.latency_seconds);
    }
  }
  out.measured_loss =
      static_cast<double>(out.rejected) / static_cast<double>(out.sent);
  out.mean_latency_seconds =
      latency_count > 0 ? latency_sum / static_cast<double>(latency_count)
                        : 0.0;
  out.wall_seconds = wall;
  out.offered_rate = wall > 0.0 ? static_cast<double>(out.sent) / wall : 0.0;
  if (config.trace) {
    out.request_log.resize(config.requests);
    for (std::size_t k = 0; k < config.requests; ++k) {
      LossRequestLog& log = out.request_log[k];
      log.trace_id = trace_ids[k];
      log.scheduled_offset_seconds = arrival_offsets[k];
      log.method = "sleep";
      log.outcome = records[k].outcome;
      log.code = records[k].code;
      log.latency_seconds = records[k].latency_seconds;
    }
  }
  return out;
}

namespace {

/// Samples the next state of the session DTMC from the profile's
/// transition row.
std::size_t sample_transition(const profile::OperationalProfile& profile,
                              std::size_t state, sim::Xoshiro256& rng) {
  const auto row = profile.transition_matrix().row(state);
  const double u = rng.uniform01();
  double cumulative = 0.0;
  for (std::size_t next = 0; next < row.size(); ++next) {
    cumulative += row[next];
    if (u < cumulative) return next;
  }
  return profile.exit_state();
}

struct SessionRecord {
  bool connected = false;
  bool rejected = false;
  bool failed = false;
  std::size_t invocations = 0;
  std::size_t failures = 0;
};

}  // namespace

SessionResult run_session_replay(const SessionConfig& config) {
  UPA_REQUIRE(config.session_rate > 0.0,
              "SessionConfig.session_rate must be > 0");
  UPA_REQUIRE(config.sessions > 0, "SessionConfig.sessions must be > 0");

  const profile::OperationalProfile profile =
      ta::fitted_session_graph(config.uclass);

  // Pre-walk every session: the visited function sequence and the
  // arrival offset are drawn up front (pure function of the seed), so
  // server-side behavior cannot perturb the replayed workload.
  sim::Xoshiro256 rng(config.seed);
  std::vector<double> arrival_offsets(config.sessions);
  std::vector<std::vector<std::string>> walks(config.sessions);
  double t = 0.0;
  for (std::size_t s = 0; s < config.sessions; ++s) {
    t += exponential(rng, config.session_rate);
    arrival_offsets[s] = t;
    std::size_t state = profile::NodeIndex::kStart;
    while (true) {
      state = sample_transition(profile, state, rng);
      if (state == profile.exit_state()) break;
      walks[s].push_back(profile.function_name(state - 1));
    }
  }

  // Trace ids are numbered over the pre-walked invocation sequence, so
  // they too are a pure function of the seed.
  std::vector<std::vector<std::string>> walk_trace_ids(
      config.trace ? config.sessions : 0);
  if (config.trace) {
    std::uint64_t next = 0;
    for (std::size_t s = 0; s < config.sessions; ++s) {
      walk_trace_ids[s].reserve(walks[s].size());
      for (std::size_t i = 0; i < walks[s].size(); ++i) {
        walk_trace_ids[s].push_back(trace_id_for(config.seed, next++));
      }
    }
  }

  std::vector<SessionRecord> records(config.sessions);
  std::vector<std::vector<SessionInvocationLog>> logs(
      config.trace ? config.sessions : 0);
  std::vector<std::thread> in_flight;
  in_flight.reserve(config.sessions);

  const Clock::time_point epoch = Clock::now();
  for (std::size_t s = 0; s < config.sessions; ++s) {
    std::this_thread::sleep_until(
        epoch + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival_offsets[s])));
    in_flight.emplace_back([&, s] {
      SessionRecord& rec = records[s];
      Client client;
      try {
        client.connect(config.host, config.port,
                       config.connect_timeout_seconds,
                       config.call_timeout_seconds);
      } catch (const std::exception&) {
        rec.failed = true;
        return;
      }
      rec.connected = true;
      std::uint64_t id = 0;
      for (const std::string& function : walks[s]) {
        const std::size_t i = static_cast<std::size_t>(id);
        const std::string method = method_for_function(function);
        Json params = Json::object();
        if (function == "Book") params.set("class", Json("B"));
        TraceContext trace;
        if (config.trace) {
          trace.trace_id = walk_trace_ids[s][i];
          trace.span_id = 0;
          trace.sampled = true;
        }
        const CallResult r =
            client.call(method, std::move(params), id++,
                        config.trace ? &trace : nullptr);
        ++rec.invocations;
        if (config.trace) {
          SessionInvocationLog log;
          log.session = s;
          log.invocation = i;
          log.function = function;
          log.method = method;
          log.trace_id = walk_trace_ids[s][i];
          log.outcome = r.outcome;
          log.code = r.code;
          logs[s].push_back(std::move(log));
        }
        if (r.outcome == CallOutcome::kRejected) {
          // Admission turned the session away (the 503 arrives on the
          // first read); everything after is moot.
          rec.rejected = true;
          break;
        }
        if (!r.ok()) {
          ++rec.failures;
          if (r.outcome == CallOutcome::kTransportError) {
            rec.failed = true;
            break;
          }
        }
      }
    });
  }
  for (std::thread& th : in_flight) th.join();

  SessionResult out;
  out.sessions = config.sessions;
  for (const SessionRecord& rec : records) {
    out.invocations += rec.invocations;
    out.invocation_failures += rec.failures;
    if (rec.rejected) {
      ++out.rejected;
    } else if (rec.failed) {
      ++out.failed;
    } else if (rec.connected && rec.failures == 0) {
      ++out.completed;
    } else {
      ++out.failed;
    }
  }
  out.mean_invocations_per_session =
      static_cast<double>(out.invocations) /
      static_cast<double>(out.sessions);
  out.session_success_fraction = static_cast<double>(out.completed) /
                                 static_cast<double>(out.sessions);
  if (config.trace) {
    for (std::vector<SessionInvocationLog>& session_log : logs) {
      for (SessionInvocationLog& log : session_log) {
        out.invocation_log.push_back(std::move(log));
      }
    }
  }
  return out;
}

SmokeResult run_smoke_probe(const std::string& host, std::uint16_t port) {
  SmokeResult out;
  Client client;
  try {
    client.connect(host, port);
  } catch (const std::exception&) {
    out.checks.emplace_back("connect", false);
    out.all_ok = false;
    return out;
  }
  out.checks.emplace_back("connect", true);

  const auto check = [&](const std::string& method, Json params) {
    const CallResult r = client.call(method, std::move(params));
    out.checks.emplace_back(method, r.ok());
  };

  Json tiny_sim = Json::object();
  tiny_sim.set("sessions", Json(200));
  tiny_sim.set("reps", Json(2));
  tiny_sim.set("horizon", Json(500.0));

  check("ping", Json());
  {
    Json p = Json::object();
    p.set("seconds", Json(0.001));
    check("sleep", std::move(p));
  }
  check("steady_state", Json());
  check("mmck_metrics", Json());
  check("web_farm_availability", Json());
  check("composite_availability", Json());
  {
    Json p = Json::object();
    p.set("class", Json("B"));
    check("user_availability", std::move(p));
  }
  check("run_campaign", tiny_sim);
  check("simulate_end_to_end", tiny_sim);
  {
    Json p = Json::object();
    p.set("op", Json("stats"));
    check("cache", std::move(p));
  }
  check("stats", Json());

  out.all_ok = true;
  for (const auto& [name, ok] : out.checks) out.all_ok = out.all_ok && ok;
  return out;
}

}  // namespace upa::serve
