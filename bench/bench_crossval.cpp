// Cross-engine validation harness: prints the same quantities computed by
// every independent evaluation path in the library (closed form, explicit
// CTMC, GSPN reachability, Monte-Carlo simulation) so drift between
// engines is immediately visible.

#include "bench_util.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/sim/availability_sim.hpp"
#include "upa/sim/queue_sim.hpp"
#include "upa/spn/net.hpp"
#include "upa/spn/reachability.hpp"
#include "upa/spn/to_ctmc.hpp"
#include "upa/ta/user_availability.hpp"

namespace {

namespace uc = upa::core;
namespace ut = upa::ta;
namespace cm = upa::common;
namespace usim = upa::sim;
namespace uspn = upa::spn;

uspn::PetriNet imperfect_farm_net(std::size_t servers, double lambda,
                                  double mu, double coverage, double beta) {
  uspn::PetriNet net;
  const auto up = net.add_place("up", static_cast<int>(servers));
  const auto down = net.add_place("down", 0);
  const auto choice = net.add_place("choice", 0);
  const auto manual = net.add_place("manual", 0);
  const auto fail = net.add_timed_transition(
      "fail", lambda, uspn::ServerSemantics::kInfiniteServer);
  net.add_input_arc(fail, up);
  net.add_output_arc(fail, choice);
  net.add_inhibitor_arc(fail, manual);
  const auto covered = net.add_immediate_transition("covered", coverage);
  net.add_input_arc(covered, choice);
  net.add_output_arc(covered, down);
  const auto uncovered =
      net.add_immediate_transition("uncovered", 1.0 - coverage);
  net.add_input_arc(uncovered, choice);
  net.add_output_arc(uncovered, manual);
  const auto reconfig = net.add_timed_transition("reconfig", beta);
  net.add_input_arc(reconfig, manual);
  net.add_output_arc(reconfig, down);
  const auto repair = net.add_timed_transition("repair", mu);
  net.add_input_arc(repair, down);
  net.add_output_arc(repair, up);
  net.add_inhibitor_arc(repair, manual);
  return net;
}

void print_crossval() {
  upa::bench::print_header(
      "Cross-engine validation",
      "One quantity, four independent engines. Disagreement = bug.");

  // Web-service availability (N_W=4, lambda=1e-3 for visible dynamics).
  uc::WebFarmParams farm{4, 1e-3, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{100.0, 100.0, 10};
  const double closed = uc::web_service_availability_imperfect(farm, queue);
  const auto composite = uc::composite_imperfect(farm, queue);
  const double ctmc = composite.availability();

  // GSPN route: weight state probabilities by 1 - p_K(up tokens).
  const auto net = imperfect_farm_net(4, 1e-3, 1.0, 0.98, 12.0);
  const auto tc = uspn::to_ctmc(net, uspn::explore(net));
  const auto pi = tc.chain.steady_state();
  double gspn = 0.0;
  for (std::size_t s = 0; s < tc.markings.size(); ++s) {
    const int up = tc.markings[s][0];
    const int manual = tc.markings[s][3];
    if (up >= 1 && manual == 0) {
      gspn += pi[s] * (1.0 - upa::queueing::mmck_loss_probability(
                                 100.0, 100.0,
                                 static_cast<std::size_t>(up), 10));
    }
  }

  usim::MonteCarloOptions mc;
  mc.horizon = 200000.0;
  mc.replications = 10;
  mc.seed = 99;
  const auto sim = usim::simulate_ctmc_reward(
      composite.chain(), composite.service_probability(), 4, mc);

  cm::Table t({"engine", "A(Web service)", "abs diff vs closed form"});
  t.set_align(0, cm::Align::kLeft);
  t.set_title("Web-service availability, imperfect coverage");
  t.add_row({"closed form (corrected eq. 9)", cm::fmt(closed, 12), "-"});
  t.add_row({"explicit CTMC + reward", cm::fmt(ctmc, 12),
             cm::fmt_sci(std::abs(ctmc - closed), 2)});
  t.add_row({"GSPN -> reachability -> CTMC", cm::fmt(gspn, 12),
             cm::fmt_sci(std::abs(gspn - closed), 2)});
  t.add_row({"Monte-Carlo trajectory (CI half-width " +
                 cm::fmt_sci(sim.interval.half_width, 1) + ")",
             cm::fmt(sim.interval.mean, 8),
             cm::fmt_sci(std::abs(sim.interval.mean - closed), 2)});
  std::cout << t << "\n";

  // User-level availability: eq. 10 vs hierarchy.
  const auto p = upa::bench::paper_params(3);
  cm::Table u({"engine", "A(user, class B)", "abs diff"});
  u.set_align(0, cm::Align::kLeft);
  u.set_title("User-perceived availability");
  const double eq10 = ut::user_availability_eq10(ut::UserClass::kB, p);
  const double hier =
      ut::user_availability_hierarchical(ut::UserClass::kB, p);
  u.add_row({"paper eq. (10) closed form", cm::fmt(eq10, 12), "-"});
  u.add_row({"4-level hierarchical conditioning", cm::fmt(hier, 12),
             cm::fmt_sci(std::abs(hier - eq10), 2)});
  std::cout << u << "\n";

  // Queue loss: closed form vs DES.
  // Two servers keep the loss probability (~6.5e-4) observable within a
  // few hundred thousand simulated arrivals.
  usim::QueueSpec qs;
  qs.interarrival = usim::Exponential{100.0};
  qs.service = usim::Exponential{100.0};
  qs.servers = 2;
  qs.capacity = 10;
  usim::QueueSimOptions qo;
  qo.arrivals_per_replication = 150000;
  qo.replications = 6;
  qo.seed = 5;
  const auto qr = usim::simulate_queue(qs, qo);
  const double pk =
      upa::queueing::mmck_loss_probability(100.0, 100.0, 2, 10);
  cm::Table q({"engine", "p_K(2), rho=1, K=10", "abs diff"});
  q.set_align(0, cm::Align::kLeft);
  q.set_title("M/M/2/10 loss probability");
  q.add_row({"closed form (paper eq. 3)", cm::fmt_sci(pk, 4), "-"});
  q.add_row({"DES (CI half-width " +
                 cm::fmt_sci(qr.loss_probability.half_width, 1) + ")",
             cm::fmt_sci(qr.loss_probability.mean, 4),
             cm::fmt_sci(std::abs(qr.loss_probability.mean - pk), 2)});
  std::cout << q << "\n";
}

void bm_gspn_pipeline(benchmark::State& state) {
  for (auto _ : state) {
    const auto net = imperfect_farm_net(4, 1e-3, 1.0, 0.98, 12.0);
    const auto tc = uspn::to_ctmc(net, uspn::explore(net));
    benchmark::DoNotOptimize(tc.chain.steady_state());
  }
}
BENCHMARK(bm_gspn_pipeline);

void bm_queue_simulation(benchmark::State& state) {
  usim::QueueSpec qs;
  qs.interarrival = usim::Exponential{100.0};
  qs.service = usim::Exponential{100.0};
  qs.servers = 4;
  qs.capacity = 10;
  usim::QueueSimOptions qo;
  qo.arrivals_per_replication = 20000;
  qo.warmup_arrivals = 1000;
  qo.replications = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(usim::simulate_queue(qs, qo));
  }
}
BENCHMARK(bm_queue_simulation);

}  // namespace

UPA_BENCH_MAIN(print_crossval)
