// Measurement study: treat the modeled travel agency as if it were a
// production system. Derive A_LAN from LAN component data (instead of
// assuming Table 7's constant), then "measure" the user-perceived
// availability by end-to-end simulation with realistic think times, and
// compare against the analytic eq. (10) prediction.
//
//   $ ./measurement_study

#include <iostream>

#include "upa/common/table.hpp"
#include "upa/ta/end_to_end_sim.hpp"
#include "upa/ta/lan_model.hpp"
#include "upa/ta/user_availability.hpp"

int main() {
  namespace ta = upa::ta;
  namespace cm = upa::common;

  // 1. Resource level: derive the LAN availability from component data
  //    (dual bus, four taps) instead of assuming 0.9966.
  ta::LanComponentParams lan;
  lan.medium = 0.9992;
  lan.tap = 0.9994;
  lan.stations = 4;
  lan.redundant_media = 2;
  const double a_lan = ta::bus_lan_availability(lan);
  std::cout << "derived A(LAN): dual bus = " << cm::fmt(a_lan, 6)
            << " (vs ring of same parts = "
            << cm::fmt(ta::ring_lan_availability(lan.medium, lan.tap,
                                                 lan.stations),
                       6)
            << ", Table 7 assumed 0.9966)\n\n";

  auto params =
      ta::TaParameters::paper_defaults().with_reservation_systems(2);
  params.a_lan = a_lan;

  // 2. Analytic prediction.
  const double predicted =
      ta::user_availability_eq10(ta::UserClass::kB, params);
  std::cout << "analytic prediction (eq. 10, class B): "
            << cm::fmt(predicted, 6) << "\n\n";

  // 3. "Measurement": end-to-end simulation with resources evolving
  //    during the sessions.
  cm::Table t({"mean think time", "measured A(user)", "95% CI",
               "gap to prediction"});
  t.set_align(0, cm::Align::kLeft);
  for (double think_minutes : {0.0, 1.0, 5.0, 30.0}) {
    ta::EndToEndOptions options;
    options.horizon_hours = 20000.0;
    options.think_time_hours = think_minutes / 60.0;
    options.sessions_per_replication = 20000;
    options.replications = 5;
    options.seed = 123;
    const auto result =
        ta::simulate_end_to_end(ta::UserClass::kB, params, options);
    t.add_row({think_minutes == 0.0
                   ? std::string("0 (frozen state)")
                   : cm::fmt(think_minutes, 3) + " min",
               cm::fmt(result.perceived_availability.mean, 6),
               "+-" + cm::fmt(result.perceived_availability.half_width, 3),
               cm::fmt(result.perceived_availability.mean - predicted, 4)});
  }
  std::cout << t << "\n";

  std::cout
      << "Reading the study: the analytic model is exact for instantaneous\n"
         "sessions and stays within a fraction of a percentage point for\n"
         "minute-scale think times; the gap grows once sessions live long\n"
         "enough for resources to change state mid-session.\n";
  return 0;
}
