// Quickstart: evaluate the user-perceived availability of the paper's
// travel agency in ~30 lines, then poke at one design lever.
//
//   $ ./quickstart
//
// Walks the full four-level pipeline: resource parameters -> service
// availabilities -> function availabilities -> user-perceived measure.

#include <iostream>

#include "upa/common/numeric.hpp"
#include "upa/common/table.hpp"
#include "upa/ta/services.hpp"
#include "upa/ta/user_availability.hpp"

int main() {
  namespace ta = upa::ta;
  namespace cm = upa::common;

  // 1. Start from the paper's configuration (Table 7) with 2 flight/
  //    hotel/car reservation systems each.
  ta::TaParameters params =
      ta::TaParameters::paper_defaults().with_reservation_systems(2);

  // 2. Service level: what does each service deliver?
  const ta::ServiceAvailabilities services = ta::compute_services(params);
  std::cout << "Web service availability : " << cm::fmt(services.web, 9)
            << "\nDatabase service         : " << cm::fmt(services.database, 9)
            << "\nFlight reservation (N=2) : " << cm::fmt(services.flight, 9)
            << "\n\n";

  // 3. User level: how do the two customer classes perceive the site?
  for (const auto uclass : {ta::UserClass::kA, ta::UserClass::kB}) {
    const double a = ta::user_availability_eq10(uclass, params);
    std::cout << "Perceived availability, " << ta::user_class_name(uclass)
              << ": " << cm::fmt(a, 6) << "  ("
              << cm::fmt(cm::downtime_hours_per_year(a), 4)
              << " hours downtime/year)\n";
  }

  // 4. One design lever: what do more reservation partners buy us?
  cm::Table t({"reservation systems", "A(user, class B)", "downtime h/yr"});
  t.set_title("\nDesign lever: external replication");
  for (std::size_t n : {1u, 2u, 4u, 8u}) {
    const double a = ta::user_availability_eq10(
        ta::UserClass::kB, params.with_reservation_systems(n));
    t.add_row({std::to_string(n), cm::fmt(a, 6),
               cm::fmt_fixed(cm::downtime_hours_per_year(a), 1)});
  }
  std::cout << t;
  return 0;
}
