// Tests for the sensitivity toolkit: sweeps, tornado ranking, and the
// design-threshold search used for the paper's Section 5.1 decisions.

#include <gtest/gtest.h>

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/sensitivity/sweep.hpp"
#include "upa/sensitivity/threshold.hpp"
#include "upa/sensitivity/tornado.hpp"

namespace us = upa::sensitivity;
using upa::common::ModelError;

TEST(Sweep, EvaluatesAllPoints) {
  const auto series =
      us::sweep("square", {1.0, 2.0, 3.0}, [](double x) { return x * x; });
  ASSERT_EQ(series.y.size(), 3u);
  EXPECT_DOUBLE_EQ(series.y[1], 4.0);
  EXPECT_EQ(series.label, "square");
}

TEST(Sweep, FamilyProducesOneSeriesPerParameter) {
  const auto family = us::sweep_family(
      {1.0, 2.0}, {10.0, 20.0}, {"k=10", "k=20"},
      [](double x, double k) { return k * x; });
  ASSERT_EQ(family.size(), 2u);
  EXPECT_DOUBLE_EQ(family[0].y[1], 20.0);
  EXPECT_DOUBLE_EQ(family[1].y[0], 20.0);
  EXPECT_EQ(family[1].label, "k=20");
}

TEST(Sweep, ParallelThreadsProduceIdenticalSeries) {
  // SweepOptions::threads is a pure wall-clock knob: the fan-out must
  // return the exact bytes of the serial loop, in the same order.
  std::vector<double> xs;
  for (int i = 1; i <= 40; ++i) xs.push_back(0.1 * i);
  const auto measure = [](double x) { return std::exp(-x) * std::sin(x); };
  const auto serial = us::sweep("series", xs, measure);
  us::SweepOptions options;
  options.threads = 4;
  const auto parallel = us::sweep("series", xs, measure, options);
  EXPECT_EQ(serial.x, parallel.x);
  EXPECT_EQ(serial.y, parallel.y);

  const std::vector<double> params{1.0, 2.0, 3.0};
  const std::vector<std::string> labels{"a", "b", "c"};
  const auto measure2 = [](double x, double p) { return std::cos(p * x); };
  const auto family_serial = us::sweep_family(xs, params, labels, measure2);
  const auto family_parallel =
      us::sweep_family(xs, params, labels, measure2, options);
  ASSERT_EQ(family_serial.size(), family_parallel.size());
  for (std::size_t s = 0; s < family_serial.size(); ++s) {
    EXPECT_EQ(family_serial[s].label, family_parallel[s].label);
    EXPECT_EQ(family_serial[s].x, family_parallel[s].x);
    EXPECT_EQ(family_serial[s].y, family_parallel[s].y);
  }
}

TEST(Sweep, FamilyRejectsLabelMismatch) {
  EXPECT_THROW((void)us::sweep_family({1.0}, {1.0, 2.0}, {"only-one"},
                                      [](double, double) { return 0.0; }),
               ModelError);
}

TEST(Sweep, DerivativeMatchesAnalytic) {
  EXPECT_NEAR(us::derivative_at([](double x) { return x * x * x; }, 2.0),
              12.0, 1e-5);
  EXPECT_NEAR(us::derivative_at([](double x) { return std::exp(x); }, 0.0),
              1.0, 1e-6);
}

TEST(Sweep, FirstIncreaseDetectsReversal) {
  us::Series monotone{"m", {1, 2, 3}, {3.0, 2.0, 1.0}};
  EXPECT_EQ(us::first_increase(monotone), -1);
  us::Series valley{"v", {1, 2, 3, 4}, {3.0, 1.0, 2.0, 4.0}};
  EXPECT_EQ(us::first_increase(valley), 2);
}

TEST(Tornado, RanksDominantParameterFirst) {
  const std::map<std::string, double> base{{"big", 1.0}, {"small", 1.0}};
  const std::map<std::string, us::ParameterRange> ranges{
      {"big", {0.5, 1.5}}, {"small", {0.95, 1.05}}};
  const auto entries = us::tornado(
      base, ranges, [](const std::map<std::string, double>& p) {
        return p.at("big") * 2.0 + p.at("small");
      });
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].parameter, "big");
  EXPECT_NEAR(entries[0].swing, 2.0, 1e-12);
  EXPECT_NEAR(entries[1].swing, 0.1, 1e-12);
}

TEST(Tornado, RejectsUnknownParameter) {
  const std::map<std::string, double> base{{"x", 1.0}};
  const std::map<std::string, us::ParameterRange> ranges{
      {"y", {0.0, 1.0}}};
  EXPECT_THROW(
      (void)us::tornado(base, ranges,
                        [](const std::map<std::string, double>&) {
                          return 0.0;
                        }),
      ModelError);
}

TEST(Threshold, FindsMinimumSatisfying) {
  const auto n =
      us::min_satisfying(1, 10, [](std::size_t k) { return k * k >= 10; });
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(*n, 4u);
}

TEST(Threshold, ReturnsNulloptWhenInfeasible) {
  EXPECT_FALSE(
      us::min_satisfying(1, 5, [](std::size_t) { return false; }).has_value());
}

TEST(Threshold, SatisfyingSetHandlesNonMonotonePredicates) {
  // Predicate true only in the middle (like imperfect-coverage designs).
  const auto set = us::satisfying_set(
      1, 8, [](std::size_t k) { return k >= 3 && k <= 5; });
  EXPECT_EQ(set, (std::vector<std::size_t>{3, 4, 5}));
}

TEST(Threshold, DowntimeConversion) {
  // 5 minutes/year -> about "five nines".
  const double a = us::availability_for_downtime_minutes_per_year(5.0);
  EXPECT_NEAR(a, 1.0 - 5.0 / 525600.0, 1e-12);
  EXPECT_GT(a, 0.99999);
  EXPECT_THROW((void)us::availability_for_downtime_minutes_per_year(-1.0),
               ModelError);
}
