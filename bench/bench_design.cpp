// Regenerates the Section 5.1 design decisions: the minimum number of web
// servers meeting an availability requirement ("unavailability lower than
// 5 min/year <=> UA < 1e-5"), per (lambda, alpha), plus the feasible
// design regions (non-contiguous under imperfect coverage!).

#include <sstream>

#include "bench_util.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/sensitivity/threshold.hpp"

namespace {

namespace uc = upa::core;
namespace us = upa::sensitivity;
namespace cm = upa::common;

double ua(std::size_t n, double lambda, double alpha) {
  uc::WebFarmParams farm{n, lambda, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{alpha, 100.0, 10};
  return 1.0 - uc::web_service_availability_imperfect(farm, queue);
}

std::string region_string(const std::vector<std::size_t>& region) {
  if (region.empty()) return "infeasible";
  std::ostringstream os;
  for (std::size_t i = 0; i < region.size(); ++i) {
    if (i != 0) os << ",";
    os << region[i];
  }
  return os.str();
}

void print_design() {
  upa::bench::print_header(
      "Section 5.1 design decisions",
      "Minimum N_W meeting UA < 1e-5 (~5 min/year), imperfect coverage.\n"
      "Paper: N_W=2 @ alpha=50/s and N_W=4 @ alpha=100/s for lambda=1e-3\n"
      "and 1e-4/h; infeasible at lambda=1e-2/h. Exact: the lambda=1e-3,\n"
      "alpha=100 case first qualifies at N_W=5 (and ONLY 5 -- the\n"
      "coverage reversal closes the region above).");
  cm::Table t({"lambda [1/h]", "alpha [1/s]", "min N_W", "feasible N_W set",
               "UA at min"});
  for (double lambda : {1e-2, 1e-3, 1e-4}) {
    for (double alpha : {50.0, 100.0, 150.0}) {
      const auto region = us::satisfying_set(1, 10, [&](std::size_t n) {
        return ua(n, lambda, alpha) < 1e-5;
      });
      t.add_row({cm::fmt_sci(lambda, 0), cm::fmt(alpha, 3),
                 region.empty() ? "-" : std::to_string(region.front()),
                 region_string(region),
                 region.empty() ? "-"
                                : cm::fmt_sci(ua(region.front(), lambda,
                                                 alpha),
                                              2)});
    }
  }
  std::cout << t << "\n";

  cm::Table h({"lambda [1/h]", "alpha [1/s]", "UA(N_W=3)", "h/yr",
               "< 1 h/yr?"});
  h.set_title(
      "\"Three servers keep downtime under 1 hour/year for load < 1\"");
  for (double lambda : {1e-2, 1e-3, 1e-4}) {
    for (double alpha : {50.0, 90.0}) {
      const double u = ua(3, lambda, alpha);
      h.add_row({cm::fmt_sci(lambda, 0), cm::fmt(alpha, 3),
                 cm::fmt_sci(u, 2), cm::fmt_fixed(u * 8760.0, 2),
                 u * 8760.0 < 1.0 ? "yes" : "NO"});
    }
  }
  std::cout << h << "\n";
}

void bm_design_search(benchmark::State& state) {
  for (auto _ : state) {
    const auto n = us::min_satisfying(1, 10, [](std::size_t k) {
      return ua(k, 1e-4, 100.0) < 1e-5;
    });
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(bm_design_search);

}  // namespace

UPA_BENCH_MAIN(print_design)
