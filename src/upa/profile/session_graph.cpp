#include "upa/profile/session_graph.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::profile {

SessionGraphBuilder& SessionGraphBuilder::add_function(
    const std::string& name) {
  UPA_REQUIRE(!name.empty(), "function name must not be empty");
  UPA_REQUIRE(name != "Start" && name != "Exit",
              "Start/Exit are reserved node names");
  UPA_REQUIRE(!index_.contains(name), "duplicate function " + name);
  index_.emplace(name, functions_.size());
  functions_.push_back(name);
  return *this;
}

std::size_t SessionGraphBuilder::state_of(const std::string& name) const {
  if (name == "Start") return NodeIndex::kStart;
  if (name == "Exit") return functions_.size() + 1;
  const auto it = index_.find(name);
  UPA_REQUIRE(it != index_.end(), "unknown node " + name);
  return NodeIndex::function(it->second);
}

SessionGraphBuilder& SessionGraphBuilder::transition(const std::string& from,
                                                     const std::string& to,
                                                     double probability) {
  UPA_REQUIRE(from != "Exit", "Exit has no outgoing transitions");
  UPA_REQUIRE(to != "Start", "sessions never return to Start");
  transitions_.emplace_back(from, to,
                            upa::common::clamp_probability(probability));
  return *this;
}

OperationalProfile SessionGraphBuilder::build() const {
  UPA_REQUIRE(!functions_.empty(), "add at least one function first");
  const std::size_t n = functions_.size();
  linalg::Matrix p(n + 2, n + 2);
  for (const auto& [from, to, probability] : transitions_) {
    const std::size_t r = state_of(from);
    const std::size_t c = state_of(to);
    UPA_REQUIRE(p(r, c) == 0.0,
                "transition " + from + " -> " + to + " set twice");
    p(r, c) = probability;
  }
  p(n + 1, n + 1) = 1.0;  // Exit absorbing
  for (std::size_t r = 0; r <= n; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < n + 2; ++c) sum += p(r, c);
    const std::string name =
        r == NodeIndex::kStart ? "Start" : functions_[r - 1];
    UPA_REQUIRE(std::abs(sum - 1.0) <= 1e-9,
                "outgoing probabilities of " + name + " sum to " +
                    std::to_string(sum));
  }
  return OperationalProfile(functions_, std::move(p));
}

}  // namespace upa::profile
