#include "upa/markov/reward.hpp"

#include <cmath>

#include "upa/common/error.hpp"
#include "upa/markov/transient.hpp"

namespace upa::markov {

RewardModel::RewardModel(Ctmc chain, std::vector<double> rewards)
    : chain_(std::move(chain)), rewards_(std::move(rewards)) {
  UPA_REQUIRE(rewards_.size() == chain_.state_count(),
              "one reward per state required");
  for (double r : rewards_) {
    UPA_REQUIRE(std::isfinite(r), "rewards must be finite");
  }
}

double RewardModel::steady_state_reward() const {
  const linalg::Vector pi = chain_.steady_state();
  double sum = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) sum += pi[i] * rewards_[i];
  return sum;
}

double RewardModel::transient_reward(linalg::Vector initial, double t) const {
  const linalg::Vector pi =
      transient_distribution(chain_, std::move(initial), t);
  double sum = 0.0;
  for (std::size_t i = 0; i < pi.size(); ++i) sum += pi[i] * rewards_[i];
  return sum;
}

double RewardModel::interval_reward(linalg::Vector initial, double t,
                                    std::size_t steps) const {
  UPA_REQUIRE(steps >= 1, "need at least one integration step");
  UPA_REQUIRE(std::isfinite(t) && t > 0.0, "horizon must be positive");
  const double dt = t / static_cast<double>(steps);
  linalg::Vector current = std::move(initial);
  auto reward_of = [this](const linalg::Vector& pi) {
    double sum = 0.0;
    for (std::size_t i = 0; i < pi.size(); ++i) sum += pi[i] * rewards_[i];
    return sum;
  };
  double integral = 0.0;
  double previous = reward_of(current);
  for (std::size_t k = 1; k <= steps; ++k) {
    current = transient_distribution(chain_, std::move(current), dt);
    const double value = reward_of(current);
    integral += 0.5 * (previous + value) * dt;
    previous = value;
  }
  return integral / t;
}

}  // namespace upa::markov
