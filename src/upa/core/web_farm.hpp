#pragma once
// The paper's web-service resource model (Section 4.1.2): a farm of N_W
// identical web servers behind one bounded buffer, failing with rate
// lambda, repaired by a shared facility with rate mu. Two coverage
// variants:
//   perfect   (Figure 9): every failure is detected and the farm
//                         reconfigures instantly;
//   imperfect (Figure 10): with probability 1-c a failure is uncovered and
//                         the whole service is down for an exponential
//                         manual reconfiguration of rate beta.
//
// The performance side is an M/M/i/K queue (i = operational servers,
// buffer K); the composite availability is
//   A = 1 - [ sum_i pi_i p_K(i) + sum_i pi_{y_i} + pi_0 ]   (eqs. 5 / 9).
//
// NOTE on the paper's eqs. (7)-(9): the printed sums run over
// i = 1..N_W-2, but the exact chain solution requires the manual-
// reconfiguration states y_i to exist for i = 1..N_W. Only the corrected
// bounds reproduce the paper's own anchor A(WS) = 0.999995587; we
// implement the corrected form and expose the exact CTMC for comparison.

#include <cstddef>
#include <vector>

#include "upa/core/performability.hpp"
#include "upa/markov/ctmc.hpp"

namespace upa::core {

/// Failure/repair side of the farm. Rates share one time unit (the paper
/// uses per-hour; any unit works as long as it is consistent).
struct WebFarmParams {
  std::size_t servers = 1;            ///< N_W
  double failure_rate = 1e-4;         ///< lambda
  double repair_rate = 1.0;           ///< mu (shared repair facility)
  double coverage = 1.0;              ///< c (imperfect model only)
  double reconfiguration_rate = 12.0; ///< beta (imperfect model only)
};

/// Performance side: M/M/i/K request handling. Rates share one time unit
/// (per-second in the paper); only their ratio rho = alpha/nu and the
/// buffer size matter.
struct WebQueueParams {
  double arrival_rate = 100.0;  ///< alpha
  double service_rate = 100.0;  ///< nu per server
  std::size_t buffer = 10;      ///< K (total capacity)
};

/// Steady distribution over operational-server counts, perfect coverage
/// (paper eq. 4): element i = pi_i, i = 0..N_W.
[[nodiscard]] std::vector<double> perfect_coverage_distribution(
    const WebFarmParams& farm);

/// Steady distribution for the imperfect-coverage model (corrected
/// eqs. 6-8): `operational[i]` = pi_i for i = 0..N_W and `manual[i]` =
/// pi_{y_i} for i = 1..N_W (index 0 unused, kept for alignment).
struct ImperfectDistribution {
  std::vector<double> operational;
  std::vector<double> manual;
};
[[nodiscard]] ImperfectDistribution imperfect_coverage_distribution(
    const WebFarmParams& farm);

/// Explicit Figure 9 CTMC; state i = i operational servers.
[[nodiscard]] markov::Ctmc perfect_coverage_chain(const WebFarmParams& farm);

/// Explicit Figure 10 CTMC and its state layout: states 0..N_W are the
/// operational-server counts; state N_W + i is y_i (i = 1..N_W).
struct ImperfectChain {
  markov::Ctmc chain;
  [[nodiscard]] std::size_t operational_state(std::size_t servers_up) const {
    return servers_up;
  }
  [[nodiscard]] std::size_t manual_state(std::size_t i) const {
    return server_count + i;
  }
  std::size_t server_count = 0;
};
[[nodiscard]] ImperfectChain imperfect_coverage_chain(
    const WebFarmParams& farm);

/// Web service availability, perfect coverage (paper eq. 5), closed form.
/// All four availability entry points below consult the evaluation cache
/// when cache::set_enabled is on: identical (farm, queue[, deadline])
/// inputs replay the exact first-miss value bit for bit. Perfect-coverage
/// keys omit coverage/beta (the formulas never read them).
[[nodiscard]] double web_service_availability_perfect(
    const WebFarmParams& farm, const WebQueueParams& queue);

/// Web service availability, imperfect coverage (corrected eq. 9),
/// closed form.
[[nodiscard]] double web_service_availability_imperfect(
    const WebFarmParams& farm, const WebQueueParams& queue);

/// The same measures obtained by solving the explicit CTMC and weighting
/// with 1 - p_K(i) through CompositeAvailabilityModel — an independent
/// cross-check of the closed forms.
[[nodiscard]] CompositeAvailabilityModel composite_perfect(
    const WebFarmParams& farm, const WebQueueParams& queue);
[[nodiscard]] CompositeAvailabilityModel composite_imperfect(
    const WebFarmParams& farm, const WebQueueParams& queue);

/// Deadline-extended measure (the paper's stated future work): a request
/// is served only when it is accepted AND completes within `deadline`
/// time units (same unit as 1/nu). Setting deadline = +infinity recovers
/// the buffer-loss-only measures above.
[[nodiscard]] double web_service_availability_perfect_with_deadline(
    const WebFarmParams& farm, const WebQueueParams& queue, double deadline);
[[nodiscard]] double web_service_availability_imperfect_with_deadline(
    const WebFarmParams& farm, const WebQueueParams& queue, double deadline);

}  // namespace upa::core
