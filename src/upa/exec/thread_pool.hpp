#pragma once
// Fixed-size thread pool with a fork/join `parallel_for` front-end -- the
// execution substrate for replication-level parallelism in the end-to-end
// simulator, plan fan-out in fault-injection campaigns, and design-point
// sweeps in the bench harnesses.
//
// Design rules that keep parallel runs bit-for-bit reproducible:
//   - the pool never owns work-item state: callers pass an index-addressed
//     body, write into pre-sized slots, and merge in index order;
//   - exceptions are captured per index and the one with the SMALLEST
//     index is rethrown after the join, matching what a serial loop would
//     have thrown first;
//   - a pool of size one (or a zero-length loop) degrades to an inline
//     serial loop on the calling thread -- no worker threads, no locks.
//
// `parallel_for` is synchronous: it returns only after every index ran.
// Re-entering the SAME pool from inside a body would deadlock a
// fixed-size pool, so it throws ModelError instead (nested-submit
// rejection); use a separate pool (or serial code) for inner levels.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace upa::exec {

/// Resolves a user-facing `--threads` value: 0 = one worker per hardware
/// thread (at least 1), anything else is taken literally.
[[nodiscard]] std::size_t resolve_threads(std::size_t requested) noexcept;

class ThreadPool {
 public:
  /// `threads` as for resolve_threads(); the calling thread participates
  /// in every parallel_for, so a pool of size N spawns N - 1 workers.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread), >= 1.
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size() + 1;
  }

  /// Runs body(0) .. body(n - 1), blocking until all of them finished.
  /// Indices are claimed dynamically, so per-index work may be uneven.
  /// n == 0 is a no-op. If bodies throw, the exception raised by the
  /// smallest index is rethrown here after every in-flight body drained.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& body);

  /// parallel_for that collects fn(i) into a vector in index order.
  /// T must be default-constructible and movable.
  template <typename T, typename Fn>
  [[nodiscard]] std::vector<T> parallel_map(std::size_t n, Fn&& fn) {
    std::vector<T> out(n);
    parallel_for(n, [&](std::size_t i) { out[i] = fn(i); });
    return out;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;  // guarded by mutex_
  bool stop_ = false;                        // guarded by mutex_
};

}  // namespace upa::exec
