#pragma once
// The closed loop: a Controller attaches to one live upa_served over
// its telemetry `subscribe` channel, turns the pushed metrics ticks
// into (lambda-hat, nu-hat, loss-hat) via RateEstimator, asks
// AdmissionPolicy for the smallest (i, K) meeting the loss SLO, and
// applies accepted proposals through the server's `reconfigure` RPC.
// The actuation path is deliberately in-band: the control channel is a
// normal client connection subject to the same M/M/i/K admission
// control as the workload, so under the very overload that makes a
// grow urgent the reconfigure call itself may be 503-rejected -- the
// controller retries with a short backoff until a slot opens (a few
// tries suffice even at high loss fractions) and counts every retry.
//
// Observability: with an obs::Observer attached, each tick records one
// `control_decision` span (attrs: lambda, nu, loss, plan, applied) and
// refreshes ctl.* gauges. The observer must be exclusive to this
// controller -- it is touched only from the control thread.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "upa/control/estimator.hpp"
#include "upa/control/policy.hpp"
#include "upa/obs/observer.hpp"
#include "upa/serve/client.hpp"

namespace upa::control {

struct ControllerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  /// Telemetry push interval requested from the server -- the control
  /// loop's tick period.
  double tick_interval_seconds = 0.25;
  double connect_timeout_seconds = 5.0;
  /// Reconfigure delivery: attempts and backoff for the in-band RPC
  /// contending with the workload for an admission slot.
  std::size_t apply_attempts = 25;
  double apply_backoff_seconds = 0.02;
  RateEstimator::Options estimator;
  PolicyOptions policy;
  /// Optional; exclusive to the control thread (see file comment).
  obs::Observer* obs = nullptr;
};

struct ControllerStats {
  std::uint64_t ticks = 0;          ///< metrics lines consumed
  std::uint64_t decisions = 0;      ///< policy evaluations
  std::uint64_t applies = 0;        ///< successful reconfigure RPCs
  std::uint64_t apply_retries = 0;  ///< rejected/failed delivery attempts
  std::uint64_t apply_failures = 0; ///< proposals given up on entirely
  std::uint64_t errors = 0;         ///< unparseable telemetry lines
  std::size_t workers = 0;          ///< policy's view of the applied i
  std::size_t capacity = 0;         ///< policy's view of the applied K
  double lambda = 0.0;              ///< last estimate fed to the policy
  double nu = 0.0;
  double loss = 0.0;
  bool connected = false;           ///< subscribe stream currently live
};

class Controller {
 public:
  explicit Controller(ControllerOptions options);
  ~Controller();

  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Seeds the policy from the server's `stats` RPC, subscribes to its
  /// telemetry stream, and spawns the control thread. Throws ModelError
  /// when the server cannot be reached or refuses the subscription.
  void start();

  /// Stops the control thread (wakes a blocked stream read) and joins.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] ControllerStats stats() const;

 private:
  void run();
  void handle_metrics_line(const serve::Json& line);
  /// Delivers one reconfigure with retry-on-contention; true on applied.
  bool apply(std::size_t workers, std::size_t capacity);
  [[nodiscard]] double now_seconds() const;

  ControllerOptions options_;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  serve::Client subscription_;
  RateEstimator estimator_;
  std::optional<AdmissionPolicy> policy_;

  mutable std::mutex mutex_;  ///< guards stats_
  ControllerStats stats_;
};

}  // namespace upa::control
