#include "upa/inject/injectors.hpp"

#include <algorithm>
#include <cmath>

#include "upa/common/error.hpp"

namespace upa::inject {

void OutageProcess::validate() const {
  UPA_REQUIRE(!targets.empty(), "outage process needs at least one target");
  UPA_REQUIRE(std::isfinite(events_per_hour) && events_per_hour > 0.0,
              "outage event rate must be positive and finite");
  UPA_REQUIRE(
      std::isfinite(mean_duration_hours) && mean_duration_hours > 0.0,
      "mean outage duration must be positive and finite");
  UPA_REQUIRE(common_cause_probability >= 0.0 &&
                  common_cause_probability <= 1.0,
              "common-cause probability must lie in [0, 1]");
}

FaultPlan sample_outage_plan(const OutageProcess& process,
                             double horizon_hours, sim::Xoshiro256& rng) {
  process.validate();
  UPA_REQUIRE(std::isfinite(horizon_hours) && horizon_hours > 0.0,
              "horizon must be positive and finite");
  FaultPlan plan;
  double t = 0.0;
  while (true) {
    t += -std::log(rng.uniform01_open_left()) / process.events_per_hour;
    if (t >= horizon_hours) break;
    const double duration = std::min(
        -std::log(rng.uniform01_open_left()) * process.mean_duration_hours,
        horizon_hours - t);
    if (duration <= 0.0) continue;
    const bool common_cause =
        rng.uniform01() < process.common_cause_probability;
    if (common_cause) {
      for (FaultTarget target : process.targets) {
        plan.add(target, t, duration);
      }
    } else {
      const auto pick = static_cast<std::size_t>(
          rng.uniform01() * static_cast<double>(process.targets.size()));
      plan.add(process.targets[std::min(pick, process.targets.size() - 1)],
               t, duration);
    }
  }
  return plan;
}

FaultPlan scripted_outage(FaultTarget target, double start_hours,
                          double duration_hours, double horizon_hours) {
  UPA_REQUIRE(std::isfinite(horizon_hours) && horizon_hours > 0.0,
              "horizon must be positive and finite");
  UPA_REQUIRE(std::isfinite(start_hours) && start_hours >= 0.0 &&
                  start_hours < horizon_hours,
              "outage start must lie within [0, horizon)");
  FaultPlan plan;
  plan.add(target, start_hours,
           std::min(duration_hours, horizon_hours - start_hours));
  return plan;
}

}  // namespace upa::inject
