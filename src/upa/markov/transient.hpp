#pragma once
// Transient CTMC solutions via uniformization (Jensen's method), plus
// interval availability. Used to study how quickly the web-farm model
// approaches the steady state assumed by the paper's composite
// performance-availability approach (the "quasi steady state" assumption).

#include <cstddef>

#include "upa/linalg/matrix.hpp"
#include "upa/markov/ctmc.hpp"

namespace upa::markov {

/// Options for the uniformization algorithm.
struct UniformizationOptions {
  /// Truncation error bound on the Poisson tail.
  double epsilon = 1e-12;
  /// Safety cap on the number of Poisson terms.
  std::size_t max_terms = 2'000'000;
};

/// Distribution at time t from `initial`, via uniformization:
/// pi(t) = sum_k PoissonPmf(Lambda t, k) * initial * P^k.
[[nodiscard]] linalg::Vector transient_distribution(
    const Ctmc& chain, linalg::Vector initial, double t,
    const UniformizationOptions& options = {});

/// Point availability at time t: probability mass on `up_states`.
[[nodiscard]] double point_availability(
    const Ctmc& chain, linalg::Vector initial, double t,
    const std::vector<std::size_t>& up_states,
    const UniformizationOptions& options = {});

/// Expected interval availability over [0, t]: time-average probability of
/// being in `up_states`, integrated with the trapezoidal rule over
/// `steps` sub-intervals of the uniformized chain.
[[nodiscard]] double interval_availability(
    const Ctmc& chain, linalg::Vector initial, double t,
    const std::vector<std::size_t>& up_states, std::size_t steps = 200,
    const UniformizationOptions& options = {});

}  // namespace upa::markov
