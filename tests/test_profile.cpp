// Tests for the operational-profile module: builder validation, DTMC
// analyses (visits, session length, invocation probability), and exact
// visited-set scenario probabilities.

#include <gtest/gtest.h>

#include "upa/common/error.hpp"
#include "upa/profile/operational_profile.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/profile/session_graph.hpp"

namespace up = upa::profile;
using upa::common::ModelError;

namespace {

/// Start -> A (always); A -> Exit 0.5, A -> B 0.5; B -> Exit.
up::OperationalProfile simple_two_function() {
  return up::SessionGraphBuilder()
      .add_function("A")
      .add_function("B")
      .transition("Start", "A", 1.0)
      .transition("A", "Exit", 0.5)
      .transition("A", "B", 0.5)
      .transition("B", "Exit", 1.0)
      .build();
}

}  // namespace

TEST(SessionGraph, BuildValidatesRowSums) {
  up::SessionGraphBuilder builder;
  builder.add_function("A");
  builder.transition("Start", "A", 1.0).transition("A", "Exit", 0.6);
  EXPECT_THROW((void)builder.build(), ModelError);  // A row sums to 0.6
}

TEST(SessionGraph, RejectsReservedAndDuplicateNames) {
  up::SessionGraphBuilder builder;
  EXPECT_THROW(builder.add_function("Start"), ModelError);
  builder.add_function("A");
  EXPECT_THROW(builder.add_function("A"), ModelError);
  EXPECT_THROW(builder.transition("Exit", "A", 1.0), ModelError);
  EXPECT_THROW(builder.transition("A", "Start", 1.0), ModelError);
}

TEST(SessionGraph, RejectsUnknownNodes) {
  up::SessionGraphBuilder builder;
  builder.add_function("A");
  builder.transition("Start", "A", 1.0)
      .transition("A", "Nowhere", 1.0);
  EXPECT_THROW((void)builder.build(), ModelError);
}

TEST(Profile, FunctionLookupByName) {
  const auto profile = simple_two_function();
  EXPECT_EQ(profile.function_count(), 2u);
  EXPECT_EQ(profile.function_index("B"), 1u);
  EXPECT_EQ(profile.function_name(0), "A");
  EXPECT_THROW((void)profile.function_index("C"), ModelError);
}

TEST(Profile, ExpectedVisitsSimpleChain) {
  const auto profile = simple_two_function();
  EXPECT_NEAR(profile.expected_visits(0), 1.0, 1e-12);   // A always once
  EXPECT_NEAR(profile.expected_visits(1), 0.5, 1e-12);   // B half the time
  EXPECT_NEAR(profile.mean_session_length(), 1.5, 1e-12);
}

TEST(Profile, ExpectedVisitsWithCycle) {
  // A -> A with 0.5 (self loop via revisits): visits geometric, mean 2.
  const auto profile = up::SessionGraphBuilder()
                           .add_function("A")
                           .transition("Start", "A", 1.0)
                           .transition("A", "A", 0.5)
                           .transition("A", "Exit", 0.5)
                           .build();
  EXPECT_NEAR(profile.expected_visits(0), 2.0, 1e-12);
}

TEST(Profile, InvocationProbability) {
  const auto profile = simple_two_function();
  EXPECT_NEAR(profile.invocation_probability(0), 1.0, 1e-12);
  EXPECT_NEAR(profile.invocation_probability(1), 0.5, 1e-12);
}

TEST(Profile, DotExportMentionsAllNodes) {
  const std::string dot = simple_two_function().to_dot();
  EXPECT_NE(dot.find("Start"), std::string::npos);
  EXPECT_NE(dot.find("Exit"), std::string::npos);
  EXPECT_NE(dot.find("\"A\""), std::string::npos);
}

TEST(Scenario, VisitedExactlySimpleSplit) {
  const auto profile = simple_two_function();
  // Visited {A} = 0.5; visited {A, B} = 0.5.
  EXPECT_NEAR(up::visited_exactly_probability(profile, {0}), 0.5, 1e-12);
  EXPECT_NEAR(up::visited_exactly_probability(profile, {0, 1}), 0.5, 1e-12);
  // Visiting only B is impossible.
  EXPECT_NEAR(up::visited_exactly_probability(profile, {1}), 0.0, 1e-12);
}

TEST(Scenario, ClassesSumToOne) {
  const auto profile = up::SessionGraphBuilder()
                           .add_function("X")
                           .add_function("Y")
                           .transition("Start", "X", 0.7)
                           .transition("Start", "Y", 0.3)
                           .transition("X", "Y", 0.4)
                           .transition("X", "Exit", 0.6)
                           .transition("Y", "X", 0.2)
                           .transition("Y", "Exit", 0.8)
                           .build();
  const auto classes = up::scenario_classes(profile);
  double total = 0.0;
  for (const auto& c : classes) total += c.probability;
  EXPECT_NEAR(total, 1.0, 1e-10);
  // Sorted descending.
  for (std::size_t i = 1; i < classes.size(); ++i) {
    EXPECT_GE(classes[i - 1].probability, classes[i].probability);
  }
}

TEST(Scenario, CycleCollapsedIntoOneClass) {
  // X <-> Y cycle: any alternation maps to class {X, Y}.
  const auto profile = up::SessionGraphBuilder()
                           .add_function("X")
                           .add_function("Y")
                           .transition("Start", "X", 1.0)
                           .transition("X", "Y", 0.5)
                           .transition("X", "Exit", 0.5)
                           .transition("Y", "X", 0.5)
                           .transition("Y", "Exit", 0.5)
                           .build();
  const double both = up::visited_exactly_probability(profile, {0, 1});
  EXPECT_NEAR(both, 0.5, 1e-12);  // leaves X immediately with 0.5
  EXPECT_NEAR(up::visited_exactly_probability(profile, {0}), 0.5, 1e-12);
}

TEST(ScenarioSet, ValidationAndInvocation) {
  up::ScenarioSet set({"F", "G"});
  set.add("St-F-Ex", {0}, 0.6);
  set.add("St-F-G-Ex", {0, 1}, 0.4);
  set.validate_complete();
  EXPECT_NEAR(set.invocation_probability(0), 1.0, 1e-12);
  EXPECT_NEAR(set.invocation_probability(1), 0.4, 1e-12);
  EXPECT_EQ(set.scenarios().size(), 2u);
}

TEST(ScenarioSet, IncompleteTableRejected) {
  up::ScenarioSet set({"F"});
  set.add("St-F-Ex", {0}, 0.5);
  EXPECT_THROW(set.validate_complete(), ModelError);
}

TEST(ScenarioSet, RejectsBadScenario) {
  up::ScenarioSet set({"F"});
  EXPECT_THROW(set.add("bad", {}, 0.1), ModelError);
  EXPECT_THROW(set.add("bad", {7}, 0.1), ModelError);
  EXPECT_THROW(set.add("bad", {0}, 1.5), ModelError);
}

TEST(Profile, RejectsMalformedMatrices) {
  // Exit not absorbing.
  upa::linalg::Matrix p(3, 3);
  p(0, 1) = 1.0;
  p(1, 2) = 1.0;
  p(2, 1) = 1.0;  // Exit -> function: invalid
  EXPECT_THROW(up::OperationalProfile({"A"}, p), ModelError);
}
