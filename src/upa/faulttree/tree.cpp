#include "upa/faulttree/tree.hpp"

#include <set>

#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"

namespace upa::faulttree {

void FaultTree::check_node(NodeId node) const {
  UPA_REQUIRE(node < nodes_.size(), "node id out of range");
}

NodeId FaultTree::add_basic_event(std::string name, double probability) {
  UPA_REQUIRE(!name.empty(), "event name must not be empty");
  Node n;
  n.basic = true;
  n.name = std::move(name);
  n.probability = upa::common::clamp_probability(probability);
  n.event_index = basic_events_.size();
  nodes_.push_back(std::move(n));
  basic_events_.push_back(nodes_.size() - 1);
  return nodes_.size() - 1;
}

NodeId FaultTree::add_gate(GateKind kind, std::vector<NodeId> children,
                           std::size_t k) {
  UPA_REQUIRE(!children.empty(), "gate needs at least one child");
  for (NodeId c : children) check_node(c);
  if (kind == GateKind::kKofN) {
    UPA_REQUIRE(k >= 1 && k <= children.size(),
                "k-of-n gate requires 1 <= k <= n");
  }
  Node n;
  n.basic = false;
  n.kind = kind;
  n.k = kind == GateKind::kKofN ? k : 0;
  n.children = std::move(children);
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

void FaultTree::set_top(NodeId node) {
  check_node(node);
  top_ = node;
  top_set_ = true;
}

NodeId FaultTree::top() const {
  UPA_REQUIRE(!nodes_.empty(), "empty fault tree");
  return top_set_ ? top_ : nodes_.size() - 1;
}

bool FaultTree::is_basic(NodeId node) const {
  check_node(node);
  return nodes_[node].basic;
}

const std::string& FaultTree::event_name(NodeId node) const {
  UPA_REQUIRE(is_basic(node), "not a basic event");
  return nodes_[node].name;
}

double FaultTree::event_probability(NodeId node) const {
  UPA_REQUIRE(is_basic(node), "not a basic event");
  return nodes_[node].probability;
}

GateKind FaultTree::gate_kind(NodeId node) const {
  UPA_REQUIRE(!is_basic(node), "not a gate");
  return nodes_[node].kind;
}

std::size_t FaultTree::gate_threshold(NodeId node) const {
  UPA_REQUIRE(!is_basic(node), "not a gate");
  return nodes_[node].kind == GateKind::kKofN ? nodes_[node].k
                                              : nodes_[node].children.size();
}

const std::vector<NodeId>& FaultTree::gate_children(NodeId node) const {
  UPA_REQUIRE(!is_basic(node), "not a gate");
  return nodes_[node].children;
}

void FaultTree::set_event_probability(NodeId node, double probability) {
  UPA_REQUIRE(is_basic(node), "not a basic event");
  nodes_[node].probability = upa::common::clamp_probability(probability);
}

bool FaultTree::evaluate(const std::vector<bool>& event_failed,
                         NodeId node) const {
  check_node(node);
  UPA_REQUIRE(event_failed.size() == basic_events_.size(),
              "one state per basic event required");
  const Node& n = nodes_[node];
  if (n.basic) return event_failed[n.event_index];
  std::size_t failed = 0;
  for (NodeId c : n.children) {
    if (evaluate(event_failed, c)) ++failed;
  }
  switch (n.kind) {
    case GateKind::kAnd:
      return failed == n.children.size();
    case GateKind::kOr:
      return failed >= 1;
    case GateKind::kKofN:
      return failed >= n.k;
  }
  UPA_ASSERT(false);
  return false;
}

double top_event_probability_structural(const FaultTree& tree) {
  // Verify no event is referenced twice anywhere in the tree.
  std::set<NodeId> seen;
  std::vector<NodeId> stack{tree.top()};
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    if (tree.is_basic(node)) {
      UPA_REQUIRE(seen.insert(node).second,
                  "structural evaluation requires unshared events; use "
                  "top_event_probability (BDD) instead");
      continue;
    }
    for (NodeId c : tree.gate_children(node)) stack.push_back(c);
  }

  // Bottom-up probability computation; children independent by the check.
  struct Eval {
    const FaultTree& tree;
    double operator()(NodeId node) const {
      if (tree.is_basic(node)) return tree.event_probability(node);
      const auto& children = tree.gate_children(node);
      switch (tree.gate_kind(node)) {
        case GateKind::kAnd: {
          double p = 1.0;
          for (NodeId c : children) p *= (*this)(c);
          return p;
        }
        case GateKind::kOr: {
          double none = 1.0;
          for (NodeId c : children) none *= 1.0 - (*this)(c);
          return 1.0 - none;
        }
        case GateKind::kKofN: {
          std::vector<double> dp{1.0};
          for (NodeId c : children) {
            const double p = (*this)(c);
            std::vector<double> next(dp.size() + 1, 0.0);
            for (std::size_t j = 0; j < dp.size(); ++j) {
              next[j] += dp[j] * (1.0 - p);
              next[j + 1] += dp[j] * p;
            }
            dp = std::move(next);
          }
          double at_least = 0.0;
          for (std::size_t j = tree.gate_threshold(node); j < dp.size(); ++j) {
            at_least += dp[j];
          }
          return at_least;
        }
      }
      UPA_ASSERT(false);
      return 0.0;
    }
  };
  return Eval{tree}(tree.top());
}

}  // namespace upa::faulttree
