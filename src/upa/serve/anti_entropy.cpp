#include "upa/serve/anti_entropy.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

#include "upa/cache/eval_cache.hpp"
#include "upa/cache/persist.hpp"
#include "upa/cache/serialize.hpp"
#include "upa/common/error.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/json.hpp"

namespace upa::serve {

namespace {

std::atomic<AntiEntropyAgent*> g_agent{nullptr};

/// Splits "host:port"; throws ModelError on a malformed address.
void parse_peer(const std::string& peer, std::string* host,
                std::uint16_t* port) {
  const auto colon = peer.rfind(':');
  UPA_REQUIRE(colon != std::string::npos && colon > 0 &&
                  colon + 1 < peer.size(),
              "peer must be host:port, got '" + peer + "'");
  *host = peer.substr(0, colon);
  const long value = std::strtol(peer.c_str() + colon + 1, nullptr, 10);
  UPA_REQUIRE(value > 0 && value <= 65535,
              "peer port out of range in '" + peer + "'");
  *port = static_cast<std::uint16_t>(value);
}

}  // namespace

AntiEntropyAgent::AntiEntropyAgent(AntiEntropyConfig config)
    : config_(std::move(config)) {}

AntiEntropyAgent::~AntiEntropyAgent() { stop(); }

void AntiEntropyAgent::start() {
  if (loop_.joinable() || config_.peers.empty()) return;
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    stop_ = false;
  }
  loop_ = std::thread([this] {
    std::size_t next_peer = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(loop_mutex_);
        loop_cv_.wait_for(lock, config_.interval, [this] { return stop_; });
        if (stop_) return;
      }
      (void)run_round(next_peer++);
    }
  });
}

void AntiEntropyAgent::stop() {
  {
    std::lock_guard<std::mutex> lock(loop_mutex_);
    stop_ = true;
  }
  loop_cv_.notify_all();
  if (loop_.joinable()) loop_.join();
}

bool AntiEntropyAgent::run_round(std::size_t peer_index) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.rounds;
  }
  try {
    const std::string& peer = config_.peers[peer_index % config_.peers.size()];
    std::string host;
    std::uint16_t port = 0;
    parse_peer(peer, &host, &port);

    const std::string have_hex = cache::to_hex(
        cache::encode_digests(cache::digest_summary(cache::global())));

    Client client;
    client.connect(host, port, config_.connect_timeout_seconds);
    Json params = Json::object();
    params.set("op", Json(std::string("pull")));
    params.set("have_hex", Json(have_hex));
    const CallResult reply = client.call("cache", std::move(params));
    if (!reply.ok()) {
      throw common::ModelError("cache pull failed: " + reply.error_message);
    }
    const Json* result = reply.result();
    const Json* segment_hex =
        result != nullptr ? result->find("segment_hex") : nullptr;
    UPA_REQUIRE(segment_hex != nullptr && segment_hex->is_string(),
                "cache pull reply lacks segment_hex");

    const std::string blob = cache::from_hex(segment_hex->as_string());
    cache::ImportStats imported;
    if (cache::PersistentCache* tier = cache::global_persistence()) {
      imported = tier->import_blob(blob);
    } else {
      imported = cache::import_segment_blob(cache::global(), blob);
    }
    UPA_REQUIRE(!imported.segment_rejected,
                "peer delta rejected: version/tag mismatch");

    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pulls_ok;
    stats_.records_pulled += imported.records_seeded;
    return true;
  } catch (const std::exception&) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.pull_errors;
    return false;
  }
}

AntiEntropyStats AntiEntropyAgent::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

AntiEntropyAgent* global_anti_entropy() noexcept {
  return g_agent.load(std::memory_order_acquire);
}

void set_global_anti_entropy(AntiEntropyAgent* agent) noexcept {
  g_agent.store(agent, std::memory_order_release);
}

}  // namespace upa::serve
