#include "upa/faulttree/bdd.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::faulttree {
namespace {

std::uint64_t pair_key(BddRef a, BddRef b) {
  // Commutative operations: normalize the pair order.
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

BddManager::BddManager(std::size_t variable_count)
    : variable_count_(variable_count) {
  UPA_REQUIRE(variable_count >= 1, "need at least one variable");
  UPA_REQUIRE(variable_count < (1u << 24), "too many variables");
  // Terminals: index 0 = FALSE, index 1 = TRUE.
  nodes_.push_back({static_cast<std::uint32_t>(variable_count_), 0, 0});
  nodes_.push_back({static_cast<std::uint32_t>(variable_count_), 1, 1});
}

BddRef BddManager::make_node(std::uint32_t var, BddRef low, BddRef high) {
  if (low == high) return low;  // reduction rule
  const NodeKey key{var, low, high};
  if (const auto it = unique_.find(key); it != unique_.end()) {
    return it->second;
  }
  nodes_.push_back({var, low, high});
  const auto ref = static_cast<BddRef>(nodes_.size() - 1);
  unique_.emplace(key, ref);
  return ref;
}

BddRef BddManager::variable(std::size_t var) {
  UPA_REQUIRE(var < variable_count_, "variable index out of range");
  return make_node(static_cast<std::uint32_t>(var), zero(), one());
}

BddRef BddManager::apply(BddRef a, BddRef b, bool is_and) {
  // Terminal short-circuits.
  if (is_and) {
    if (a == zero() || b == zero()) return zero();
    if (a == one()) return b;
    if (b == one()) return a;
    if (a == b) return a;
  } else {
    if (a == one() || b == one()) return one();
    if (a == zero()) return b;
    if (b == zero()) return a;
    if (a == b) return a;
  }
  auto& cache = is_and ? and_cache_ : or_cache_;
  const std::uint64_t key = pair_key(a, b);
  if (const auto it = cache.find(key); it != cache.end()) return it->second;

  const Node na = nodes_[a];
  const Node nb = nodes_[b];
  const std::uint32_t var = std::min(na.var, nb.var);
  const BddRef a_low = na.var == var ? na.low : a;
  const BddRef a_high = na.var == var ? na.high : a;
  const BddRef b_low = nb.var == var ? nb.low : b;
  const BddRef b_high = nb.var == var ? nb.high : b;

  const BddRef low = apply(a_low, b_low, is_and);
  const BddRef high = apply(a_high, b_high, is_and);
  const BddRef result = make_node(var, low, high);
  cache.emplace(key, result);
  return result;
}

BddRef BddManager::apply_and(BddRef a, BddRef b) { return apply(a, b, true); }

BddRef BddManager::apply_or(BddRef a, BddRef b) { return apply(a, b, false); }

BddRef BddManager::negate(BddRef a) {
  if (a == zero()) return one();
  if (a == one()) return zero();
  if (const auto it = not_cache_.find(a); it != not_cache_.end()) {
    return it->second;
  }
  const Node n = nodes_[a];
  const BddRef result = make_node(n.var, negate(n.low), negate(n.high));
  not_cache_.emplace(a, result);
  return result;
}

BddRef BddManager::at_least(std::size_t k, const std::vector<BddRef>& fns) {
  UPA_REQUIRE(k >= 1 && k <= fns.size(), "at_least requires 1 <= k <= n");
  // dp[j] = BDD of "at least j of the functions seen so far are true",
  // updated one function at a time; dp[0] = TRUE.
  std::vector<BddRef> dp(k + 1, zero());
  dp[0] = one();
  for (const BddRef f : fns) {
    // Update from high j to low so each f is counted once.
    for (std::size_t j = k; j >= 1; --j) {
      dp[j] = apply_or(dp[j], apply_and(dp[j - 1], f));
    }
  }
  return dp[k];
}

double BddManager::probability(BddRef f,
                               const std::vector<double>& var_probability) {
  UPA_REQUIRE(var_probability.size() == variable_count_,
              "one probability per variable required");
  std::unordered_map<BddRef, double> memo;
  memo.emplace(zero(), 0.0);
  memo.emplace(one(), 1.0);

  // Iterative post-order to avoid recursion depth limits.
  std::vector<BddRef> stack{f};
  while (!stack.empty()) {
    const BddRef cur = stack.back();
    if (memo.contains(cur)) {
      stack.pop_back();
      continue;
    }
    const Node n = nodes_[cur];
    const bool low_done = memo.contains(n.low);
    const bool high_done = memo.contains(n.high);
    if (low_done && high_done) {
      const double p = var_probability[n.var];
      memo.emplace(cur, (1.0 - p) * memo.at(n.low) + p * memo.at(n.high));
      stack.pop_back();
    } else {
      if (!low_done) stack.push_back(n.low);
      if (!high_done) stack.push_back(n.high);
    }
  }
  return memo.at(f);
}

double BddManager::satisfying_count(BddRef f) {
  const std::vector<double> half(variable_count_, 0.5);
  return probability(f, half) *
         std::pow(2.0, static_cast<double>(variable_count_));
}

CompiledTree compile_to_bdd(const FaultTree& tree) {
  CompiledTree compiled{BddManager(tree.basic_event_count()), 0};
  BddManager& mgr = compiled.manager;

  // Memoized bottom-up compilation over the DAG of tree nodes.
  std::unordered_map<NodeId, BddRef> memo;
  struct Compile {
    const FaultTree& tree;
    BddManager& mgr;
    std::unordered_map<NodeId, BddRef>& memo;

    BddRef operator()(NodeId node) const {
      if (const auto it = memo.find(node); it != memo.end()) {
        return it->second;
      }
      BddRef result;
      if (tree.is_basic(node)) {
        // Variable index = position among basic events.
        std::size_t index = 0;
        for (NodeId e : tree.basic_events()) {
          if (e == node) break;
          ++index;
        }
        result = mgr.variable(index);
      } else {
        std::vector<BddRef> children;
        children.reserve(tree.gate_children(node).size());
        for (NodeId c : tree.gate_children(node)) {
          children.push_back((*this)(c));
        }
        switch (tree.gate_kind(node)) {
          case GateKind::kAnd: {
            result = mgr.one();
            for (BddRef c : children) result = mgr.apply_and(result, c);
            break;
          }
          case GateKind::kOr: {
            result = mgr.zero();
            for (BddRef c : children) result = mgr.apply_or(result, c);
            break;
          }
          case GateKind::kKofN:
            result = mgr.at_least(tree.gate_threshold(node), children);
            break;
        }
      }
      memo.emplace(node, result);
      return result;
    }
  };
  compiled.top = Compile{tree, mgr, memo}(tree.top());
  return compiled;
}

double top_event_probability(const FaultTree& tree) {
  CompiledTree compiled = compile_to_bdd(tree);
  std::vector<double> probabilities;
  probabilities.reserve(tree.basic_event_count());
  for (NodeId e : tree.basic_events()) {
    probabilities.push_back(tree.event_probability(e));
  }
  return compiled.manager.probability(compiled.top, probabilities);
}

}  // namespace upa::faulttree
