#include "upa/rbd/block.hpp"

#include <algorithm>
#include <set>

#include "upa/common/error.hpp"
#include "upa/rbd/block_node.hpp"

namespace upa::rbd {

Block BlockAccess::create(BlockKind kind, std::string name, std::size_t k,
                          std::vector<Block> children) {
  auto node = std::make_shared<Block::Node>();
  node->kind = kind;
  node->name = std::move(name);
  node->k = k;
  node->children = std::move(children);
  return BlockAccess::make(std::move(node));
}

namespace {

Block make_node(BlockKind kind, std::string name, std::size_t k,
                std::vector<Block> children) {
  return BlockAccess::create(kind, std::move(name), k, std::move(children));
}

void collect_names(const Block& block, std::vector<std::string>& out) {
  const auto& node = BlockAccess::node(block);
  if (node.kind == BlockKind::kComponent) {
    out.push_back(node.name);
    return;
  }
  for (const Block& child : node.children) collect_names(child, out);
}

}  // namespace

Block Block::component(std::string name) {
  UPA_REQUIRE(!name.empty(), "component name must not be empty");
  return make_node(BlockKind::kComponent, std::move(name), 0, {});
}

Block Block::series(std::vector<Block> children) {
  UPA_REQUIRE(!children.empty(), "series needs at least one child");
  return make_node(BlockKind::kSeries, {}, 0, std::move(children));
}

Block Block::parallel(std::vector<Block> children) {
  UPA_REQUIRE(!children.empty(), "parallel needs at least one child");
  return make_node(BlockKind::kParallel, {}, 0, std::move(children));
}

Block Block::k_of_n(std::size_t k, std::vector<Block> children) {
  UPA_REQUIRE(k >= 1 && k <= children.size(),
              "k-of-n requires 1 <= k <= n children");
  return make_node(BlockKind::kKofN, {}, k, std::move(children));
}

Block Block::replicated(const std::string& name, std::size_t count) {
  UPA_REQUIRE(count >= 1, "replication count must be at least 1");
  std::vector<Block> replicas;
  replicas.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    replicas.push_back(component(name + "#" + std::to_string(i)));
  }
  return parallel(std::move(replicas));
}

BlockKind Block::kind() const noexcept { return node_->kind; }

const std::string& Block::component_name() const {
  UPA_REQUIRE(node_->kind == BlockKind::kComponent,
              "component_name on a non-leaf block");
  return node_->name;
}

std::size_t Block::threshold() const {
  UPA_REQUIRE(node_->kind == BlockKind::kKofN, "threshold on a non-k-of-n");
  return node_->k;
}

const std::vector<Block>& Block::children() const { return node_->children; }

std::vector<std::string> Block::component_names() const {
  std::vector<std::string> names;
  collect_names(*this, names);
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

bool Block::has_repeated_components() const {
  std::vector<std::string> names;
  collect_names(*this, names);
  std::set<std::string> distinct(names.begin(), names.end());
  return distinct.size() != names.size();
}

bool Block::evaluate_states(const std::map<std::string, bool>& states) const {
  const auto& node = BlockAccess::node(*this);
  switch (node.kind) {
    case BlockKind::kComponent: {
      const auto it = states.find(node.name);
      UPA_REQUIRE(it != states.end(),
                  "no state provided for component " + node.name);
      return it->second;
    }
    case BlockKind::kSeries:
      return std::all_of(node.children.begin(), node.children.end(),
                         [&](const Block& child) {
                           return child.evaluate_states(states);
                         });
    case BlockKind::kParallel:
      return std::any_of(node.children.begin(), node.children.end(),
                         [&](const Block& child) {
                           return child.evaluate_states(states);
                         });
    case BlockKind::kKofN: {
      std::size_t up = 0;
      for (const Block& child : node.children) {
        if (child.evaluate_states(states)) ++up;
      }
      return up >= node.k;
    }
  }
  UPA_ASSERT(false);
  return false;
}

std::string Block::to_string() const {
  const auto& node = BlockAccess::node(*this);
  switch (node.kind) {
    case BlockKind::kComponent:
      return node.name;
    case BlockKind::kSeries:
    case BlockKind::kParallel:
    case BlockKind::kKofN: {
      std::string out = node.kind == BlockKind::kSeries     ? "series("
                        : node.kind == BlockKind::kParallel ? "parallel("
                        : std::to_string(node.k) + "-of-n(";
      for (std::size_t i = 0; i < node.children.size(); ++i) {
        if (i != 0) out += ", ";
        out += node.children[i].to_string();
      }
      return out + ")";
    }
  }
  UPA_ASSERT(false);
  return {};
}

}  // namespace upa::rbd
