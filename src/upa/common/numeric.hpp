#pragma once
// Small numeric utilities shared by every module: tolerant comparisons,
// probability validation, compensated summation, and log-domain
// combinatorics (needed by the M/M/c/K and birth-death closed forms, whose
// naive factorial evaluation overflows for moderate populations).

#include <cmath>
#include <span>
#include <vector>

namespace upa::common {

/// Default absolute/relative tolerance used across the library when
/// comparing probabilities and availabilities.
inline constexpr double kDefaultTolerance = 1e-12;

/// True when |a - b| <= atol + rtol * max(|a|, |b|).
[[nodiscard]] bool close(double a, double b, double rtol = 1e-9,
                         double atol = 1e-12) noexcept;

/// True when p is a valid probability within tolerance (clamps tiny
/// negative round-off but rejects genuinely out-of-range values).
[[nodiscard]] bool is_probability(double p, double tol = 1e-9) noexcept;

/// Clamps a value known to be a probability up to round-off into [0, 1].
/// Throws ModelError when the value is out of range beyond `tol`.
[[nodiscard]] double clamp_probability(double p, double tol = 1e-9);

/// Kahan-compensated sum of a range. Deterministic and accurate for the
/// long weighted sums appearing in steady-state normalization.
[[nodiscard]] double kahan_sum(std::span<const double> values) noexcept;

/// ln(n!) via lgamma; exact-enough for all chain sizes we build.
[[nodiscard]] double log_factorial(unsigned n) noexcept;

/// n! as a double; throws ModelError when the result would overflow.
[[nodiscard]] double factorial(unsigned n);

/// Binomial coefficient C(n, k) as a double (log-domain internally).
[[nodiscard]] double binomial(unsigned n, unsigned k) noexcept;

/// Probability that at least k of n independent components, each available
/// with probability p, are available (k-out-of-n:G structure).
[[nodiscard]] double k_out_of_n(unsigned k, unsigned n, double p);

/// Normalizes `weights` in place so they sum to one.
/// Throws ModelError when the sum is not positive.
void normalize(std::vector<double>& weights);

/// Converts an availability into annual downtime hours (8760 h/year).
[[nodiscard]] constexpr double downtime_hours_per_year(
    double availability) noexcept {
  return (1.0 - availability) * 8760.0;
}

/// Converts an availability into annual downtime minutes.
[[nodiscard]] constexpr double downtime_minutes_per_year(
    double availability) noexcept {
  return (1.0 - availability) * 8760.0 * 60.0;
}

}  // namespace upa::common
