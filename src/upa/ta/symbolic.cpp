#include "upa/ta/symbolic.hpp"

#include "upa/common/error.hpp"
#include "upa/ta/functions.hpp"
#include "upa/ta/services.hpp"

namespace upa::ta {

core::Expr user_availability_expr(UserClass uc, const TaParameters& p) {
  using core::Expr;
  const profile::ScenarioSet table = scenario_table(uc);

  // Accumulate the scenario masses exactly as user_availability_eq10.
  double pi_home_only = 0.0;
  double pi_browse = 0.0;
  double pi_search_no_pay = 0.0;
  double pi_pay = 0.0;
  for (const profile::ScenarioClass& sc : table.scenarios()) {
    switch (category_of(sc)) {
      case ScenarioCategory::kSC1:
        if (sc.functions.contains(function_index(TaFunction::kBrowse))) {
          pi_browse += sc.probability;
        } else {
          pi_home_only += sc.probability;
        }
        break;
      case ScenarioCategory::kSC2:
      case ScenarioCategory::kSC3:
        pi_search_no_pay += sc.probability;
        break;
      case ScenarioCategory::kSC4:
        pi_pay += sc.probability;
        break;
    }
  }

  const Expr browse_bracket =
      Expr::constant(p.q23) +
      Expr::param("AAS") *
          (Expr::constant(p.q24 * p.q45) +
           Expr::constant(p.q24 * p.q47) * Expr::param("ADS"));
  const Expr search_factor =
      Expr::param("AAS") * Expr::param("ADS") * Expr::param("AFlight") *
      Expr::param("AHotel") * Expr::param("ACar");

  return Expr::param("Anet") * Expr::param("ALAN") * Expr::param("AWS") *
         (Expr::constant(pi_home_only) +
          Expr::constant(pi_browse) * browse_bracket +
          search_factor * (Expr::constant(pi_search_no_pay) +
                           Expr::constant(pi_pay) * Expr::param("APS")));
}

std::map<std::string, double> user_availability_gradient(
    UserClass uc, const TaParameters& p) {
  const core::Expr expr = user_availability_expr(uc, p);
  const core::Params at = service_params(compute_services(p));
  return core::gradient(expr, at);
}

}  // namespace upa::ta
