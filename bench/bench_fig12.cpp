// Regenerates Figure 12: web-service unavailability vs N_W = 1..10 under
// IMPERFECT coverage (c = 0.98, beta = 12/h), same (lambda, alpha) grid
// as Figure 11. The paper's headline effect: the unavailability valley
// reverses once uncovered failures dominate ("the trend is reversed ...
// for N_W values higher than 4").
//
// The grid is evaluated once through exec::parallel_sweep; the valley
// annotation scans the precomputed series instead of re-solving each
// chain a second time.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "bench_util.hpp"
#include "upa/cache/eval_cache.hpp"
#include "upa/core/web_farm.hpp"
#include "upa/exec/parallel.hpp"

namespace {

namespace uc = upa::core;
namespace cm = upa::common;

constexpr double kAlphas[] = {50.0, 100.0, 150.0};
constexpr double kLambdas[] = {1e-2, 1e-3, 1e-4};

double unavailability(std::size_t n, double lambda, double alpha) {
  uc::WebFarmParams farm{n, lambda, 1.0, 0.98, 12.0};
  uc::WebQueueParams queue{alpha, 100.0, 10};
  return 1.0 - uc::web_service_availability_imperfect(farm, queue);
}

struct GridPoint {
  double alpha;
  double lambda;
  std::size_t n;
};

std::vector<GridPoint> build_grid() {
  std::vector<GridPoint> grid;
  for (double alpha : kAlphas)
    for (double lambda : kLambdas)
      for (std::size_t n = 1; n <= 10; ++n) grid.push_back({alpha, lambda, n});
  return grid;
}

void print_fig12() {
  upa::bench::print_header(
      "Figure 12",
      "Web service unavailability (imperfect coverage, c=0.98, beta=12/h)\n"
      "vs N_W. Expected shape: decrease then REVERSAL (valley marked *).");
  const std::vector<GridPoint> grid = build_grid();
  const std::vector<double> ua = upa::exec::parallel_sweep(
      grid, [](const GridPoint& g) {
        return unavailability(g.n, g.lambda, g.alpha);
      });
  const auto at = [&](std::size_t ai, std::size_t li, std::size_t n) {
    return ua[(ai * 3 + li) * 10 + (n - 1)];
  };
  for (std::size_t ai = 0; ai < 3; ++ai) {
    const double alpha = kAlphas[ai];
    cm::Table t({"N_W", "lambda=1e-2/h", "lambda=1e-3/h", "lambda=1e-4/h"});
    t.set_title("UA(Web service), alpha = " + cm::fmt(alpha, 3) +
                " req/s (rho = " + cm::fmt(alpha / 100.0, 3) + ")");
    // Locate the valley of each precomputed series to annotate rows.
    std::vector<std::size_t> valley;
    for (std::size_t li = 0; li < 3; ++li) {
      std::size_t best = 1;
      double best_ua = at(ai, li, 1);
      for (std::size_t n = 2; n <= 10; ++n) {
        const double v = at(ai, li, n);
        if (v < best_ua) {
          best_ua = v;
          best = n;
        }
      }
      valley.push_back(best);
    }
    for (std::size_t n = 1; n <= 10; ++n) {
      std::vector<std::string> row{std::to_string(n)};
      for (std::size_t li = 0; li < 3; ++li) {
        std::string cell = cm::fmt_sci(at(ai, li, n), 3);
        if (valley[li] == n) cell += " *";
        row.push_back(std::move(cell));
      }
      t.add_row(std::move(row));
    }
    std::cout << t << "\n";
  }
  std::cout << "* = minimum of the series (the coverage-induced valley; the\n"
               "paper reads the reversal at N_W > 4 off its log-scale plot;\n"
               "the exact location depends on lambda and alpha).\n\n";
}

// The Figure 12 analogue of bench_fig11's cache section: the imperfect-
// coverage grid (2N_W+1-state chains, coverage-aware deadline measure)
// re-evaluated kCacheReps times cold vs warm. Results must match bit for
// bit; numbers land in the shared BENCH_cache.json.
void bench_cache_fig12() {
  constexpr std::size_t kCacheReps = 20;
  const std::vector<GridPoint> grid = build_grid();
  constexpr double kDeadlines[] = {0.05, 0.1};  // response deadlines [s]
  const auto evaluate = [&grid, &kDeadlines] {
    std::vector<double> out;
    out.reserve(3 * kCacheReps * grid.size());
    for (std::size_t rep = 0; rep < kCacheReps; ++rep) {
      for (const GridPoint& g : grid) {
        uc::WebFarmParams farm{g.n, g.lambda, 1.0, 0.98, 12.0};
        uc::WebQueueParams queue{g.alpha, 100.0, 10};
        out.push_back(uc::web_service_availability_imperfect(farm, queue));
        for (double deadline : kDeadlines) {
          out.push_back(uc::web_service_availability_imperfect_with_deadline(
              farm, queue, deadline));
        }
      }
    }
    return out;
  };

  // Warm-from-disk tier (see bench_fig11): when --cache-dir attached a
  // persistence directory its segments replay lazily on first touch;
  // time that pass before clear() discards it, reading the persist
  // stats after the pass so lazy disk-hit serves are counted.
  const bool have_persist = upa::cache::global_persistence() != nullptr;
  std::vector<double> disk;
  double disk_s = 0.0;
  upa::cache::CacheStats disk_stats;
  upa::cache::PersistStats persist;
  if (have_persist) {
    upa::cache::global().reset_stats();
    upa::cache::ScopedEnable on(true);
    disk_s = upa::bench::wall_seconds([&] { disk = evaluate(); });
    disk_stats = upa::cache::global().stats();
    persist = upa::cache::global_persistence()->stats();
  }

  upa::cache::global().clear();
  std::vector<double> cold;
  std::vector<double> warm;
  double cold_s = 0.0;
  double warm_s = 0.0;
  {
    upa::cache::ScopedEnable off(false);
    cold_s = upa::bench::wall_seconds([&] { cold = evaluate(); });
  }
  {
    upa::cache::ScopedEnable on(true);
    warm_s = upa::bench::wall_seconds([&] { warm = evaluate(); });
  }
  const upa::cache::CacheStats stats = upa::cache::global().stats();
  const bool identical = cold == warm;

  std::cout << "Evaluation-cache timing (" << kCacheReps << "x the "
            << grid.size() << "-point Figure 12 grid, 3 measures/point):\n"
            << "  cold wall seconds   : " << cm::fmt(cold_s, 3) << "\n"
            << "  warm wall seconds   : " << cm::fmt(warm_s, 3) << "\n"
            << "  speedup             : " << cm::fmt(cold_s / warm_s, 2)
            << "x\n"
            << "  hit rate            : "
            << cm::fmt(100.0 * stats.hit_rate(), 4) << "% of "
            << stats.lookups() << " lookups\n"
            << "  results identical   : " << (identical ? "yes" : "NO!")
            << "\n\n";

  upa::bench::write_bench_json(
      "BENCH_cache.json", "fig12_grid",
      {{"reps", double(kCacheReps)},
       {"grid_points", double(grid.size())},
       {"cold_wall_seconds", cold_s},
       {"warm_wall_seconds", warm_s},
       {"speedup", cold_s / warm_s},
       {"hit_rate", stats.hit_rate()},
       {"lookups", double(stats.lookups())},
       {"results_identical", identical ? 1.0 : 0.0}});

  if (have_persist) {
    const bool disk_identical = disk == cold;
    std::cout << "Warm-from-disk timing (same workload, shards pre-warmed "
                 "from segments):\n"
              << "  records replayed    : " << persist.records_replayed
              << " from " << persist.segments_loaded << " segment(s)\n"
              << "  disk wall seconds   : " << cm::fmt(disk_s, 3) << "\n"
              << "  speedup vs cold     : " << cm::fmt(cold_s / disk_s, 2)
              << "x\n"
              << "  hit rate            : "
              << cm::fmt(100.0 * disk_stats.hit_rate(), 4) << "% of "
              << disk_stats.lookups() << " lookups\n"
              << "  results identical   : " << (disk_identical ? "yes" : "NO!")
              << "\n\n";
    upa::bench::write_bench_json(
        "BENCH_cache.json", "fig12_disk",
        {{"segments_loaded", double(persist.segments_loaded)},
         {"records_replayed", double(persist.records_replayed)},
         {"records_skipped_crc", double(persist.records_skipped_crc)},
         {"disk_wall_seconds", disk_s},
         {"cold_wall_seconds", cold_s},
         {"speedup", cold_s / disk_s},
         {"hit_rate", disk_stats.hit_rate()},
         {"lookups", double(disk_stats.lookups())},
         {"results_identical", disk_identical ? 1.0 : 0.0}});
  }
}

void print_all() {
  print_fig12();
  bench_cache_fig12();
}

void bm_fig12_full_grid(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (double lambda : kLambdas) {
      for (double alpha : kAlphas) {
        for (std::size_t n = 1; n <= 10; ++n) {
          acc += unavailability(n, lambda, alpha);
        }
      }
    }
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(bm_fig12_full_grid);

void bm_fig12_parallel_sweep(benchmark::State& state) {
  const std::vector<GridPoint> grid = build_grid();
  for (auto _ : state) {
    benchmark::DoNotOptimize(upa::exec::parallel_sweep(
        grid, [](const GridPoint& g) {
          return unavailability(g.n, g.lambda, g.alpha);
        }));
  }
}
BENCHMARK(bm_fig12_parallel_sweep);

void bm_imperfect_chain_steady_state(benchmark::State& state) {
  uc::WebFarmParams farm{static_cast<std::size_t>(state.range(0)), 1e-3,
                         1.0, 0.98, 12.0};
  const auto chain = uc::imperfect_coverage_chain(farm);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.chain.steady_state());
  }
}
BENCHMARK(bm_imperfect_chain_steady_state)->Arg(4)->Arg(10)->Arg(50);

}  // namespace

UPA_BENCH_MAIN(print_all)
