#include "upa/inject/campaign.hpp"

#include <utility>

#include "upa/common/csv.hpp"
#include "upa/common/table.hpp"

namespace upa::inject {
namespace {

common::CsvWriter build_csv(const std::vector<CampaignEntry>& entries) {
  common::CsvWriter writer({"plan", "availability_mean", "ci_half_width",
                            "ci_low", "ci_high", "delta_vs_baseline",
                            "observed_web_availability",
                            "mean_retries_per_session",
                            "abandonment_fraction"});
  for (const CampaignEntry& e : entries) {
    writer.add_row({e.name, common::fmt(e.perceived_availability.mean, 10),
                    common::fmt(e.perceived_availability.half_width, 10),
                    common::fmt(e.perceived_availability.low, 10),
                    common::fmt(e.perceived_availability.high, 10),
                    common::fmt(e.delta_vs_baseline, 10),
                    common::fmt(e.observed_web_service_availability, 10),
                    common::fmt(e.mean_retries_per_session, 10),
                    common::fmt(e.abandonment_fraction, 10)});
  }
  return writer;
}

CampaignEntry measure(std::string name, ta::UserClass uclass,
                      const ta::TaParameters& params,
                      ta::EndToEndOptions options, FaultPlan plan) {
  options.faults = std::move(plan);
  const ta::EndToEndResult r =
      ta::simulate_end_to_end(uclass, params, options);
  CampaignEntry entry;
  entry.name = std::move(name);
  entry.perceived_availability = r.perceived_availability;
  entry.observed_web_service_availability =
      r.observed_web_service_availability;
  entry.mean_retries_per_session = r.mean_retries_per_session;
  entry.abandonment_fraction = r.abandonment_fraction;
  return entry;
}

}  // namespace

std::string CampaignResult::csv() const { return build_csv(entries).str(); }

void CampaignResult::write_csv(const std::string& path) const {
  build_csv(entries).write_file(path);
}

CampaignResult run_campaign(ta::UserClass uclass,
                            const ta::TaParameters& params,
                            const ta::EndToEndOptions& base_options,
                            const std::vector<CampaignPlan>& plans) {
  CampaignResult result;
  result.entries.reserve(plans.size() + 1);
  result.entries.push_back(
      measure("baseline", uclass, params, base_options, FaultPlan{}));
  const double baseline_mean =
      result.entries.front().perceived_availability.mean;
  for (const CampaignPlan& p : plans) {
    CampaignEntry entry =
        measure(p.name, uclass, params, base_options, p.plan);
    entry.delta_vs_baseline =
        entry.perceived_availability.mean - baseline_mean;
    result.entries.push_back(std::move(entry));
  }
  return result;
}

}  // namespace upa::inject
