#pragma once
// Resource-level LAN availability models. The paper treats A_LAN as a
// given constant and points to hierarchical LAN models (Hariri/Mutlu
// 1991; Kanoun/Powell 1991, the Delta-4 bus/ring study) for computing
// it. This module provides those models so A_LAN can be *derived* from
// component data instead of assumed:
//
//   bus topology : every station taps one shared medium; the network
//                  serves the TA servers when the medium and all the
//                  required taps are up. Redundant media are parallel.
//   ring topology: stations are connected in a cycle of links; the ring
//                  (with a wrap capability, as in FDDI/Delta-4) tolerates
//                  any single link failure, i.e. it is up when at most
//                  one link is down and all station adapters are up.

#include <cstddef>

#include "upa/rbd/block.hpp"

namespace upa::ta {

/// Component data for the LAN models.
struct LanComponentParams {
  double medium = 0.9999;   ///< availability of one bus medium / cable
  double tap = 0.9995;      ///< availability of one bus tap / adapter
  std::size_t stations = 4; ///< servers attached (web, app, db, gateway)
  std::size_t redundant_media = 2;  ///< parallel buses (bus model)
};

/// Availability of a (possibly redundant) bus LAN: all station taps in
/// series with the parallel media group.
[[nodiscard]] double bus_lan_availability(const LanComponentParams& p);

/// Availability of a single-wrap ring of `stations` links and adapters:
/// all adapters up AND at most one link down.
[[nodiscard]] double ring_lan_availability(double link_availability,
                                           double adapter_availability,
                                           std::size_t stations);

/// The bus model as an explicit RBD (for cut sets / importance).
[[nodiscard]] rbd::Block bus_lan_rbd(const LanComponentParams& p,
                                     rbd::ParamMap& availabilities);

}  // namespace upa::ta
