#pragma once
// CSV emission so benchmark harness outputs can be post-processed (plots,
// regression dashboards) without re-running the models.

#include <string>
#include <vector>

namespace upa::common {

/// Accumulates rows and writes RFC-4180 CSV (quotes cells containing
/// separators, quotes, or CR/LF; embedded quotes are doubled). Used by
/// bench binaries behind --csv flags and the obs metric exporters.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Renders the full document (header + rows).
  [[nodiscard]] std::string str() const;

  /// Writes to a file; throws ModelError on I/O failure.
  void write_file(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses RFC-4180 CSV text back into rows of cells: quoted fields may
/// contain commas, doubled quotes, and embedded line breaks; rows end at
/// LF or CRLF. The exact inverse of CsvWriter::str() (round-trip tested),
/// so exporter output can be re-read by tools and tests. Throws
/// ModelError on malformed input (stray quote inside a quoted field,
/// unterminated quote at end of input).
[[nodiscard]] std::vector<std::vector<std::string>> parse_csv(
    const std::string& text);

}  // namespace upa::common
