#include "upa/queueing/mg1.hpp"

#include <cmath>

#include "upa/common/error.hpp"

namespace upa::queueing {

Mg1Metrics mg1_metrics(double alpha, const ServiceMoments& service) {
  UPA_REQUIRE(std::isfinite(alpha) && alpha > 0.0,
              "arrival rate must be positive");
  UPA_REQUIRE(std::isfinite(service.mean) && service.mean > 0.0,
              "mean service time must be positive");
  UPA_REQUIRE(std::isfinite(service.scv) && service.scv >= 0.0,
              "squared coefficient of variation must be non-negative");
  Mg1Metrics m;
  m.rho = alpha * service.mean;
  UPA_REQUIRE(m.rho < 1.0, "M/G/1 requires rho < 1 for stability");
  // Pollaczek-Khinchine.
  m.mean_in_queue =
      m.rho * m.rho * (1.0 + service.scv) / (2.0 * (1.0 - m.rho));
  m.mean_in_system = m.mean_in_queue + m.rho;
  m.mean_wait = m.mean_in_queue / alpha;
  m.mean_response = m.mean_wait + service.mean;
  return m;
}

ServiceMoments exponential_service(double rate) {
  UPA_REQUIRE(rate > 0.0, "service rate must be positive");
  return {1.0 / rate, 1.0};
}

ServiceMoments deterministic_service(double time) {
  UPA_REQUIRE(time > 0.0, "service time must be positive");
  return {time, 0.0};
}

ServiceMoments erlang_service(unsigned phases, double rate) {
  UPA_REQUIRE(phases >= 1, "Erlang needs at least one phase");
  UPA_REQUIRE(rate > 0.0, "phase rate must be positive");
  return {static_cast<double>(phases) / rate, 1.0 / phases};
}

}  // namespace upa::queueing
