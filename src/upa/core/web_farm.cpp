#include "upa/core/web_farm.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <utility>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/error.hpp"
#include "upa/common/numeric.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/queueing/response_time.hpp"

namespace upa::core {
namespace {

void check_farm(const WebFarmParams& farm, bool imperfect) {
  UPA_REQUIRE(farm.servers >= 1, "farm needs at least one server");
  UPA_REQUIRE(std::isfinite(farm.failure_rate) &&
                  std::isfinite(farm.repair_rate) &&
                  farm.failure_rate > 0.0 && farm.repair_rate > 0.0,
              "failure and repair rates must be positive and finite");
  if (imperfect) {
    UPA_REQUIRE(std::isfinite(farm.coverage) && farm.coverage >= 0.0 &&
                    farm.coverage <= 1.0,
                "coverage must be a probability");
    UPA_REQUIRE(std::isfinite(farm.reconfiguration_rate) &&
                    farm.reconfiguration_rate > 0.0,
                "reconfiguration rate must be positive and finite");
  }
}

void check_queue(const WebQueueParams& queue) {
  UPA_REQUIRE(queue.arrival_rate > 0.0 && queue.service_rate > 0.0,
              "queue rates must be positive");
  UPA_REQUIRE(queue.buffer >= 1, "buffer must hold at least one request");
}

/// p_K(i) per operational-server count i = 1..N_W (paper eqs. 1/3).
std::vector<double> loss_by_servers(const WebFarmParams& farm,
                                    const WebQueueParams& queue) {
  std::vector<double> pk(farm.servers + 1, 1.0);  // pk[0] unused (down)
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    // The shared buffer never shrinks below the server count in the
    // M/M/i/K formula; the paper keeps K fixed, so cap i at K.
    UPA_REQUIRE(i <= queue.buffer,
                "more operational servers than buffer slots (K < N_W)");
    pk[i] = queueing::mmck_loss_probability(queue.arrival_rate,
                                            queue.service_rate, i,
                                            queue.buffer);
  }
  return pk;
}

/// Canonical cache-key content of the farm/queue inputs. The imperfect
/// variants add coverage/beta; the perfect formulas never read them, so
/// their keys omit both (perfect results are shared across coverage
/// settings).
cache::KeyBuilder availability_key(const char* solver_id,
                                   const WebFarmParams& farm,
                                   const WebQueueParams& queue,
                                   bool imperfect) {
  cache::KeyBuilder kb(solver_id, 1);
  kb.add(static_cast<std::uint64_t>(farm.servers))
      .add(farm.failure_rate)
      .add(farm.repair_rate);
  if (imperfect) kb.add(farm.coverage).add(farm.reconfiguration_rate);
  kb.add(queue.arrival_rate)
      .add(queue.service_rate)
      .add(static_cast<std::uint64_t>(queue.buffer));
  return kb;
}

}  // namespace

std::vector<double> perfect_coverage_distribution(const WebFarmParams& farm) {
  check_farm(farm, false);
  // pi_i = (1/i!) (mu/lambda)^i pi_0, computed in log domain.
  const double log_ratio = std::log(farm.repair_rate / farm.failure_rate);
  std::vector<double> log_pi(farm.servers + 1, 0.0);
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    log_pi[i] = static_cast<double>(i) * log_ratio -
                upa::common::log_factorial(static_cast<unsigned>(i));
  }
  const double max_log = *std::max_element(log_pi.begin(), log_pi.end());
  std::vector<double> pi(farm.servers + 1);
  for (std::size_t i = 0; i <= farm.servers; ++i) {
    pi[i] = std::exp(log_pi[i] - max_log);
  }
  upa::common::normalize(pi);
  return pi;
}

ImperfectDistribution imperfect_coverage_distribution(
    const WebFarmParams& farm) {
  check_farm(farm, true);
  if (farm.coverage == 1.0) {
    // Every y-state is unreachable, so the operational marginal IS the
    // perfect-coverage distribution. Delegating (instead of running the
    // straight-sum normalization below with zero manual mass) makes the
    // equality bit-for-bit: perfect_coverage_distribution normalizes
    // with a compensated Kahan sum, and the two code paths would
    // otherwise differ in the last ulp.
    ImperfectDistribution dist;
    dist.operational = perfect_coverage_distribution(farm);
    dist.manual.assign(farm.servers + 1, 0.0);
    return dist;
  }
  // Operational states keep the perfect-coverage product form (the cut
  // between {>= i} and {< i} is crossed only by the total failure flow
  // i*lambda*pi_i and the repair flow mu*pi_{i-1}); manual states obey
  // pi_{y_i} = i (1-c) lambda pi_i / beta. Normalize over all states.
  const double log_ratio = std::log(farm.repair_rate / farm.failure_rate);
  std::vector<double> log_pi(farm.servers + 1, 0.0);
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    log_pi[i] = static_cast<double>(i) * log_ratio -
                upa::common::log_factorial(static_cast<unsigned>(i));
  }
  const double max_log = *std::max_element(log_pi.begin(), log_pi.end());

  ImperfectDistribution dist;
  dist.operational.resize(farm.servers + 1);
  dist.manual.assign(farm.servers + 1, 0.0);
  std::vector<double> all;
  for (std::size_t i = 0; i <= farm.servers; ++i) {
    dist.operational[i] = std::exp(log_pi[i] - max_log);
  }
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    dist.manual[i] = static_cast<double>(i) * (1.0 - farm.coverage) *
                     farm.failure_rate * dist.operational[i] /
                     farm.reconfiguration_rate;
  }
  double total = 0.0;
  for (double p : dist.operational) total += p;
  for (double p : dist.manual) total += p;
  for (double& p : dist.operational) p /= total;
  for (double& p : dist.manual) p /= total;
  return dist;
}

markov::Ctmc perfect_coverage_chain(const WebFarmParams& farm) {
  check_farm(farm, false);
  markov::Ctmc chain(farm.servers + 1);
  for (std::size_t i = 0; i <= farm.servers; ++i) {
    chain.set_label(i, std::to_string(i) + "up");
  }
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    chain.add_rate(i, i - 1, static_cast<double>(i) * farm.failure_rate);
    chain.add_rate(i - 1, i, farm.repair_rate);
  }
  return chain;
}

ImperfectChain imperfect_coverage_chain(const WebFarmParams& farm) {
  check_farm(farm, true);
  const std::size_t n = farm.servers;
  ImperfectChain result{markov::Ctmc(2 * n + 1), n};
  markov::Ctmc& chain = result.chain;
  for (std::size_t i = 0; i <= n; ++i) {
    chain.set_label(i, std::to_string(i) + "up");
  }
  for (std::size_t i = 1; i <= n; ++i) {
    chain.set_label(n + i, "y" + std::to_string(i));
  }
  const double c = farm.coverage;
  for (std::size_t i = 1; i <= n; ++i) {
    const double total_failure = static_cast<double>(i) * farm.failure_rate;
    if (c > 0.0) chain.add_rate(i, i - 1, c * total_failure);
    if (c < 1.0) {
      chain.add_rate(i, n + i, (1.0 - c) * total_failure);
      chain.add_rate(n + i, i - 1, farm.reconfiguration_rate);
    }
    chain.add_rate(i - 1, i, farm.repair_rate);
  }
  return result;
}

namespace {

double availability_perfect_uncached(const WebFarmParams& farm,
                                     const WebQueueParams& queue) {
  const std::vector<double> pi = perfect_coverage_distribution(farm);
  const std::vector<double> pk = loss_by_servers(farm, queue);
  double unavailability = pi[0];
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    unavailability += pi[i] * pk[i];
  }
  return 1.0 - unavailability;
}

double availability_imperfect_uncached(const WebFarmParams& farm,
                                       const WebQueueParams& queue) {
  const ImperfectDistribution dist = imperfect_coverage_distribution(farm);
  const std::vector<double> pk = loss_by_servers(farm, queue);
  double unavailability = dist.operational[0];
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    unavailability += dist.operational[i] * pk[i] + dist.manual[i];
  }
  return 1.0 - unavailability;
}

}  // namespace

double web_service_availability_perfect(const WebFarmParams& farm,
                                        const WebQueueParams& queue) {
  check_queue(queue);
  check_farm(farm, false);
  if (!cache::enabled()) return availability_perfect_uncached(farm, queue);
  cache::KeyBuilder kb =
      availability_key("core.web_availability_perfect", farm, queue, false);
  return *cache::global().get_or_compute<double>(
      std::move(kb).finish(),
      [&] { return availability_perfect_uncached(farm, queue); });
}

double web_service_availability_imperfect(const WebFarmParams& farm,
                                          const WebQueueParams& queue) {
  check_queue(queue);
  check_farm(farm, true);
  if (!cache::enabled()) return availability_imperfect_uncached(farm, queue);
  cache::KeyBuilder kb =
      availability_key("core.web_availability_imperfect", farm, queue, true);
  return *cache::global().get_or_compute<double>(
      std::move(kb).finish(),
      [&] { return availability_imperfect_uncached(farm, queue); });
}

namespace {

/// Per-operational-state probability that a request is accepted and
/// completes within the deadline.
std::vector<double> served_within_by_servers(const WebFarmParams& farm,
                                             const WebQueueParams& queue,
                                             double deadline) {
  std::vector<double> served(farm.servers + 1, 0.0);
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    UPA_REQUIRE(i <= queue.buffer,
                "more operational servers than buffer slots (K < N_W)");
    served[i] = queueing::mmck_served_within(
        queue.arrival_rate, queue.service_rate, i, queue.buffer, deadline);
  }
  return served;
}

double deadline_perfect_uncached(const WebFarmParams& farm,
                                 const WebQueueParams& queue,
                                 double deadline) {
  const std::vector<double> pi = perfect_coverage_distribution(farm);
  const std::vector<double> served =
      served_within_by_servers(farm, queue, deadline);
  double availability = 0.0;
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    availability += pi[i] * served[i];
  }
  return availability;
}

double deadline_imperfect_uncached(const WebFarmParams& farm,
                                   const WebQueueParams& queue,
                                   double deadline) {
  const ImperfectDistribution dist = imperfect_coverage_distribution(farm);
  const std::vector<double> served =
      served_within_by_servers(farm, queue, deadline);
  double availability = 0.0;
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    availability += dist.operational[i] * served[i];
  }
  return availability;
}

}  // namespace

double web_service_availability_perfect_with_deadline(
    const WebFarmParams& farm, const WebQueueParams& queue,
    double deadline) {
  check_queue(queue);
  check_farm(farm, false);
  if (!cache::enabled()) {
    return deadline_perfect_uncached(farm, queue, deadline);
  }
  cache::KeyBuilder kb = availability_key(
      "core.web_availability_perfect_deadline", farm, queue, false);
  kb.add(deadline);
  return *cache::global().get_or_compute<double>(
      std::move(kb).finish(),
      [&] { return deadline_perfect_uncached(farm, queue, deadline); });
}

double web_service_availability_imperfect_with_deadline(
    const WebFarmParams& farm, const WebQueueParams& queue,
    double deadline) {
  check_queue(queue);
  check_farm(farm, true);
  if (!cache::enabled()) {
    return deadline_imperfect_uncached(farm, queue, deadline);
  }
  cache::KeyBuilder kb = availability_key(
      "core.web_availability_imperfect_deadline", farm, queue, true);
  kb.add(deadline);
  return *cache::global().get_or_compute<double>(
      std::move(kb).finish(),
      [&] { return deadline_imperfect_uncached(farm, queue, deadline); });
}

CompositeAvailabilityModel composite_perfect(const WebFarmParams& farm,
                                             const WebQueueParams& queue) {
  check_queue(queue);
  const std::vector<double> pk = loss_by_servers(farm, queue);
  std::vector<double> served(farm.servers + 1, 0.0);
  for (std::size_t i = 1; i <= farm.servers; ++i) served[i] = 1.0 - pk[i];
  return {perfect_coverage_chain(farm), std::move(served)};
}

CompositeAvailabilityModel composite_imperfect(const WebFarmParams& farm,
                                               const WebQueueParams& queue) {
  check_queue(queue);
  UPA_REQUIRE(farm.coverage < 1.0,
              "composite_imperfect requires coverage < 1 (the y-states "
              "would be unreachable); use composite_perfect instead");
  const std::vector<double> pk = loss_by_servers(farm, queue);
  std::vector<double> served(2 * farm.servers + 1, 0.0);
  for (std::size_t i = 1; i <= farm.servers; ++i) served[i] = 1.0 - pk[i];
  // y-states (indices N_W+1 .. 2N_W) serve nothing.
  return {imperfect_coverage_chain(farm).chain, std::move(served)};
}

}  // namespace upa::core
