#include "upa/spn/to_ctmc.hpp"

#include <map>
#include <string>

#include "upa/common/error.hpp"

namespace upa::spn {
namespace {

/// Distribution over tangible marking indices (reachability indices).
using TangibleDistribution = std::map<std::size_t, double>;

class VanishingResolver {
 public:
  VanishingResolver(const ReachabilityGraph& graph)
      : graph_(graph), out_edges_(graph.markings.size()) {
    for (std::size_t e = 0; e < graph.edges.size(); ++e) {
      out_edges_[graph.edges[e].from].push_back(e);
    }
    memo_.resize(graph.markings.size());
    state_.resize(graph.markings.size(), State::kUntouched);
  }

  /// Distribution over tangible markings eventually reached from `m`
  /// through immediate firings only (identity when m is tangible).
  const TangibleDistribution& resolve(std::size_t m) {
    if (state_[m] == State::kDone) return memo_[m];
    UPA_REQUIRE(state_[m] != State::kInProgress,
                "cycle of vanishing markings (zero-time loop) at marking " +
                    std::to_string(m));
    state_[m] = State::kInProgress;

    TangibleDistribution dist;
    if (!graph_.vanishing[m]) {
      dist[m] = 1.0;
    } else {
      double total_weight = 0.0;
      for (std::size_t e : out_edges_[m]) {
        total_weight += graph_.edges[e].rate_or_weight;
      }
      UPA_REQUIRE(total_weight > 0.0,
                  "vanishing marking with no enabled immediate transition");
      for (std::size_t e : out_edges_[m]) {
        const double p = graph_.edges[e].rate_or_weight / total_weight;
        for (const auto& [tangible, q] : resolve(graph_.edges[e].to)) {
          dist[tangible] += p * q;
        }
      }
    }
    memo_[m] = std::move(dist);
    state_[m] = State::kDone;
    return memo_[m];
  }

 private:
  enum class State { kUntouched, kInProgress, kDone };
  const ReachabilityGraph& graph_;
  std::vector<std::vector<std::size_t>> out_edges_;
  std::vector<TangibleDistribution> memo_;
  std::vector<State> state_;
};

}  // namespace

TangibleChain to_ctmc(const PetriNet& net, const ReachabilityGraph& graph) {
  // Index tangible markings as chain states.
  std::vector<std::size_t> chain_state(graph.markings.size(), SIZE_MAX);
  std::vector<Marking> tangible_markings;
  for (std::size_t m = 0; m < graph.markings.size(); ++m) {
    if (!graph.vanishing[m]) {
      chain_state[m] = tangible_markings.size();
      tangible_markings.push_back(graph.markings[m]);
    }
  }
  UPA_REQUIRE(!tangible_markings.empty(), "net has no tangible markings");

  VanishingResolver resolver(graph);
  markov::Ctmc chain(tangible_markings.size());

  // Label chain states by their markings for diagnostics.
  for (std::size_t s = 0; s < tangible_markings.size(); ++s) {
    std::string label = "(";
    for (std::size_t p = 0; p < tangible_markings[s].size(); ++p) {
      if (p != 0) label += ",";
      label += std::to_string(tangible_markings[s][p]);
    }
    chain.set_label(s, label + ")");
  }

  // Accumulate rates (merging parallel transitions) before adding, so the
  // chain sees one rate per (from, to) pair.
  std::map<std::pair<std::size_t, std::size_t>, double> rates;
  for (const ReachabilityEdge& edge : graph.edges) {
    if (edge.immediate) continue;  // handled through the resolver
    UPA_ASSERT(!graph.vanishing[edge.from]);
    const std::size_t from = chain_state[edge.from];
    for (const auto& [tangible, p] : resolver.resolve(edge.to)) {
      const std::size_t to = chain_state[tangible];
      if (to == from) continue;  // immediate path returned to the source
      rates[{from, to}] += edge.rate_or_weight * p;
    }
  }
  for (const auto& [pair, rate] : rates) {
    chain.add_rate(pair.first, pair.second, rate);
  }

  (void)net;
  return {std::move(chain), std::move(tangible_markings)};
}

double steady_state_probability(
    const TangibleChain& tc, const std::function<bool(const Marking&)>& pred) {
  UPA_REQUIRE(pred != nullptr, "predicate must be provided");
  const linalg::Vector pi = tc.chain.steady_state();
  double mass = 0.0;
  for (std::size_t s = 0; s < tc.markings.size(); ++s) {
    if (pred(tc.markings[s])) mass += pi[s];
  }
  return mass;
}

double expected_tokens(const TangibleChain& tc, PlaceId place) {
  const linalg::Vector pi = tc.chain.steady_state();
  double mean = 0.0;
  for (std::size_t s = 0; s < tc.markings.size(); ++s) {
    UPA_REQUIRE(place < tc.markings[s].size(), "place id out of range");
    mean += pi[s] * tc.markings[s][place];
  }
  return mean;
}

}  // namespace upa::spn
