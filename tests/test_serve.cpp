// The evaluation service: dispatcher semantics, loopback server
// lifecycle, non-blocking admission control, deadlines, graceful drain,
// and the M/M/i/K dogfood -- the measured rejection fraction of the
// server itself must match the paper's eq. (3) loss probability.
//
// Naming note: the ServeDispatcher / ServeServer suites run under the
// ThreadSanitizer CI job (its ctest regex includes "Serve").
// LoadgenLossMeasurement deliberately does NOT match that regex: a
// statistical timing experiment under TSan's ~10x slowdown would
// measure the sanitizer, not the server.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/error.hpp"
#include "upa/obs/observer.hpp"
#include "upa/queueing/mmck.hpp"
#include "upa/serve/anti_entropy.hpp"
#include "upa/serve/client.hpp"
#include "upa/serve/loadgen.hpp"
#include "upa/serve/protocol.hpp"
#include "upa/serve/server.hpp"
#include "upa/ta/user_classes.hpp"

namespace {

using upa::serve::CallOutcome;
using upa::serve::CallResult;
using upa::serve::Client;
using upa::serve::Dispatcher;
using upa::serve::ErrorCode;
using upa::serve::Json;
using upa::serve::parse_json;
using upa::serve::Server;
using upa::serve::ServerConfig;

// --- Dispatcher (transport-free) -----------------------------------------

TEST(ServeDispatcher, PingRoundTrip) {
  const Dispatcher d;
  const Json response =
      parse_json(d.dispatch_line(R"({"id": 1, "method": "ping"})"));
  EXPECT_TRUE(response.find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(response.find("id")->as_number(), 1.0);
  EXPECT_TRUE(response.find("result")->find("pong")->as_bool());
}

TEST(ServeDispatcher, ErrorEnvelopes) {
  const Dispatcher d;
  // Unparseable line -> 400 with null id.
  Json r = parse_json(d.dispatch_line("{nope"));
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_TRUE(r.find("id")->is_null());
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kBadRequest);
  // Non-object request -> 400.
  r = parse_json(d.dispatch_line("[1,2]"));
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kBadRequest);
  // Missing method -> 400; id still echoed.
  r = parse_json(d.dispatch_line(R"({"id": "abc"})"));
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kBadRequest);
  EXPECT_EQ(r.find("id")->as_string(), "abc");
  // Unknown method -> 404 listing the known ones.
  r = parse_json(d.dispatch_line(R"({"id": 2, "method": "nope"})"));
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kUnknownMethod);
  EXPECT_NE(r.find("error")->find("message")->as_string().find("ping"),
            std::string::npos);
  // Bad parameter value -> 400 (ModelError from the handler).
  r = parse_json(d.dispatch_line(
      R"({"id": 3, "method": "sleep", "params": {"seconds": -1}})"));
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kBadRequest);
}

TEST(ServeDispatcher, RejectsOutOfRangeIntegerParams) {
  const Dispatcher d;
  // 1e30 is non-negative and integral, so it passed the old checks, but
  // casting it to size_t is undefined behavior -> must 400 instead.
  Json r = parse_json(d.dispatch_line(
      R"({"id": 1, "method": "mmck_metrics", "params": {"servers": 1e30}})"));
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kBadRequest);
  // In-range but absurd simulator sizes are bounded too, so one request
  // cannot commission years of compute.
  r = parse_json(d.dispatch_line(
      R"({"id": 2, "method": "simulate_end_to_end",)"
      R"( "params": {"sessions": 1e12}})"));
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kBadRequest);
}

TEST(ServeDispatcher, NestingBombIsA400NotACrash) {
  // A deeply nested request line must come back as a parse-error
  // envelope; before the parser depth cap it overflowed the stack.
  const Dispatcher d;
  const Json r = parse_json(d.dispatch_line(std::string(200000, '[')));
  EXPECT_FALSE(r.find("ok")->as_bool());
  EXPECT_EQ(r.find("error")->find("code")->as_number(),
            ErrorCode::kBadRequest);
}

TEST(ServeDispatcher, MmckMetricsMatchesLibrary) {
  const Dispatcher d;
  const Json r = parse_json(d.dispatch_line(
      R"({"id": 4, "method": "mmck_metrics",)"
      R"( "params": {"alpha": 300, "nu": 100, "servers": 2, "capacity": 4}})"));
  ASSERT_TRUE(r.find("ok")->as_bool());
  const double loss = r.find("result")->find("loss_probability")->as_number();
  EXPECT_DOUBLE_EQ(loss,
                   upa::queueing::mmck_loss_probability(300.0, 100.0, 2, 4));
}

TEST(ServeDispatcher, EvaluatorMethodsSucceedOnDefaults) {
  const Dispatcher d;
  for (const char* method :
       {"steady_state", "web_farm_availability", "composite_availability",
        "user_availability"}) {
    const Json r = parse_json(d.dispatch_line(
        std::string(R"({"id": 1, "method": ")") + method + R"("})"));
    EXPECT_TRUE(r.find("ok")->as_bool()) << method << ": " << r.dump();
  }
}

TEST(ServeDispatcher, CacheOnResponsesAreByteIdentical) {
  // The acceptance contract: with the evaluation cache enabled, every
  // response line is byte-for-byte the line produced with it disabled.
  // Each request runs twice under the cache so the second hit replays a
  // stored value -- if replay or serialization introduced any drift, the
  // strings would differ.
  const Dispatcher d;
  const std::vector<std::string> requests = {
      R"({"id": 1, "method": "mmck_metrics",)"
      R"( "params": {"alpha": 211, "nu": 97, "servers": 3, "capacity": 9}})",
      R"({"id": 2, "method": "steady_state", "params": {"nw": 3}})",
      R"({"id": 3, "method": "web_farm_availability",)"
      R"( "params": {"deadline": 0.08}})",
      R"({"id": 4, "method": "composite_availability", "params": {"nw": 2}})",
      R"({"id": 5, "method": "user_availability", "params": {"class": "A"}})",
  };

  std::vector<std::string> uncached;
  {
    upa::cache::ScopedEnable off(false);
    for (const std::string& line : requests) {
      uncached.push_back(d.dispatch_line(line));
    }
  }
  upa::cache::ScopedEnable on(true);
  upa::cache::global().clear();
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(d.dispatch_line(requests[i]), uncached[i])
          << "request " << i << " round " << round;
    }
  }
  // Round two actually hit the cache.
  EXPECT_GT(upa::cache::global().stats().hits, 0u);
  upa::cache::global().clear();
}

TEST(ServeDispatcher, CacheExportImportRoundTripOverRpc) {
  // The farm's warm-transfer path end to end through the protocol: warm
  // the cache, `cache export` it to a hex blob, wipe the cache (the
  // restarted replica), `cache import` the blob back, and require the
  // re-issued evaluation to be a pure hit with a byte-identical line.
  const Dispatcher d;
  const std::string request =
      R"({"id": 1, "method": "mmck_metrics",)"
      R"( "params": {"alpha": 173, "nu": 89, "servers": 3, "capacity": 11}})";

  upa::cache::ScopedEnable on(true);
  upa::cache::global().clear();
  const std::string warm_line = d.dispatch_line(request);

  const Json exported = parse_json(d.dispatch_line(
      R"({"id": 2, "method": "cache", "params": {"op": "export"}})"));
  ASSERT_TRUE(exported.find("ok")->as_bool()) << exported.dump();
  const Json* result = exported.find("result");
  EXPECT_GE(result->find("exported_records")->as_number(), 1.0);
  const std::string hex = result->find("segment_hex")->as_string();
  ASSERT_FALSE(hex.empty());

  ASSERT_TRUE(parse_json(d.dispatch_line(
                             R"({"id": 3, "method": "cache",)"
                             R"( "params": {"op": "clear"}})"))
                  .find("ok")
                  ->as_bool());
  EXPECT_EQ(upa::cache::global().size(), 0u);

  const Json imported = parse_json(d.dispatch_line(
      R"({"id": 4, "method": "cache", "params": {"op": "import",)"
      R"( "segment_hex": ")" +
      hex + R"("}})"));
  ASSERT_TRUE(imported.find("ok")->as_bool()) << imported.dump();
  EXPECT_GE(imported.find("result")->find("imported_records")->as_number(),
            1.0);

  upa::cache::global().reset_stats();
  EXPECT_EQ(d.dispatch_line(request), warm_line);
  EXPECT_GT(upa::cache::global().stats().hits, 0u);
  EXPECT_EQ(upa::cache::global().stats().misses, 0u);

  // A corrupt blob is a 400-class envelope, not a crash.
  const Json bad = parse_json(d.dispatch_line(
      R"({"id": 5, "method": "cache",)"
      R"( "params": {"op": "import", "segment_hex": "zz"}})"));
  EXPECT_FALSE(bad.find("ok")->as_bool());
  upa::cache::global().clear();
}

TEST(ServeDispatcher, CacheDigestPullShipsOnlyMissingRecords) {
  // The anti-entropy pair over the protocol: `cache digest` summarizes
  // what a replica holds, `cache pull` answers with ONLY the records
  // the caller's summary is missing. A caller that has everything gets
  // an empty delta; one that has nothing gets the full set, and
  // importing it after a wipe makes the re-issued evaluation a pure hit.
  const Dispatcher d;
  const std::string request =
      R"({"id": 1, "method": "mmck_metrics",)"
      R"( "params": {"alpha": 211, "nu": 97, "servers": 4, "capacity": 13}})";

  upa::cache::ScopedEnable on(true);
  upa::cache::global().clear();
  const std::string warm_line = d.dispatch_line(request);
  d.dispatch_line(
      R"({"id": 2, "method": "mmck_metrics",)"
      R"( "params": {"alpha": 223, "nu": 97, "servers": 4, "capacity": 13}})");

  const Json digest = parse_json(d.dispatch_line(
      R"({"id": 3, "method": "cache", "params": {"op": "digest"}})"));
  ASSERT_TRUE(digest.find("ok")->as_bool()) << digest.dump();
  const double count =
      digest.find("result")->find("digest_count")->as_number();
  EXPECT_GE(count, 2.0);
  const std::string have_hex =
      digest.find("result")->find("digests_hex")->as_string();
  // Packed little-endian u64s: 16 hex chars per digest.
  EXPECT_EQ(have_hex.size(), static_cast<std::size_t>(count) * 16);

  // A peer that already has everything pulls an empty delta.
  const Json none = parse_json(d.dispatch_line(
      R"({"id": 4, "method": "cache", "params": {"op": "pull",)"
      R"( "have_hex": ")" +
      have_hex + R"("}})"));
  ASSERT_TRUE(none.find("ok")->as_bool()) << none.dump();
  EXPECT_EQ(none.find("result")->find("delta_records")->as_number(), 0.0);
  EXPECT_EQ(none.find("result")->find("have_count")->as_number(), count);

  // A peer with nothing (no have_hex) pulls the full warm set...
  const Json full = parse_json(d.dispatch_line(
      R"({"id": 5, "method": "cache", "params": {"op": "pull"}})"));
  ASSERT_TRUE(full.find("ok")->as_bool()) << full.dump();
  EXPECT_GE(full.find("result")->find("delta_records")->as_number(), 1.0);
  const std::string blob_hex =
      full.find("result")->find("segment_hex")->as_string();
  ASSERT_FALSE(blob_hex.empty());

  // ...and importing the delta after a wipe replays it byte for byte.
  ASSERT_TRUE(parse_json(d.dispatch_line(
                             R"({"id": 6, "method": "cache",)"
                             R"( "params": {"op": "clear"}})"))
                  .find("ok")
                  ->as_bool());
  const Json imported = parse_json(d.dispatch_line(
      R"({"id": 7, "method": "cache", "params": {"op": "import",)"
      R"( "segment_hex": ")" +
      blob_hex + R"("}})"));
  ASSERT_TRUE(imported.find("ok")->as_bool()) << imported.dump();
  upa::cache::global().reset_stats();
  EXPECT_EQ(d.dispatch_line(request), warm_line);
  EXPECT_GT(upa::cache::global().stats().hits, 0u);
  EXPECT_EQ(upa::cache::global().stats().misses, 0u);

  // A have_hex that is not a whole number of u64s is a 400-class
  // envelope, not a crash.
  const Json bad = parse_json(d.dispatch_line(
      R"({"id": 8, "method": "cache",)"
      R"( "params": {"op": "pull", "have_hex": "aabb"}})"));
  EXPECT_FALSE(bad.find("ok")->as_bool());
  upa::cache::global().clear();
}

TEST(ServeDispatcher, CacheFingerprintAndPagedPullOverTheProtocol) {
  // The scalable anti-entropy pair: `fingerprint` answers the O(1)
  // convergence probe, and `pull` with max_bytes cuts the delta into
  // cursor-resumable pages whose union equals the unpaged blob.
  const Dispatcher d;
  upa::cache::ScopedEnable on(true);
  upa::cache::global().clear();
  for (int k = 0; k < 6; ++k) {
    d.dispatch_line(
        R"({"id": 1, "method": "mmck_metrics", "params":)"
        R"( {"alpha": )" +
        std::to_string(150 + k) + R"(, "nu": 97, "servers": 4,)"
        R"( "capacity": 13}})");
  }

  const Json fp = parse_json(d.dispatch_line(
      R"({"id": 2, "method": "cache", "params": {"op": "fingerprint"}})"));
  ASSERT_TRUE(fp.find("ok")->as_bool()) << fp.dump();
  EXPECT_GE(fp.find("result")->find("digest_count")->as_number(), 6.0);
  const std::string fp_hex =
      fp.find("result")->find("fingerprint_hex")->as_string();
  EXPECT_EQ(fp_hex.size(), 16u);  // one folded u64

  // The fingerprint tracks the warm set: one more entry changes it.
  d.dispatch_line(
      R"({"id": 3, "method": "mmck_metrics", "params":)"
      R"( {"alpha": 170, "nu": 97, "servers": 4, "capacity": 13}})");
  const Json fp2 = parse_json(d.dispatch_line(
      R"({"id": 4, "method": "cache", "params": {"op": "fingerprint"}})"));
  EXPECT_NE(fp2.find("result")->find("fingerprint_hex")->as_string(),
            fp_hex);

  // Unpaged pull for the reference blob size; then page at a fraction
  // of it and walk the cursor chain.
  const Json full = parse_json(d.dispatch_line(
      R"({"id": 5, "method": "cache", "params": {"op": "pull"}})"));
  ASSERT_TRUE(full.find("ok")->as_bool()) << full.dump();
  const double full_records =
      full.find("result")->find("delta_records")->as_number();
  const std::size_t full_bytes =
      full.find("result")->find("segment_hex")->as_string().size() / 2;
  const std::size_t max_bytes = full_bytes / 3 + 1;

  double paged_records = 0.0;
  std::string cursor;
  int pages = 0;
  for (;;) {
    std::string request =
        R"({"id": 6, "method": "cache", "params": {"op": "pull",)"
        R"( "max_bytes": )" +
        std::to_string(max_bytes);
    if (!cursor.empty()) request += R"(, "cursor": ")" + cursor + R"(")";
    request += "}}";
    const Json page = parse_json(d.dispatch_line(request));
    ASSERT_TRUE(page.find("ok")->as_bool()) << page.dump();
    const Json* result = page.find("result");
    paged_records += result->find("delta_records")->as_number();
    EXPECT_LE(result->find("segment_hex")->as_string().size() / 2,
              max_bytes);
    ++pages;
    ASSERT_LT(pages, 32) << "cursor walk diverged";
    if (result->find("complete")->as_bool()) break;
    cursor = result->find("next_cursor")->as_string();
    EXPECT_EQ(cursor.size(), 16u);
  }
  EXPECT_GT(pages, 1);
  EXPECT_EQ(paged_records, full_records);

  // A malformed cursor is a 400-class envelope, not a crash.
  const Json bad = parse_json(d.dispatch_line(
      R"({"id": 7, "method": "cache",)"
      R"( "params": {"op": "pull", "max_bytes": 1000, "cursor": "xyz"}})"));
  EXPECT_FALSE(bad.find("ok")->as_bool());
  upa::cache::global().clear();
}

TEST(AntiEntropy, ConvergedRoundShortCircuitsOnTheFingerprint) {
  // In-process, agent and server share cache::global(), so the peer's
  // fingerprint always matches: every round must end at step 0 --
  // counted as converged, no digest summary shipped, nothing pulled.
  upa::cache::ScopedEnable on(true);
  upa::cache::global().clear();
  upa::serve::ServerConfig config;
  config.port = 0;
  config.workers = 1;
  config.capacity = 4;
  Server server(std::move(config));
  server.start();

  upa::serve::AntiEntropyConfig ae;
  ae.peers = {"127.0.0.1:" + std::to_string(server.port())};
  upa::serve::AntiEntropyAgent agent(ae);
  EXPECT_TRUE(agent.run_round(0));
  EXPECT_TRUE(agent.run_round(0));
  const upa::serve::AntiEntropyStats stats = agent.stats();
  EXPECT_EQ(stats.rounds, 2u);
  EXPECT_EQ(stats.pulls_ok, 2u);
  EXPECT_EQ(stats.rounds_converged, 2u);
  EXPECT_EQ(stats.records_pulled, 0u);
  EXPECT_EQ(stats.pages_pulled, 0u);
  server.stop();
}

// --- Server (loopback TCP) -----------------------------------------------

ServerConfig loopback_config(std::size_t workers, std::size_t capacity) {
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.workers = workers;
  config.capacity = capacity;
  return config;
}

TEST(ServeServer, RejectsInvalidConfig) {
  ServerConfig bad = loopback_config(0, 4);
  EXPECT_THROW(Server{bad}, upa::common::ModelError);
  bad = loopback_config(4, 2);  // capacity < workers
  EXPECT_THROW(Server{bad}, upa::common::ModelError);
}

TEST(ServeServer, StartServeStop) {
  Server server(loopback_config(2, 8));
  server.start();
  ASSERT_TRUE(server.running());
  ASSERT_GT(server.port(), 0);

  Client client;
  client.connect("127.0.0.1", server.port());
  const CallResult r = client.call("ping", Json(), 7);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.envelope.find("id")->as_number(), 7.0);
  client.close();

  server.stop();
  EXPECT_FALSE(server.running());
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.requests, 1u);
  EXPECT_EQ(stats.in_system, 0u);

  // stop() is idempotent; post-stop connects are refused by the OS.
  server.stop();
  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port(), 0.5),
               upa::common::ModelError);
}

TEST(ServeServer, SmokeProbeCoversEveryMethod) {
  Server server(loopback_config(2, 8));
  server.start();
  const upa::serve::SmokeResult smoke =
      upa::serve::run_smoke_probe("127.0.0.1", server.port());
  for (const auto& [name, ok] : smoke.checks) {
    EXPECT_TRUE(ok) << "smoke check failed: " << name;
  }
  EXPECT_TRUE(smoke.all_ok);
  server.stop();
}

TEST(ServeServer, KeepAliveConnectionServesManyRequests) {
  Server server(loopback_config(1, 4));
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  for (std::uint64_t id = 0; id < 20; ++id) {
    const CallResult r = client.call("ping", Json(), id);
    ASSERT_TRUE(r.ok());
    EXPECT_DOUBLE_EQ(r.envelope.find("id")->as_number(),
                     static_cast<double>(id));
  }
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().requests, 20u);
  EXPECT_EQ(server.stats().accepted, 1u);  // one admission, many requests
}

TEST(ServeServer, AdmissionControlRejectsWhenFull) {
  // i = 1, K = 1: with one connection holding the single slot, the next
  // connection must receive the pre-built 503 line without the acceptor
  // ever reading its request.
  Server server(loopback_config(1, 1));
  server.start();

  std::atomic<bool> holder_done{false};
  std::thread holder([&] {
    Client c;
    c.connect("127.0.0.1", server.port());
    Json params = Json::object();
    params.set("seconds", Json(0.5));
    const CallResult r = c.call("sleep", std::move(params));
    EXPECT_TRUE(r.ok());
    holder_done.store(true);
  });

  // Let the holder get admitted and into service.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  ASSERT_FALSE(holder_done.load());

  Client rejected;
  rejected.connect("127.0.0.1", server.port());
  const CallResult r = rejected.call("ping", Json());
  EXPECT_EQ(r.outcome, CallOutcome::kRejected);
  EXPECT_EQ(r.code, ErrorCode::kQueueFull);

  holder.join();
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.max_in_system, 1u);

  // After the rejection, an admitted connection still works: the 503
  // path never wedges the acceptor.
  Server fresh(loopback_config(1, 1));
  fresh.start();
  Client ok;
  ok.connect("127.0.0.1", fresh.port());
  EXPECT_TRUE(ok.call("ping", Json()).ok());
  fresh.stop();
}

TEST(ServeServer, ServerDeadlineReturns504) {
  ServerConfig config = loopback_config(1, 2);
  config.deadline_seconds = 0.05;
  Server server(std::move(config));
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  Json params = Json::object();
  params.set("seconds", Json(0.2));
  const CallResult r = client.call("sleep", std::move(params));
  EXPECT_EQ(r.outcome, CallOutcome::kDeadline);
  EXPECT_EQ(r.code, ErrorCode::kDeadlineExceeded);

  server.stop();
  EXPECT_EQ(server.stats().deadline_missed, 1u);
}

TEST(ServeServer, RequestDeadlineTightensButNeverExtends) {
  ServerConfig config = loopback_config(1, 2);
  config.deadline_seconds = 10.0;  // generous server budget
  Server server(std::move(config));
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  // A request-level deadline_ms below the sleep forces a 504 even
  // though the server-wide budget would allow it.
  const std::string tight = client.call_line(
      R"({"id": 1, "method": "sleep",)"
      R"( "params": {"seconds": 0.1}, "deadline_ms": 20})");
  EXPECT_EQ(upa::serve::classify_response(tight).outcome,
            CallOutcome::kDeadline);
  // A request-level deadline longer than the server's cannot extend it:
  // with a 10 s server budget and a 5000 ms request budget, a 10 ms
  // sleep is comfortably inside both.
  const std::string ok_line = client.call_line(
      R"({"id": 2, "method": "sleep",)"
      R"( "params": {"seconds": 0.01}, "deadline_ms": 5000})");
  EXPECT_TRUE(upa::serve::classify_response(ok_line).ok());

  // Close before stop: a drain waits out an idle kept-alive connection
  // for the full read timeout otherwise.
  client.close();
  server.stop();
}

TEST(ServeServer, GracefulShutdownDrainsAdmittedConnections) {
  // Four in-flight sleeps on two workers; stop() must serve all four
  // (drain, not abort), refuse new connections afterwards, and join
  // every thread before returning.
  Server server(loopback_config(2, 8));
  server.start();

  constexpr int kClients = 4;
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      Client c;
      c.connect("127.0.0.1", server.port());
      Json params = Json::object();
      params.set("seconds", Json(0.15));
      if (c.call("sleep", std::move(params), i).ok()) ++ok_count;
    });
  }

  // Give all four time to be admitted, then stop while they sleep.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server.stop();

  for (std::thread& t : clients) t.join();
  EXPECT_EQ(ok_count.load(), kClients);

  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.completed, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(stats.in_system, 0u);

  Client late;
  EXPECT_THROW(late.connect("127.0.0.1", server.port(), 0.5),
               upa::common::ModelError);
}

TEST(ServeServer, DrainTerminatesAgainstBusyKeepAliveClient) {
  // A kept-alive client that never stops issuing requests must not hold
  // stop() open: once the drain begins, the request in flight is served
  // and the connection is then closed. The test's real assertion is
  // that server.stop() returns at all.
  Server server(loopback_config(1, 2));
  server.start();

  std::atomic<bool> client_done{false};
  std::thread client([&] {
    Client c;
    c.connect("127.0.0.1", server.port());
    for (std::uint64_t id = 0; id < 1000000; ++id) {
      if (!c.call("ping", Json(), id).ok()) break;  // closed by the drain
    }
    client_done.store(true);
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.stop();
  client.join();
  EXPECT_TRUE(client_done.load());
  EXPECT_EQ(server.stats().in_system, 0u);
  EXPECT_GE(server.stats().requests, 1u);
}

TEST(ServeServer, KeepAliveRequestsGetFreshDeadlineBudgets) {
  // The server-wide budget anchors per request, not per connection: two
  // sequential sleeps that each fit the budget must both succeed even
  // though their sum exceeds it. (Before the fix, every request after
  // the connection aged past the budget spuriously 504'd.)
  ServerConfig config = loopback_config(1, 2);
  config.deadline_seconds = 0.3;
  Server server(std::move(config));
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  for (std::uint64_t id = 0; id < 2; ++id) {
    Json params = Json::object();
    params.set("seconds", Json(0.2));
    const CallResult r = client.call("sleep", std::move(params), id);
    EXPECT_TRUE(r.ok()) << "request " << id << " outcome "
                        << upa::serve::call_outcome_name(r.outcome);
  }
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().deadline_missed, 0u);
}

TEST(ServeServer, StatsMethodAndObserverMetrics) {
  upa::obs::Observer observer;
  ServerConfig config = loopback_config(2, 8);
  config.obs = &observer;
  Server server(std::move(config));
  server.start();

  Client client;
  client.connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.call("ping", Json()).ok());
  const CallResult stats_call = client.call("stats", Json());
  ASSERT_TRUE(stats_call.ok());
  const Json* result = stats_call.result();
  EXPECT_GE(result->find("requests")->as_number(), 1.0);
  EXPECT_GE(result->find("accepted")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(result->find("rejected")->as_number(), 0.0);
  client.close();
  server.stop();

  // The observer saw one serve_request span per request plus counters.
  EXPECT_GE(observer.tracer.spans().size(), 2u);
  EXPECT_GE(observer.metrics.counter("serve.requests").value(), 2.0);
  EXPECT_GE(observer.metrics.counter("serve.code.200").value(), 2.0);

  // publish_metrics exports the counter snapshot as gauges.
  upa::obs::MetricsRegistry registry;
  server.publish_metrics(registry);
  EXPECT_DOUBLE_EQ(registry.gauge("serve.requests").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("serve.accepted").value(), 1.0);
}

TEST(ServeServer, SessionReplayCompletesAgainstGenerousCapacity) {
  Server server(loopback_config(2, 64));
  server.start();

  upa::serve::SessionConfig config;
  config.port = server.port();
  config.uclass = upa::ta::UserClass::kB;
  config.sessions = 12;
  config.session_rate = 40.0;
  config.seed = 7;
  const upa::serve::SessionResult result =
      upa::serve::run_session_replay(config);
  server.stop();

  EXPECT_EQ(result.sessions, 12u);
  EXPECT_EQ(result.completed, 12u);
  EXPECT_EQ(result.rejected, 0u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_DOUBLE_EQ(result.session_success_fraction, 1.0);
  // Table 1 class B sessions visit at least one function each.
  EXPECT_GE(result.mean_invocations_per_session, 1.0);
}

// --- Distributed tracing -------------------------------------------------

TEST(ServeTrace, TraceContextRoundTripsThroughEnvelope) {
  using upa::serve::parse_trace_context;
  using upa::serve::TraceContext;
  using upa::serve::with_trace_context;

  TraceContext context;
  context.trace_id = "a1b2c3d4e5f60718";
  context.span_id = 42;
  context.sampled = true;
  const Json request =
      parse_json(R"({"id": 7, "method": "ping", "params": {}})");
  const std::string rewritten = with_trace_context(request, context);
  const auto parsed = parse_trace_context(parse_json(rewritten));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->trace_id, context.trace_id);
  EXPECT_EQ(parsed->span_id, context.span_id);
  EXPECT_TRUE(parsed->sampled);

  // No trace member -> nullopt, not an error.
  EXPECT_FALSE(parse_trace_context(request).has_value());
}

TEST(ServeTrace, MalformedTraceMemberIsA400NotACrash) {
  const Dispatcher d;
  const std::vector<std::string> malformed = {
      R"({"id": 1, "method": "ping", "trace": "not an object"})",
      R"({"id": 2, "method": "ping", "trace": {}})",
      R"({"id": 3, "method": "ping",
          "trace": {"trace_id": "NOT-HEX", "span_id": 1}})",
      R"({"id": 4, "method": "ping", "trace": {"trace_id": ""}})",
      R"({"id": 5, "method": "ping",
          "trace": {"trace_id": "ab", "span_id": -1}})",
      R"({"id": 6, "method": "ping",
          "trace": {"trace_id": "ab", "span_id": 1.5}})",
      R"({"id": 7, "method": "ping",
          "trace": {"trace_id": "ab", "sampled": "yes"}})",
      R"({"id": 8, "method": "ping",
          "trace": {"trace_id": "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"}})",
  };
  for (const std::string& line : malformed) {
    const Json r = parse_json(d.dispatch_line(line));
    EXPECT_FALSE(r.find("ok")->as_bool()) << line;
    EXPECT_EQ(r.find("error")->find("code")->as_number(),
              ErrorCode::kBadRequest)
        << line;
  }
}

TEST(ServeTrace, ServerParentsSpansOnPropagatedContext) {
  upa::obs::Observer observer;
  ServerConfig config = loopback_config(2, 8);
  config.obs = &observer;
  config.trace = true;
  Server server(std::move(config));
  server.start();

  upa::serve::TraceContext context;
  context.trace_id = "00000000000000ab";
  context.span_id = 7;
  Client client;
  client.connect("127.0.0.1", server.port());
  const CallResult r = client.call("ping", Json(), 1, &context);
  ASSERT_TRUE(r.ok());
  client.close();
  server.stop();

  // One serve_request root carrying the propagated linkage, plus its
  // serve_phase children.
  const upa::obs::Span* root = nullptr;
  std::size_t phases = 0;
  for (const upa::obs::Span& span : observer.tracer.spans()) {
    if (span.level == upa::obs::SpanLevel::kServeRequest) {
      ASSERT_EQ(root, nullptr);
      root = &span;
    }
    if (span.level == upa::obs::SpanLevel::kServePhase) ++phases;
  }
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->name, "ping");
  std::string trace_id;
  double parent_span = -1.0;
  double code = -1.0;
  for (const upa::obs::SpanAttribute& attr : root->attributes) {
    if (attr.key == "trace_id") trace_id = attr.text;
    if (attr.key == "parent_span") parent_span = attr.number;
    if (attr.key == "code") code = attr.number;
  }
  EXPECT_EQ(trace_id, "00000000000000ab");
  EXPECT_DOUBLE_EQ(parent_span, 7.0);
  EXPECT_DOUBLE_EQ(code, 200.0);
  // admission_wait (first request on the connection), handler, serialize.
  EXPECT_EQ(phases, 3u);
  for (const upa::obs::Span& span : observer.tracer.spans()) {
    if (span.level == upa::obs::SpanLevel::kServePhase) {
      EXPECT_EQ(span.parent, root->id);
    }
  }
}

TEST(ServeTrace, ResponsesAreByteIdenticalWithTracingOffOrOn) {
  // Same request with and without a trace member, against a traced and
  // an untraced server: all four response lines must be identical --
  // tracing must never leak into the bytes on the wire.
  upa::obs::Observer observer;
  ServerConfig traced = loopback_config(1, 4);
  traced.obs = &observer;
  traced.trace = true;
  Server traced_server(std::move(traced));
  traced_server.start();
  Server plain_server(loopback_config(1, 4));
  plain_server.start();

  const std::string bare =
      R"({"id": 9, "method": "mmck_metrics",)"
      R"( "params": {"lambda": 1.0, "nu": 2.0, "i": 2, "k": 4}})";
  const std::string traced_line =
      R"({"id": 9, "method": "mmck_metrics",)"
      R"( "params": {"lambda": 1.0, "nu": 2.0, "i": 2, "k": 4},)"
      R"( "trace": {"trace_id": "ab", "span_id": 3}})";

  std::vector<std::string> responses;
  for (const Server* server : {&traced_server, &plain_server}) {
    for (const std::string& line : {bare, traced_line}) {
      Client client;
      client.connect("127.0.0.1", server->port());
      responses.push_back(client.call_line(line));
      client.close();
    }
  }
  traced_server.stop();
  plain_server.stop();

  ASSERT_EQ(responses.size(), 4u);
  EXPECT_EQ(responses[0], responses[1]);
  EXPECT_EQ(responses[1], responses[2]);
  EXPECT_EQ(responses[2], responses[3]);
  EXPECT_NE(responses[0].find("\"ok\":true"), std::string::npos);
}

// --- Telemetry streaming (subscribe) -------------------------------------

TEST(Subscribe, StreamsMetricsAndSpans) {
  upa::obs::Observer observer;
  ServerConfig config = loopback_config(2, 8);
  config.obs = &observer;
  config.trace = true;
  config.telemetry_process = "served:test";
  Server server(std::move(config));
  server.start();

  Client subscriber;
  subscriber.connect("127.0.0.1", server.port(), 5.0, 10.0);
  subscriber.send_line(
      R"({"id": 1, "method": "subscribe", "params": {"interval_ms": 50}})");
  const Json ack = parse_json(subscriber.read_line());
  EXPECT_TRUE(ack.find("ok")->as_bool());
  EXPECT_TRUE(ack.find("result")->find("subscribed")->as_bool());
  EXPECT_EQ(ack.find("result")->find("process")->as_string(),
            "served:test");

  // Traffic from a second connection shows up on the stream.
  upa::serve::TraceContext context;
  context.trace_id = "00000000000000cd";
  Client caller;
  caller.connect("127.0.0.1", server.port());
  ASSERT_TRUE(caller.call("ping", Json(), 1, &context).ok());
  caller.close();

  bool saw_metrics = false;
  bool saw_request_span = false;
  for (int i = 0; i < 40 && !(saw_metrics && saw_request_span); ++i) {
    const Json line = parse_json(subscriber.read_line());
    const Json* kind = line.find("telemetry");
    ASSERT_NE(kind, nullptr);
    if (kind->as_string() == "metrics") {
      saw_metrics = true;
      EXPECT_EQ(line.find("process")->as_string(), "served:test");
      EXPECT_NE(line.find("histograms"), nullptr);
    } else if (kind->as_string() == "span") {
      const Json* level = line.find("level");
      ASSERT_NE(level, nullptr);
      if (level->as_string() == "serve_request") {
        saw_request_span = true;
        EXPECT_EQ(line.find("attrs")->find("trace_id")->as_string(),
                  "00000000000000cd");
      }
    }
  }
  EXPECT_TRUE(saw_metrics);
  EXPECT_TRUE(saw_request_span);
  subscriber.close();
  server.stop();
}

TEST(Subscribe, BadIntervalIsA400AndTheConnectionSurvives) {
  Server server(loopback_config(1, 4));
  server.start();
  Client client;
  client.connect("127.0.0.1", server.port());
  for (const std::string params :
       {R"({"interval_ms": 5})", R"({"interval_ms": 60001})",
        R"({"interval_ms": "fast"})"}) {
    const Json r = parse_json(client.call_line(
        R"({"id": 1, "method": "subscribe", "params": )" + params + "}"));
    EXPECT_FALSE(r.find("ok")->as_bool()) << params;
    EXPECT_EQ(r.find("error")->find("code")->as_number(),
              ErrorCode::kBadRequest)
        << params;
  }
  // The rejected subscribe left the connection in request mode.
  const CallResult alive = client.call("ping", Json(), 2);
  EXPECT_TRUE(alive.ok());
  client.close();
  server.stop();
}

// --- The dogfood experiment (kept OUT of the TSan regex on purpose) ------

TEST(LoadgenLossMeasurement, MatchesAnalyticMmckLoss) {
  // lambda = 300/s against i = 2 workers at nu = 100/s with K = 4: the
  // analytic eq. (3) loss is ~0.40, so rejections are plentiful and the
  // binomial half-width is small. The tolerance is 4 sigma plus a small
  // allowance for connect/scheduling overhead shifting effective rates.
  constexpr double kLambda = 300.0;
  constexpr double kNu = 100.0;
  constexpr std::size_t kWorkers = 2;
  constexpr std::size_t kCapacity = 4;
  constexpr std::size_t kRequests = 600;

  Server server(loopback_config(kWorkers, kCapacity));
  server.start();

  upa::serve::LossConfig config;
  config.port = server.port();
  config.lambda = kLambda;
  config.nu = kNu;
  config.requests = kRequests;
  config.seed = 20260806;
  const upa::serve::LossResult result =
      upa::serve::run_loss_workload(config);
  server.stop();

  ASSERT_EQ(result.sent, kRequests);
  EXPECT_EQ(result.transport_errors, 0u);
  EXPECT_EQ(result.other_errors, 0u);

  const double analytic = upa::queueing::mmck_loss_probability(
      kLambda, kNu, kWorkers, kCapacity);
  const double tolerance =
      4.0 * std::sqrt(analytic * (1.0 - analytic) /
                      static_cast<double>(kRequests)) +
      0.02;
  EXPECT_NEAR(result.measured_loss, analytic, tolerance)
      << "measured " << result.measured_loss << " vs analytic " << analytic;

  // The server's own books agree with the client's.
  const auto stats = server.stats();
  EXPECT_EQ(stats.accepted + stats.rejected,
            static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(stats.rejected, static_cast<std::uint64_t>(result.rejected));
  EXPECT_LE(stats.max_in_system, kCapacity);
}

}  // namespace
