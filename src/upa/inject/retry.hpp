#pragma once
// User resilience semantics for the end-to-end simulation: what a real
// user does when a function invocation fails. The paper's eq. (10) user
// gives up immediately; this policy retries up to `max_retries` times with
// exponential backoff, perceives over-deadline responses as failures, and
// abandons the session with a fixed probability before each retry.

#include <cstddef>

namespace upa::inject {

/// Retry / timeout / abandonment policy for one function invocation.
/// The default-constructed policy (no retries, no deadline) reproduces the
/// paper's fail-fast user exactly, draw for draw.
struct RetryPolicy {
  /// Extra attempts after the first failure; 0 = the eq. (10) user.
  std::size_t max_retries = 0;
  /// Wall-clock wait before retry k (0-based): base * multiplier^k hours.
  double backoff_base_hours = 0.25;
  double backoff_multiplier = 2.0;
  /// Response-time deadline per request; a served request that takes
  /// longer is perceived as failed (retryable). 0 disables the deadline.
  /// Unit: seconds, matching the M/M/i/K rates alpha and nu.
  double response_timeout_seconds = 0.0;
  /// Probability that the user walks away before each retry instead of
  /// waiting out the backoff. Abandoned sessions count as failed.
  double abandonment_probability = 0.0;

  /// True when this policy changes anything relative to the fail-fast
  /// user (and hence may consume additional random draws).
  [[nodiscard]] bool enabled() const noexcept {
    return max_retries > 0 || response_timeout_seconds > 0.0;
  }

  /// Backoff before the (retry_index + 1)-th re-attempt, in hours.
  [[nodiscard]] double backoff_hours(std::size_t retry_index) const;

  /// Throws ModelError when any field is out of its domain.
  void validate() const;
};

}  // namespace upa::inject
