#include "upa/cli/args.hpp"

#include <cstdlib>

#include "upa/common/error.hpp"

namespace upa::cli {

Args::Args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  parse(tokens);
}

Args::Args(const std::vector<std::string>& tokens) { parse(tokens); }

void Args::parse(const std::vector<std::string>& tokens) {
  std::size_t i = 0;
  if (!tokens.empty() && tokens[0].rfind("--", 0) != 0) {
    command_ = tokens[0];
    i = 1;
  }
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    UPA_REQUIRE(token.rfind("--", 0) == 0,
                "expected an --option, got '" + token + "'");
    const std::string name = token.substr(2);
    UPA_REQUIRE(!name.empty(), "empty option name");
    UPA_REQUIRE(!options_.contains(name), "duplicate option --" + name);
    if (i + 1 < tokens.size() && tokens[i + 1].rfind("--", 0) != 0) {
      options_[name] = tokens[i + 1];
      ++i;
    } else {
      options_[name] = "";  // boolean flag
    }
  }
}

bool Args::has(const std::string& name) const {
  accessed_[name] = true;
  return options_.contains(name);
}

std::string Args::get(const std::string& name,
                      const std::string& fallback) const {
  accessed_[name] = true;
  const auto it = options_.find(name);
  return it == options_.end() ? fallback : it->second;
}

double Args::get_double(const std::string& name, double fallback) const {
  accessed_[name] = true;
  const auto it = options_.find(name);
  if (it == options_.end()) return fallback;
  UPA_REQUIRE(!it->second.empty(), "--" + name + " needs a value");
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  UPA_REQUIRE(end != nullptr && *end == '\0',
              "--" + name + " expects a number, got '" + it->second + "'");
  return value;
}

std::size_t Args::get_size(const std::string& name,
                           std::size_t fallback) const {
  const double value =
      get_double(name, static_cast<double>(fallback));
  UPA_REQUIRE(value >= 0.0 && value == static_cast<std::size_t>(value),
              "--" + name + " expects a non-negative integer");
  return static_cast<std::size_t>(value);
}

std::vector<std::string> Args::names() const {
  std::vector<std::string> out;
  for (const auto& [name, value] : options_) out.push_back(name);
  return out;
}

std::vector<std::string> unknown_options(
    const Args& args, const std::vector<std::string>& allowed) {
  std::vector<std::string> out;
  for (const std::string& name : args.names()) {
    if (name == "help") continue;
    bool found = false;
    for (const std::string& candidate : allowed) {
      if (name == candidate) {
        found = true;
        break;
      }
    }
    if (!found) out.push_back(name);
  }
  return out;
}

std::vector<std::string> Args::unused() const {
  std::vector<std::string> names;
  for (const auto& [name, value] : options_) {
    if (!accessed_.contains(name)) names.push_back(name);
  }
  return names;
}

}  // namespace upa::cli
