// Kernel timings: the numerical engines under the reproduction (dense LU
// steady state vs iterative uniformized power iteration, birth-death
// closed form, BDD compilation, GSPN reachability, absorbing-chain
// analysis). No paper table here -- this bench characterizes the library
// itself.

#include "bench_util.hpp"
#include "upa/faulttree/bdd.hpp"
#include "upa/linalg/lu.hpp"
#include "upa/markov/birth_death.hpp"
#include "upa/markov/ctmc.hpp"
#include "upa/markov/transient.hpp"
#include "upa/profile/scenario.hpp"
#include "upa/spn/net.hpp"
#include "upa/spn/reachability.hpp"
#include "upa/spn/to_ctmc.hpp"
#include "upa/ta/user_classes.hpp"

namespace {

namespace um = upa::markov;
namespace ul = upa::linalg;

void print_nothing() {
  upa::bench::print_header(
      "solver kernels",
      "Timing-only bench: no paper artifact, see the counters below.");
}

/// Ring + shortcuts chain of n states (irreducible, sparse).
um::Ctmc ring_chain(std::size_t n) {
  um::Ctmc chain(n);
  for (std::size_t i = 0; i < n; ++i) {
    chain.add_rate(i, (i + 1) % n, 1.0 + 0.01 * static_cast<double>(i % 7));
    if (i % 5 == 0) chain.add_rate(i, (i + 3) % n, 0.25);
  }
  return chain;
}

void bm_ctmc_steady_dense(benchmark::State& state) {
  const um::Ctmc chain = ring_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.steady_state());
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(bm_ctmc_steady_dense)->Arg(16)->Arg(64)->Arg(256)->Complexity();

void bm_ctmc_steady_iterative(benchmark::State& state) {
  const um::Ctmc chain = ring_chain(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.steady_state_iterative(1e-10));
  }
}
BENCHMARK(bm_ctmc_steady_iterative)->Arg(16)->Arg(64)->Arg(256);

void bm_birth_death_closed_form(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const std::vector<double> birth(n, 2.0);
  const std::vector<double> death(n, 3.0);
  const um::BirthDeath bd(birth, death);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bd.steady_state());
  }
}
BENCHMARK(bm_birth_death_closed_form)->Arg(16)->Arg(256)->Arg(4096);

void bm_lu_solve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  ul::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = (i == j) ? 4.0 : 1.0 / static_cast<double>(1 + i + j);
    }
  }
  const ul::Vector b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ul::solve(a, b));
  }
}
BENCHMARK(bm_lu_solve)->Arg(32)->Arg(128)->Arg(512);

void bm_transient_uniformization(benchmark::State& state) {
  const um::Ctmc chain = ring_chain(64);
  ul::Vector initial(64, 0.0);
  initial[0] = 1.0;
  const double t = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        um::transient_distribution(chain, initial, t));
  }
}
BENCHMARK(bm_transient_uniformization)->Arg(1)->Arg(10)->Arg(100);

void bm_bdd_majority(benchmark::State& state) {
  const std::size_t vars = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    upa::faulttree::BddManager mgr(vars);
    std::vector<upa::faulttree::BddRef> fns;
    for (std::size_t v = 0; v < vars; ++v) fns.push_back(mgr.variable(v));
    const auto top = mgr.at_least(vars / 2, fns);
    const std::vector<double> p(vars, 0.01);
    benchmark::DoNotOptimize(mgr.probability(top, p));
  }
}
BENCHMARK(bm_bdd_majority)->Arg(8)->Arg(16)->Arg(32);

void bm_spn_reachability(benchmark::State& state) {
  const int tokens = static_cast<int>(state.range(0));
  for (auto _ : state) {
    upa::spn::PetriNet net;
    const auto up = net.add_place("up", tokens);
    const auto down = net.add_place("down", 0);
    const auto fail = net.add_timed_transition(
        "fail", 1e-3, upa::spn::ServerSemantics::kInfiniteServer);
    net.add_input_arc(fail, up);
    net.add_output_arc(fail, down);
    const auto repair = net.add_timed_transition("repair", 1.0);
    net.add_input_arc(repair, down);
    net.add_output_arc(repair, up);
    const auto graph = upa::spn::explore(net);
    benchmark::DoNotOptimize(upa::spn::to_ctmc(net, graph));
  }
}
BENCHMARK(bm_spn_reachability)->Arg(10)->Arg(100)->Arg(1000);

void bm_visited_set_probability(benchmark::State& state) {
  const auto profile =
      upa::ta::fitted_session_graph(upa::ta::UserClass::kA);
  const std::set<std::size_t> all{0, 1, 2, 3, 4};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        upa::profile::visited_exactly_probability(profile, all));
  }
}
BENCHMARK(bm_visited_set_probability);

}  // namespace

UPA_BENCH_MAIN(print_nothing)
