#include "upa/common/csv.hpp"

#include <fstream>
#include <sstream>

#include "upa/common/error.hpp"

namespace upa::common {
namespace {

std::string escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void emit_row(std::ostringstream& os, const std::vector<std::string>& row) {
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i != 0) os << ',';
    os << escape(row[i]);
  }
  os << '\n';
}

}  // namespace

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  UPA_REQUIRE(!headers_.empty(), "csv needs at least one column");
}

void CsvWriter::add_row(std::vector<std::string> cells) {
  UPA_REQUIRE(cells.size() == headers_.size(),
              "csv row width does not match header width");
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::str() const {
  std::ostringstream os;
  emit_row(os, headers_);
  for (const auto& row : rows_) emit_row(os, row);
  return os.str();
}

void CsvWriter::write_file(const std::string& path) const {
  std::ofstream out(path);
  UPA_REQUIRE(out.good(), "cannot open " + path + " for writing");
  out << str();
  UPA_REQUIRE(out.good(), "write to " + path + " failed");
}

}  // namespace upa::common
