#include "upa/linalg/sparse.hpp"

#include <algorithm>

#include "upa/common/error.hpp"

namespace upa::linalg {

SparseMatrix::SparseMatrix(std::size_t rows, std::size_t cols,
                           std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  UPA_REQUIRE(rows > 0 && cols > 0, "sparse dimensions must be positive");
  for (const Triplet& t : triplets) {
    UPA_REQUIRE(t.row < rows && t.col < cols,
                "sparse triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  row_start_.assign(rows_ + 1, 0);
  col_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size();) {
    std::size_t j = i;
    double sum = 0.0;
    while (j < triplets.size() && triplets[j].row == triplets[i].row &&
           triplets[j].col == triplets[i].col) {
      sum += triplets[j].value;
      ++j;
    }
    if (sum != 0.0) {
      col_.push_back(triplets[i].col);
      values_.push_back(sum);
      ++row_start_[triplets[i].row + 1];
    }
    i = j;
  }
  for (std::size_t r = 0; r < rows_; ++r) {
    row_start_[r + 1] += row_start_[r];
  }
}

Vector SparseMatrix::multiply(const Vector& x) const {
  UPA_REQUIRE(x.size() == cols_, "shape mismatch in sparse multiply");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      s += values_[k] * x[col_[k]];
    }
    y[r] = s;
  }
  return y;
}

Vector SparseMatrix::left_multiply(const Vector& x) const {
  UPA_REQUIRE(x.size() == rows_, "shape mismatch in sparse left_multiply");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      y[col_[k]] += xr * values_[k];
    }
  }
  return y;
}

double SparseMatrix::at(std::size_t r, std::size_t c) const {
  UPA_REQUIRE(r < rows_ && c < cols_, "sparse index out of range");
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_start_[r]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_start_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_.begin())];
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = row_start_[r]; k < row_start_[r + 1]; ++k) {
      m(r, col_[k]) = values_[k];
    }
  }
  return m;
}

std::span<const std::size_t> SparseMatrix::row_cols(std::size_t r) const {
  UPA_REQUIRE(r < rows_, "row index out of range");
  return {col_.data() + row_start_[r], row_start_[r + 1] - row_start_[r]};
}

std::span<const double> SparseMatrix::row_values(std::size_t r) const {
  UPA_REQUIRE(r < rows_, "row index out of range");
  return {values_.data() + row_start_[r], row_start_[r + 1] - row_start_[r]};
}

}  // namespace upa::linalg
