#include "upa/serve/telemetry.hpp"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <utility>

#include "upa/common/error.hpp"
#include "upa/serve/json.hpp"

namespace upa::serve {

namespace {

void set_send_timeout(int fd, double seconds) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool send_payload(int fd, const std::string& payload) {
  std::size_t sent = 0;
  while (sent < payload.size()) {
    const ssize_t n = ::send(fd, payload.data() + sent,
                             payload.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Json span_attrs_json(const obs::Span& span) {
  Json attrs = Json::object();
  for (const obs::SpanAttribute& a : span.attributes) {
    attrs.set(a.key, a.is_number ? Json(a.number) : Json(a.text));
  }
  return attrs;
}

}  // namespace

Json histogram_json(const obs::Histogram& histogram) {
  Json h = Json::object();
  h.set("count", Json(static_cast<double>(histogram.count())));
  h.set("sum", Json(histogram.sum()));
  Json bounds = Json::array();
  for (const double b : histogram.upper_bounds()) bounds.push_back(Json(b));
  h.set("bounds", std::move(bounds));
  Json counts = Json::array();
  for (const std::uint64_t c : histogram.bucket_counts()) {
    counts.push_back(Json(static_cast<double>(c)));
  }
  h.set("counts", std::move(counts));
  return h;
}

TelemetryStreamer::TelemetryStreamer(TelemetryStreamerOptions options)
    : options_(std::move(options)) {
  UPA_REQUIRE(options_.max_subscribers >= 1,
              "telemetry needs room for at least one subscriber");
}

TelemetryStreamer::~TelemetryStreamer() { stop(); }

bool TelemetryStreamer::add_subscriber(int fd, double interval_seconds,
                                       const std::string& ack_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_) return false;
  reap_finished_locked();
  if (subscribers_.size() >= options_.max_subscribers) return false;

  set_send_timeout(fd, options_.io_timeout_seconds);
  auto subscriber = std::make_unique<Subscriber>();
  subscriber->fd = fd;
  subscriber->interval_seconds = interval_seconds;
  Subscriber* raw = subscriber.get();
  subscriber->thread = std::thread(
      [this, raw, ack = ack_line] { run_subscriber(raw, ack); });
  subscribers_.push_back(std::move(subscriber));
  return true;
}

void TelemetryStreamer::run_subscriber(Subscriber* subscriber,
                                       std::string ack_line) {
  std::size_t span_cursor = 0;
  std::uint64_t seq = 0;
  bool ok = send_payload(subscriber->fd, ack_line + "\n");
  std::unique_lock<std::mutex> lock(mutex_);
  while (ok && !stopping_) {
    lock.unlock();
    const std::string payload = build_tick(seq++, span_cursor);
    ok = send_payload(subscriber->fd, payload);
    lock.lock();
    if (!ok || stopping_) break;
    cv_.wait_for(
        lock,
        std::chrono::duration<double>(subscriber->interval_seconds),
        [this] { return stopping_; });
  }
  subscriber->done = true;
}

std::string TelemetryStreamer::build_tick(std::uint64_t seq,
                                          std::size_t& span_cursor) const {
  obs::MetricsRegistry registry;
  if (options_.fill_metrics) options_.fill_metrics(registry);
  const std::uint64_t dropped =
      options_.dropped_spans ? options_.dropped_spans() : 0;
  std::vector<obs::Span> spans;
  if (options_.copy_spans) spans = options_.copy_spans(span_cursor);

  Json metrics = Json::object();
  metrics.set("telemetry", Json("metrics"));
  metrics.set("process", Json(options_.process));
  metrics.set("seq", Json(static_cast<double>(seq)));
  metrics.set("dropped_spans", Json(static_cast<double>(dropped)));
  Json counters = Json::object();
  for (const auto& [name, counter] : registry.counters()) {
    counters.set(name, Json(static_cast<double>(counter.value())));
  }
  metrics.set("counters", std::move(counters));
  Json gauges = Json::object();
  for (const auto& [name, gauge] : registry.gauges()) {
    gauges.set(name, Json(gauge.value()));
  }
  metrics.set("gauges", std::move(gauges));
  Json histograms = Json::object();
  for (const auto& [name, histogram] : registry.histograms()) {
    histograms.set(name, histogram_json(histogram));
  }
  metrics.set("histograms", std::move(histograms));

  std::string payload = metrics.dump() + "\n";
  for (const obs::Span& span : spans) {
    Json line = Json::object();
    line.set("telemetry", Json("span"));
    line.set("process", Json(options_.process));
    line.set("id", Json(static_cast<double>(span.id)));
    line.set("parent", Json(static_cast<double>(span.parent)));
    line.set("name", Json(span.name));
    line.set("level", Json(obs::span_level_name(span.level)));
    line.set("domain", Json(obs::time_domain_name(span.domain)));
    line.set("start", Json(span.start));
    line.set("end", Json(span.end));
    line.set("attrs", span_attrs_json(span));
    payload += line.dump() + "\n";
  }
  return payload;
}

void TelemetryStreamer::stop() {
  std::vector<std::unique_ptr<Subscriber>> subscribers;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    cv_.notify_all();
    // Unblock any thread stuck in send(); harmless on finished fds
    // (they stay open until joined below -- threads never close fds).
    for (const auto& subscriber : subscribers_) {
      ::shutdown(subscriber->fd, SHUT_RDWR);
    }
    subscribers.swap(subscribers_);
  }
  for (const auto& subscriber : subscribers) {
    if (subscriber->thread.joinable()) subscriber->thread.join();
    ::close(subscriber->fd);
  }
}

std::size_t TelemetryStreamer::active_subscribers() {
  std::lock_guard<std::mutex> lock(mutex_);
  reap_finished_locked();
  return subscribers_.size();
}

void TelemetryStreamer::reap_finished_locked() {
  for (auto it = subscribers_.begin(); it != subscribers_.end();) {
    if ((*it)->done) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = subscribers_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace upa::serve
