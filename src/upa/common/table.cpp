#include "upa/common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "upa/common/error.hpp"

namespace upa::common {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)), aligns_(headers_.size(), Align::kRight) {
  UPA_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  UPA_REQUIRE(cells.size() == headers_.size(),
              "row width does not match header width");
  rows_.push_back(std::move(cells));
}

void Table::set_align(std::size_t column, Align align) {
  UPA_REQUIRE(column < aligns_.size(), "column index out of range");
  aligns_[column] = align;
}

std::string Table::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto pad = [](const std::string& s, std::size_t w, Align a) {
    std::string out;
    const std::size_t missing = w > s.size() ? w - s.size() : 0;
    if (a == Align::kRight) out.append(missing, ' ');
    out += s;
    if (a == Align::kLeft) out.append(missing, ' ');
    return out;
  };

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';

  auto rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << '+' << std::string(widths[c] + 2, '-');
    }
    os << "+\n";
  };

  rule();
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "| " << pad(headers_[c], widths[c], Align::kLeft) << ' ';
  }
  os << "|\n";
  rule();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << pad(row[c], widths[c], aligns_[c]) << ' ';
    }
    os << "|\n";
  }
  rule();
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& table) {
  return os << table.str();
}

std::string fmt(double value, int digits) {
  std::ostringstream os;
  os.precision(digits);
  os << value;
  return os.str();
}

std::string fmt_fixed(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(decimals);
  os << value;
  return os.str();
}

std::string fmt_sci(double value, int decimals) {
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(decimals);
  os << value;
  return os.str();
}

}  // namespace upa::common
