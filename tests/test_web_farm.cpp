// Tests for the paper's web-farm composite models (Figures 9/10, eqs.
// 4-9): closed-form distributions vs explicit CTMCs, the published
// A(WS) anchor value, and structural properties of the two coverage
// variants.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "upa/common/error.hpp"
#include "upa/core/web_farm.hpp"

namespace uc = upa::core;
using upa::common::ModelError;

namespace {

uc::WebFarmParams paper_farm(std::size_t servers, double lambda) {
  uc::WebFarmParams farm;
  farm.servers = servers;
  farm.failure_rate = lambda;
  farm.repair_rate = 1.0;
  farm.coverage = 0.98;
  farm.reconfiguration_rate = 12.0;
  return farm;
}

uc::WebQueueParams paper_queue(double alpha) {
  uc::WebQueueParams queue;
  queue.arrival_rate = alpha;
  queue.service_rate = 100.0;
  queue.buffer = 10;
  return queue;
}

}  // namespace

TEST(PerfectCoverage, DistributionMatchesExplicitChain) {
  const auto farm = paper_farm(4, 1e-3);
  const auto closed = uc::perfect_coverage_distribution(farm);
  const auto numeric = uc::perfect_coverage_chain(farm).steady_state();
  ASSERT_EQ(closed.size(), numeric.size());
  for (std::size_t i = 0; i < closed.size(); ++i) {
    EXPECT_NEAR(closed[i], numeric[i], 1e-12) << "state " << i;
  }
}

TEST(PerfectCoverage, MassConcentratesOnAllUp) {
  const auto pi = uc::perfect_coverage_distribution(paper_farm(4, 1e-4));
  EXPECT_GT(pi[4], 0.999);
  double sum = 0.0;
  for (double p : pi) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ImperfectCoverage, DistributionMatchesExplicitChain) {
  const auto farm = paper_farm(4, 1e-3);
  const auto closed = uc::imperfect_coverage_distribution(farm);
  const auto chain = uc::imperfect_coverage_chain(farm);
  const auto numeric = chain.chain.steady_state();
  for (std::size_t i = 0; i <= farm.servers; ++i) {
    EXPECT_NEAR(closed.operational[i], numeric[chain.operational_state(i)],
                1e-12)
        << "operational state " << i;
  }
  for (std::size_t i = 1; i <= farm.servers; ++i) {
    EXPECT_NEAR(closed.manual[i], numeric[chain.manual_state(i)], 1e-12)
        << "manual state y" << i;
  }
}

TEST(ImperfectCoverage, PaperAnchorValue) {
  // The paper's Table 7: A(WS) = 0.999995587 for N_W=4, c=0.98,
  // lambda=1e-4/h, mu=1/h, beta=12/h, alpha=nu=100/s, K=10.
  const double a = uc::web_service_availability_imperfect(
      paper_farm(4, 1e-4), paper_queue(100.0));
  EXPECT_NEAR(a, 0.999995587, 5e-10);
}

TEST(ImperfectCoverage, ClosedFormMatchesCompositeCtmc) {
  for (std::size_t servers : {2u, 4u, 7u}) {
    const auto farm = paper_farm(servers, 1e-3);
    const auto queue = paper_queue(150.0);
    const double closed =
        uc::web_service_availability_imperfect(farm, queue);
    const double composite =
        uc::composite_imperfect(farm, queue).availability();
    EXPECT_NEAR(closed, composite, 1e-12) << "servers = " << servers;
  }
}

TEST(PerfectCoverage, ClosedFormMatchesCompositeCtmc) {
  for (std::size_t servers : {1u, 3u, 6u}) {
    const auto farm = paper_farm(servers, 1e-2);
    const auto queue = paper_queue(50.0);
    const double closed = uc::web_service_availability_perfect(farm, queue);
    const double composite =
        uc::composite_perfect(farm, queue).availability();
    EXPECT_NEAR(closed, composite, 1e-12) << "servers = " << servers;
  }
}

TEST(Coverage, PerfectBeatsImperfect) {
  // Imperfect coverage only adds down states; availability must drop.
  for (std::size_t servers : {2u, 4u, 8u}) {
    const auto farm = paper_farm(servers, 1e-3);
    const auto queue = paper_queue(100.0);
    EXPECT_GT(uc::web_service_availability_perfect(farm, queue),
              uc::web_service_availability_imperfect(farm, queue));
  }
}

TEST(Coverage, FullCoverageLimitsCoincide) {
  auto farm = paper_farm(3, 1e-3);
  farm.coverage = 1.0;
  const auto queue = paper_queue(100.0);
  EXPECT_NEAR(uc::web_service_availability_imperfect(farm, queue),
              uc::web_service_availability_perfect(farm, queue), 1e-15);
}

TEST(Coverage, ImperfectNonMonotoneInServerCount) {
  // The Figure 12 effect: with imperfect coverage, unavailability stops
  // improving and reverses once uncovered failures dominate.
  const auto queue = paper_queue(100.0);
  std::vector<double> ua;
  for (std::size_t n = 1; n <= 10; ++n) {
    ua.push_back(1.0 - uc::web_service_availability_imperfect(
                           paper_farm(n, 1e-4), queue));
  }
  // Decreases initially...
  EXPECT_LT(ua[3], ua[0]);
  // ...but the tail rises above the minimum (reversal).
  const double min_ua = *std::min_element(ua.begin(), ua.end());
  EXPECT_GT(ua[9], min_ua);
}

TEST(Coverage, PerfectMonotoneInServerCount) {
  const auto queue = paper_queue(100.0);
  double previous = 1.0;
  for (std::size_t n = 1; n <= 10; ++n) {
    const double ua = 1.0 - uc::web_service_availability_perfect(
                                paper_farm(n, 1e-4), queue);
    EXPECT_LE(ua, previous * (1 + 1e-12)) << "n = " << n;
    previous = ua;
  }
}

TEST(WebFarm, SingleServerReducesToTwoStateTimesLoss) {
  // N_W = 1, perfect coverage: A = (1 - p_K) * mu/(mu+lambda) (eq. 2).
  const auto farm = paper_farm(1, 1e-2);
  const auto queue = paper_queue(100.0);
  const double expected =
      (1.0 - 1.0 / 11.0) * (1.0 / (1.0 + 1e-2));
  EXPECT_NEAR(uc::web_service_availability_perfect(farm, queue), expected,
              1e-12);
}

TEST(WebFarm, ManualStateMassScalesWithUncoverage) {
  auto farm = paper_farm(4, 1e-3);
  farm.coverage = 0.5;
  const auto half = uc::imperfect_coverage_distribution(farm);
  farm.coverage = 0.98;
  const auto high = uc::imperfect_coverage_distribution(farm);
  double mass_half = 0.0;
  double mass_high = 0.0;
  for (std::size_t i = 1; i <= 4; ++i) {
    mass_half += half.manual[i];
    mass_high += high.manual[i];
  }
  EXPECT_GT(mass_half, mass_high);
}

TEST(WebFarm, FullCoverageIsBitForBitThePerfectModel) {
  // c = 1 delegates to the perfect-coverage closed form instead of
  // running the imperfect pipeline with zero uncovered mass, so the two
  // availabilities are EXACTLY equal -- no 1e-15 drift from a different
  // normalization order.
  auto farm = paper_farm(3, 1e-3);
  farm.coverage = 1.0;
  const auto queue = paper_queue(100.0);
  const double perfect = uc::web_service_availability_perfect(farm, queue);
  const double imperfect =
      uc::web_service_availability_imperfect(farm, queue);
  EXPECT_EQ(perfect, imperfect);  // bitwise, not NEAR

  const auto dist = uc::imperfect_coverage_distribution(farm);
  const auto pi = uc::perfect_coverage_distribution(farm);
  ASSERT_EQ(dist.operational.size(), pi.size());
  for (std::size_t i = 0; i < pi.size(); ++i) {
    EXPECT_EQ(dist.operational[i], pi[i]) << "state " << i;
    if (i < dist.manual.size()) EXPECT_EQ(dist.manual[i], 0.0);
  }
}

TEST(WebFarm, ZeroCoverageSendsEveryFailureThroughManualStates) {
  auto farm = paper_farm(3, 1e-2);
  farm.coverage = 0.0;
  const auto dist = uc::imperfect_coverage_distribution(farm);
  // Every failure is uncovered: corrected states below N_W carry no
  // direct failure inflow, so the manual mass dominates the corrected
  // mass at each degraded level.
  for (std::size_t i = 1; i < farm.servers; ++i) {
    EXPECT_GT(dist.manual[i], 0.0) << "y_" << i;
  }
  const double perfect_a =
      uc::web_service_availability_perfect(farm, paper_queue(100.0));
  const double imperfect_a =
      uc::web_service_availability_imperfect(farm, paper_queue(100.0));
  EXPECT_LT(imperfect_a, perfect_a);
}

TEST(WebFarm, SingleServerImperfectLosesItsWholeManualWindow) {
  // N_W = 1: an uncovered failure parks the farm in y_1 where every
  // request is lost; availability sits strictly below the perfect
  // two-state reduction and degrades as coverage drops.
  const auto queue = paper_queue(100.0);
  auto farm = paper_farm(1, 1e-2);
  const double perfect = uc::web_service_availability_perfect(farm, queue);
  double previous = perfect;
  for (const double c : {0.9, 0.5, 0.1}) {
    farm.coverage = c;
    const double a = uc::web_service_availability_imperfect(farm, queue);
    EXPECT_LT(a, previous) << "coverage " << c;
    previous = a;
  }
}

TEST(WebFarm, RejectsDegenerateReconfigurationRates) {
  const auto queue = paper_queue(100.0);
  for (const double beta :
       {0.0, -1.0, std::numeric_limits<double>::infinity(),
        std::numeric_limits<double>::quiet_NaN()}) {
    auto farm = paper_farm(3, 1e-3);
    farm.reconfiguration_rate = beta;
    EXPECT_THROW((void)uc::imperfect_coverage_distribution(farm),
                 ModelError)
        << "beta " << beta;
    EXPECT_THROW((void)uc::web_service_availability_imperfect(farm, queue),
                 ModelError)
        << "beta " << beta;
  }
}

TEST(WebFarm, RejectsInvalidConfigurations) {
  uc::WebFarmParams farm;
  farm.servers = 0;
  EXPECT_THROW((void)uc::perfect_coverage_distribution(farm), ModelError);
  auto queue = paper_queue(100.0);
  queue.buffer = 2;  // fewer buffer slots than the 4 servers
  EXPECT_THROW((void)uc::web_service_availability_perfect(paper_farm(4, 1e-3),
                                                          queue),
               ModelError);
  auto full = paper_farm(2, 1e-3);
  full.coverage = 1.0;
  EXPECT_THROW((void)uc::composite_imperfect(full, paper_queue(100.0)),
               ModelError);
}
