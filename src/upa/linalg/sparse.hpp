#pragma once
// Compressed-sparse-row matrix for large Markov chains (e.g. GSPN
// reachability graphs), built from coordinate triplets.

#include <cstddef>
#include <span>
#include <vector>

#include "upa/linalg/matrix.hpp"

namespace upa::linalg {

/// One (row, col, value) entry used while assembling a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix. Duplicate triplets are summed during assembly
/// in a canonical order (sorted by the value's bit pattern), so the
/// assembled matrix -- including the last ULPs of summed duplicates --
/// depends only on the multiset of triplets, never on their input
/// order. Storage walks rows ascending, columns ascending within each
/// row; the multiply kernels iterate in exactly that order.
class SparseMatrix {
 public:
  SparseMatrix(std::size_t rows, std::size_t cols,
               std::vector<Triplet> triplets);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A x.
  [[nodiscard]] Vector multiply(const Vector& x) const;

  /// y = x^T A (row-vector product; the DTMC/CTMC iteration primitive).
  [[nodiscard]] Vector left_multiply(const Vector& x) const;

  /// Element lookup (binary search within the row); zero when absent.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Densifies; intended for tests and small systems only.
  [[nodiscard]] Matrix to_dense() const;

  /// Row access for solver kernels: parallel spans of column indices and
  /// values for row r.
  [[nodiscard]] std::span<const std::size_t> row_cols(std::size_t r) const;
  [[nodiscard]] std::span<const double> row_values(std::size_t r) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_start_;  // size rows_ + 1
  std::vector<std::size_t> col_;
  std::vector<double> values_;
};

}  // namespace upa::linalg
