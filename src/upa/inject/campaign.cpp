#include "upa/inject/campaign.hpp"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <tuple>
#include <utility>

#include "upa/cache/eval_cache.hpp"
#include "upa/common/csv.hpp"
#include "upa/common/table.hpp"
#include "upa/exec/thread_pool.hpp"
#include "upa/obs/observer.hpp"

namespace upa::inject {
namespace {

common::CsvWriter build_csv(const std::vector<CampaignEntry>& entries) {
  common::CsvWriter writer({"plan", "availability_mean", "ci_half_width",
                            "ci_low", "ci_high", "delta_vs_baseline",
                            "observed_web_availability",
                            "mean_retries_per_session",
                            "abandonment_fraction"});
  for (const CampaignEntry& e : entries) {
    writer.add_row({e.name, common::fmt(e.perceived_availability.mean, 10),
                    common::fmt(e.perceived_availability.half_width, 10),
                    common::fmt(e.perceived_availability.low, 10),
                    common::fmt(e.perceived_availability.high, 10),
                    common::fmt(e.delta_vs_baseline, 10),
                    common::fmt(e.observed_web_service_availability, 10),
                    common::fmt(e.mean_retries_per_session, 10),
                    common::fmt(e.abandonment_fraction, 10)});
  }
  return writer;
}

CampaignEntry measure(std::string name, ta::UserClass uclass,
                      const ta::TaParameters& params,
                      ta::EndToEndOptions options, FaultPlan plan,
                      obs::Observer* ob) {
  options.faults = std::move(plan);
  obs::ScopedWallSpan span(ob != nullptr ? &ob->tracer : nullptr,
                           obs::SpanLevel::kCampaignPlan, name);
  const ta::EndToEndResult r =
      ta::simulate_end_to_end(uclass, params, options);
  CampaignEntry entry;
  entry.name = std::move(name);
  entry.perceived_availability = r.perceived_availability;
  entry.observed_web_service_availability =
      r.observed_web_service_availability;
  entry.mean_retries_per_session = r.mean_retries_per_session;
  entry.abandonment_fraction = r.abandonment_fraction;
  if (ob != nullptr) {
    span.attr("availability_mean", entry.perceived_availability.mean);
    span.attr("ci_half_width", entry.perceived_availability.half_width);
    span.attr("mean_retries_per_session", entry.mean_retries_per_session);
    span.attr("abandonment_fraction", entry.abandonment_fraction);
    ob->metrics.counter("campaign.plans").add();
    ob->metrics.gauge("campaign.last_plan_wall_seconds")
        .set(span.elapsed_seconds());
    ob->metrics
        .histogram("campaign.plan_wall_seconds",
                   obs::geometric_buckets(1e-3, 10.0, 7))
        .record(span.elapsed_seconds());
  }
  return entry;
}

/// Canonical cache key of one campaign measurement: everything that feeds
/// the simulated numbers -- user class, the full parameter set, the
/// result-affecting simulator options, the retry policy, and the plan's
/// outage windows (sorted, so window insertion order does not split
/// entries). Excluded on purpose: threads (execution knob; results are
/// bit-for-bit identical at every width), obs (recording only), the plan
/// name (cosmetic; reapplied on a hit), and options.faults (each campaign
/// plan replaces it).
cache::CacheKey entry_key(ta::UserClass uclass, const ta::TaParameters& p,
                          const ta::EndToEndOptions& o,
                          const FaultPlan& plan) {
  cache::KeyBuilder kb("inject.campaign_entry", 1);
  kb.add(static_cast<std::uint64_t>(uclass));
  kb.add(p.a_net)
      .add(p.a_lan)
      .add(p.a_cas)
      .add(p.a_cds)
      .add(p.a_disk)
      .add(p.a_payment)
      .add(p.a_reservation)
      .add(static_cast<std::uint64_t>(p.n_flight))
      .add(static_cast<std::uint64_t>(p.n_hotel))
      .add(static_cast<std::uint64_t>(p.n_car))
      .add(static_cast<std::uint64_t>(p.n_web))
      .add(p.lambda_web)
      .add(p.mu_web)
      .add(p.coverage)
      .add(p.beta)
      .add(p.alpha)
      .add(p.nu)
      .add(static_cast<std::uint64_t>(p.buffer))
      .add(p.q23)
      .add(p.q24)
      .add(p.q45)
      .add(p.q47)
      .add(static_cast<std::uint64_t>(p.architecture))
      .add(static_cast<std::uint64_t>(p.coverage_model));
  kb.add(o.horizon_hours)
      .add(o.think_time_hours)
      .add(o.black_box_repair_rate)
      .add(o.sessions_per_replication)
      .add(static_cast<std::uint64_t>(o.replications))
      .add(o.seed)
      .add(o.confidence_level);
  kb.add(static_cast<std::uint64_t>(o.retry.max_retries))
      .add(o.retry.backoff_base_hours)
      .add(o.retry.backoff_multiplier)
      .add(o.retry.response_timeout_seconds)
      .add(o.retry.abandonment_probability);
  std::vector<FaultWindow> windows = plan.windows();
  std::sort(windows.begin(), windows.end(),
            [](const FaultWindow& a, const FaultWindow& b) {
              return std::tuple(static_cast<int>(a.target), a.start_hours,
                                a.duration_hours) <
                     std::tuple(static_cast<int>(b.target), b.start_hours,
                                b.duration_hours);
            });
  kb.add(static_cast<std::uint64_t>(windows.size()));
  for (const FaultWindow& w : windows) {
    kb.add(static_cast<std::uint64_t>(w.target))
        .add(w.start_hours)
        .add(w.duration_hours);
  }
  return std::move(kb).finish();
}

/// measure() behind the evaluation cache: identical (class, params,
/// options, plan) measurements replay the exact first-miss entry with the
/// requested name reapplied. A replay emits only a cache_lookup span into
/// `ob` (the simulator spans were recorded by the first miss).
CampaignEntry measure_cached(std::string name, ta::UserClass uclass,
                             const ta::TaParameters& params,
                             const ta::EndToEndOptions& options,
                             const FaultPlan& plan, obs::Observer* ob) {
  if (!cache::enabled()) {
    return measure(std::move(name), uclass, params, options, plan, ob);
  }
  cache::CacheKey key = entry_key(uclass, params, options, plan);
  CampaignEntry entry = *cache::global().get_or_compute<CampaignEntry>(
      key,
      [&] { return measure(name, uclass, params, options, plan, ob); }, ob);
  entry.name = std::move(name);
  entry.delta_vs_baseline = 0.0;  // always derived by the caller
  return entry;
}

}  // namespace

std::string CampaignResult::csv() const { return build_csv(entries).str(); }

void CampaignResult::write_csv(const std::string& path) const {
  build_csv(entries).write_file(path);
}

CampaignResult run_campaign(ta::UserClass uclass,
                            const ta::TaParameters& params,
                            const CampaignOptions& options,
                            const std::vector<CampaignPlan>& plans) {
  // The plan-level observer defaults to the per-run one (and vice versa)
  // so attaching either instruments the whole campaign.
  obs::Observer* const ob =
      options.obs != nullptr ? options.obs : options.end_to_end.obs;
  ta::EndToEndOptions run_options = options.end_to_end;
  // Each measurement records into a private observer shard; the parent
  // observer only ever sees ordered absorbs after the join.
  run_options.obs = nullptr;

  const std::size_t jobs = plans.size() + 1;  // baseline + every plan
  const std::size_t width =
      std::min(exec::resolve_threads(options.threads), jobs);
  if (width > 1) run_options.threads = 1;  // one parallel level, not two

  // One measurement = one campaign entry plus its observer shard.
  struct Measurement {
    CampaignEntry entry;
    std::unique_ptr<obs::Observer> shard;
  };
  exec::ThreadPool pool(width);
  std::vector<Measurement> measurements = pool.parallel_map<Measurement>(
      jobs, [&](std::size_t i) {
        Measurement m;
        obs::Observer* shard_ob = nullptr;
        if (ob != nullptr) {
          m.shard = std::make_unique<obs::Observer>(ob->make_shard());
          shard_ob = m.shard.get();
        }
        ta::EndToEndOptions measured = run_options;
        measured.obs = shard_ob;
        m.entry = i == 0 ? measure_cached("baseline", uclass, params,
                                          measured, FaultPlan{}, shard_ob)
                         : measure_cached(plans[i - 1].name, uclass, params,
                                          measured, plans[i - 1].plan,
                                          shard_ob);
        return m;
      });

  // Re-assemble in input order: baseline first, then every plan; deltas
  // and the parent observer's tables come out identical at every width.
  CampaignResult result;
  result.entries.reserve(jobs);
  const double baseline_mean =
      measurements.front().entry.perceived_availability.mean;
  for (std::size_t i = 0; i < measurements.size(); ++i) {
    CampaignEntry& entry = measurements[i].entry;
    if (ob != nullptr && measurements[i].shard != nullptr) {
      ob->absorb(std::move(*measurements[i].shard));
    }
    if (i > 0) {
      entry.delta_vs_baseline =
          entry.perceived_availability.mean - baseline_mean;
      if (ob != nullptr) {
        ob->metrics.gauge("campaign." + entry.name + ".delta_vs_baseline")
            .set(entry.delta_vs_baseline);
      }
    }
    result.entries.push_back(std::move(entry));
  }
  return result;
}

CampaignResult run_campaign(ta::UserClass uclass,
                            const ta::TaParameters& params,
                            const ta::EndToEndOptions& base_options,
                            const std::vector<CampaignPlan>& plans) {
  CampaignOptions options;
  options.end_to_end = base_options;
  return run_campaign(uclass, params, options, plans);
}

}  // namespace upa::inject
